//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] model to JSON text and parses it
//! back. The subset the workspace uses: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. Numbers serialize without a trailing `.0` when they
//! are integral; the vendored serde's numeric `Deserialize` impls accept
//! either form, so round-trips are lossless for the types in this repo.

#![forbid(unsafe_code)]
// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; match serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats readable and re-parseable as integers.
        out.push_str(&format!("{}.0", f as i64));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("zone-1".into())),
            ("count".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(0.25)),
            (
                "items".into(),
                Value::Array(vec![Value::Int(-1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tand \\ unicode \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("123 45").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
