//! Offline vendored stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate keeps
//! the workspace's `cargo bench` targets compiling and running without
//! the real statistics machinery: each benchmark closure is warmed up
//! once, timed over a modest number of iterations, and a single
//! mean-wall-clock line is printed. There is no sampling, outlier
//! analysis, or HTML report. Treat the numbers as smoke-level only.

#![forbid(unsafe_code)]
// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a single benchmark's closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, excluded from timing
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh untimed `setup` output per iteration.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, excluded from timing
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count (criterion's sample count
    /// is reinterpreted directly as iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<O>(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.iters, b.elapsed);
        self.criterion.ran += 1;
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, O>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> O,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.iters, b.elapsed);
        self.criterion.ran += 1;
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn report(id: &str, iters: u64, elapsed: Duration) {
    let mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{id:<60} {value:>10.3} {unit}/iter (mean of {iters})");
}

/// Entry point handed to each `criterion_group!` function.
pub struct Criterion {
    ran: usize,
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            ran: 0,
            default_iters: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.default_iters;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            iters,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<O>(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
