//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace ships
//! a minimal self-describing data model instead of real serde:
//!
//! * [`Value`] — a JSON-like tree (null, bool, integers, float, string,
//!   array, object),
//! * [`Serialize`] / [`Deserialize`] — conversions to and from [`Value`],
//! * derive macros of the same names (re-exported from `serde_derive`)
//!   supporting named structs, newtype/tuple structs, and enums with
//!   unit/newtype/tuple/struct variants in serde's externally-tagged
//!   representation.
//!
//! Differences from real serde, acceptable because every producer and
//! consumer lives in this repository: maps serialize as arrays of
//! `[key, value]` pairs (so non-string keys round-trip), and there is no
//! zero-copy deserialization. The companion `serde_json` vendored crate
//! renders [`Value`] as standard JSON text.

#![forbid(unsafe_code)]
// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the vendored serde data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (parsed from a leading `-`).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value record.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entry list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error {
            msg: format!("{ty}: missing field `{field}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the data model.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required object field and deserialize it (derive support).
pub fn from_field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::missing_field(name, ty)),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!(concat!(stringify!($t), " out of range: {}"), u))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!(concat!(stringify!($t), " out of range: {}"), i))
                })
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

// Maps serialize as arrays of [key, value] pairs, which keeps non-string
// keys (ids, tuples) round-trippable — a deliberate divergence from
// serde_json's string-keyed objects.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array of pairs, got {v:?}")))?;
        let mut out = BTreeMap::new();
        for pair in arr {
            let p = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            out.insert(K::from_value(&p[0])?, V::from_value(&p[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                let want = [$($n),+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", want, arr.len())));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integral_float_accepted_as_int() {
        assert_eq!(u64::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u64::from_value(&Value::Float(7.5)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<(u8, u8), String> =
            [((1, 2), "a".to_string()), ((3, 4), "b".to_string())].into();
        assert_eq!(
            BTreeMap::<(u8, u8), String>::from_value(&m.to_value()).unwrap(),
            m
        );
        let s: BTreeSet<i32> = [3, 1, 2].into();
        assert_eq!(BTreeSet::<i32>::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn tuple_arity_checked() {
        let t = (1u8, 2u8, 3u8);
        assert_eq!(<(u8, u8, u8)>::from_value(&t.to_value()).unwrap(), t);
        assert!(<(u8, u8)>::from_value(&t.to_value()).is_err());
    }
}
