//! End-to-end checks of the vendored derive macros against the shapes
//! the workspace actually uses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
struct Id(pub u32);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Named {
    a: u32,
    b: Option<f64>,
    c: Vec<String>,
    map: BTreeMap<(Option<Id>, Id), Id>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Unit;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Pair(u8, String);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Mixed {
    Plain,
    Wrap(Id),
    Two(u8, u8),
    Rec { x: f64, y: String },
}

#[test]
fn newtype_is_transparent() {
    assert_eq!(Id(7).to_value(), Value::UInt(7));
    assert_eq!(Id::from_value(&Value::UInt(7)).unwrap(), Id(7));
}

#[test]
fn named_struct_round_trips() {
    let mut map = BTreeMap::new();
    map.insert((None, Id(2)), Id(3));
    map.insert((Some(Id(1)), Id(2)), Id(4));
    let n = Named {
        a: 5,
        b: Some(1.25),
        c: vec!["x".into(), "y".into()],
        map,
    };
    assert_eq!(Named::from_value(&n.to_value()).unwrap(), n);
}

#[test]
fn named_struct_missing_field_errors() {
    let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
    let err = Named::from_value(&v).unwrap_err();
    assert!(err.to_string().contains("missing field"), "{err}");
}

#[test]
fn unit_and_tuple_structs_round_trip() {
    assert_eq!(Unit::from_value(&Unit.to_value()).unwrap(), Unit);
    let p = Pair(3, "z".into());
    assert_eq!(Pair::from_value(&p.to_value()).unwrap(), p);
}

#[test]
fn enum_variants_round_trip() {
    for m in [
        Mixed::Plain,
        Mixed::Wrap(Id(9)),
        Mixed::Two(1, 2),
        Mixed::Rec {
            x: 0.5,
            y: "q".into(),
        },
    ] {
        let v = m.to_value();
        assert_eq!(Mixed::from_value(&v).unwrap(), m);
    }
    // Externally tagged: unit variants are plain strings.
    assert_eq!(Mixed::Plain.to_value(), Value::String("Plain".into()));
    assert!(Mixed::from_value(&Value::String("Nope".into())).is_err());
}
