//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored Value-based `serde` crate without any dependencies (no syn,
//! no quote): the input item is parsed by walking the raw
//! [`proc_macro::TokenStream`] and the impl is emitted as a string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (1-field newtypes serialize
//! transparently, matching serde's JSON behaviour, so the repo's
//! `#[serde(transparent)]` attribute is accepted and redundant), unit
//! structs, and enums with unit / newtype / tuple / struct variants in
//! serde's externally-tagged representation. Generic types are not
//! supported and produce a compile error.

// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derive the vendored `serde::Serialize` (Value-based) for a type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` (Value-based) for a type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group of the attribute
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // visibility (`pub`, possibly `pub(crate)`) or modifiers
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("derive input has no struct or enum keyword"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    let shape = if kind == "enum" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for {name}, got {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("expected struct body for {name}, got {other:?}"),
        }
    };
    Item { name, shape }
}

/// Skip `#[...]` attributes and a `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &mut Toks) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // attribute body group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens until a top-level comma (consumed) or end of stream,
/// tracking angle-bracket depth so commas inside generics don't count.
fn skip_to_comma(toks: &mut Toks) {
    let mut angle = 0i32;
    for t in toks.by_ref() {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            },
            _ => {}
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field, got {other:?}"),
                }
                skip_to_comma(&mut toks);
            }
            None => return fields,
            other => panic!("unexpected token in struct fields: {other:?}"),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return count; // handles trailing comma and empty parens
        }
        count += 1;
        skip_to_comma(&mut toks);
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("unexpected token in enum body: {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        skip_to_comma(&mut toks); // also skips any `= discriminant`
        variants.push(Variant { name, kind });
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_value(&self.{f}))",
                        string_lit(f)
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tag = string_lit(vname);
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vname} => ::serde::Value::String({tag}),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(\
                             ::std::vec::Vec::from([({tag}, \
                             ::serde::Serialize::to_value(__f0))])),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([({tag}, \
                                 ::serde::Value::Array(::std::vec::Vec::from([{}])))])),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_value({f}))",
                                        string_lit(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([({tag}, \
                                 ::serde::Value::Object(::std::vec::Vec::from([{}])))])),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__obj, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().filter(|a| a.len() == {n}).ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected {n}-element array\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Tuple(1) => data_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vname}\" => {{ let __arr = __inner.as_array()\
                             .filter(|a| a.len() == {n}).ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{vname}: expected \
                             {n}-element array\"))?; \
                             ::std::result::Result::Ok({name}::{vname}({})) }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::from_field(__fobj, \"{f}\", \
                                     \"{name}::{vname}\")?,"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vname}\" => {{ let __fobj = __inner.as_object()\
                             .ok_or_else(|| ::serde::Error::custom(\
                             \"{name}::{vname}: expected object\"))?; \
                             ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                            inits.join(" ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"{name}: unknown variant {{:?}}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__tag, __inner) = &__o[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: unknown variant {{:?}}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"{name}: unexpected value {{:?}}\", __other))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
