//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a deterministic random-input test harness with the same surface the
//! workspace's property tests use: the [`proptest!`] macro with `pat in
//! strategy` arguments and an optional `#![proptest_config(..)]` header,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!`, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! integer and float range strategies, tuple strategies, [`Just`],
//! `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, and simple
//! regex-style string strategies (char classes + `{m,n}` repetition).
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the sampled inputs visible via the assertion message), no
//! persistence of regression seeds (`*.proptest-regressions` files are
//! ignored), and each test function derives its RNG seed from its module
//! path and name, so runs are fully deterministic.

#![forbid(unsafe_code)]
// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test function executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the vendored harness keeps the
        // default lighter since there is no shrinker to amortize.
        ProptestConfig { cases: 64 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// FNV-1a hash of a string — per-test deterministic seeds.
#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define property tests: each `pat in strategy` argument is sampled
/// per case and the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                $crate::__fnv(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let ( $($pat,)+ ) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                );
                // The closure gives `prop_assume!` an early exit that
                // skips just this case.
                (move || $body)();
                let _ = __case;
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (panics on failure; the
/// vendored harness has no shrinker to report to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Pick uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $( __options.push(::std::boxed::Box::new($strat)); )+
        $crate::strategy::Union::new(__options)
    }};
}
