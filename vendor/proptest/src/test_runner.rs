//! Deterministic RNG for the vendored proptest harness.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The harness RNG: a seeded [`SmallRng`] with a few convenience draws.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A generator with a fixed seed (derived from the test's name).
    pub fn deterministic(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        if lo == hi {
            lo
        } else {
            lo + self.inner.gen_range(0..=(hi - lo))
        }
    }

    /// Mutable access to the underlying generator for range sampling.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}
