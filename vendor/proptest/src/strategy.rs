//! Value-generation strategies for the vendored proptest harness.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Object-safe so `prop_oneof!` can box heterogeneous strategies; the
/// combinators are `Self: Sized` for that reason.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build and sample a second
    /// strategy (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: arbitrary bit patterns (NaN, Inf) poison
        // almost every numeric property without testing anything real.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for [`Arbitrary`] types (`any::<T>()`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------

/// String-literal strategies support a small regex subset: literal
/// characters, `[a-z0-9_]`-style classes, and the quantifiers `{n}`,
/// `{m,n}`, `?`, `+` (1–8), `*` (0–8).
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.usize_inclusive(atom.min, atom.max);
            for _ in 0..n {
                let i = rng.usize_inclusive(0, atom.choices.len() - 1);
                out.push(atom.choices[i]);
            }
        }
        out
    }
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pat:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pat:?}");
                i = close + 1;
                set
            }
            '\\' => {
                let c = chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing `\\` in pattern {pat:?}"));
                i += 2;
                vec![*c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("pattern repeat lower bound"),
                        hi.trim().parse().expect("pattern repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("pattern repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition in pattern {pat:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = TestRng::deterministic(2);
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let s: Union<u8> = Union::new(vec![
            Box::new(Just(1u8)),
            Box::new(Just(2u8)),
            Box::new(Just(3u8)),
        ]);
        let mut rng = TestRng::deterministic(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_sampling() {
        let mut rng = TestRng::deterministic(4);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let fixed = "ab[0-9]?".sample(&mut rng);
        assert!(fixed.starts_with("ab") && fixed.len() <= 3);
    }
}
