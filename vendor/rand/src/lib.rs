//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the narrow slice of the rand 0.8 API it
//! actually uses: [`rngs::SmallRng`] (implemented, as upstream on 64-bit
//! targets, as xoshiro256++ seeded via SplitMix64), the [`RngCore`] /
//! [`SeedableRng`] core traits, and the [`Rng`] extension trait with
//! `gen` / `gen_range` / `gen_bool`.
//!
//! Determinism is the only contract the workspace relies on (seeds and
//! golden values are produced and consumed inside this repository), so
//! exact stream compatibility with upstream rand is a non-goal; identical
//! output across platforms and runs for a given seed is guaranteed.

#![forbid(unsafe_code)]
// Vendored stand-in: style lints are not enforced here.
#![allow(clippy::all)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type reported by fallible generator operations. The vendored
/// generators are infallible, so this is never constructed; it exists
/// so `try_fill_bytes` keeps rand 0.8's signature.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fill `dest` with random bytes, reporting failure (never fails
    /// for the vendored generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Instantiate from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Instantiate from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as upstream rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
range_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Unbiased uniform draw in `[0, span)` (`span = 0` means the full u64
/// range) via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator — xoshiro256++, the
    /// algorithm upstream rand 0.8 uses for `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The full internal xoshiro256++ state, for checkpointing a
        /// generator mid-stream (e.g. simulator snapshot/restore).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured [`state`]
        /// word array, resuming the stream exactly where it left off.
        /// The all-zero state is the fixed point of xoshiro and is
        /// unreachable from `from_seed`, so it is nudged the same way.
        ///
        /// [`state`]: SmallRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return SmallRng {
                    s: [
                        0x9e37_79b9_7f4a_7c15,
                        0xbf58_476d_1ce4_e5b9,
                        0x94d0_49bb_1331_11eb,
                        0x2545_f491_4f6c_dd1d,
                    ],
                };
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero state is nudged, never a fixed point.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
            let v = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
