//! Property-based tests for link ledgers and routing.

use arm_net::ids::{CellId, ConnId, NodeId};
use arm_net::link::{LinkState, ResvClaim};
use arm_net::routing::shortest_path;
use arm_net::topology::Topology;
use proptest::prelude::*;

/// A random ledger operation.
#[derive(Clone, Debug)]
enum Op {
    Admit { conn: u32, b_min: f64, buffer: f64 },
    Release { conn: u32 },
    SetAlloc { conn: u32, b: f64 },
    SetClaim { key: u8, amount: f64 },
    ReleaseClaim { key: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8, 0.1f64..50.0, 0.0f64..10.0).prop_map(|(conn, b_min, buffer)| Op::Admit {
            conn,
            b_min,
            buffer
        }),
        (0u32..8).prop_map(|conn| Op::Release { conn }),
        (0u32..8, 0.0f64..120.0).prop_map(|(conn, b)| Op::SetAlloc { conn, b }),
        (0u8..4, 0.0f64..80.0).prop_map(|(key, amount)| Op::SetClaim { key, amount }),
        (0u8..4).prop_map(|key| Op::ReleaseClaim { key }),
    ]
}

fn claim_key(k: u8) -> ResvClaim {
    match k {
        0 => ResvClaim::DynPool,
        1 => ResvClaim::Cell(CellId(0)),
        2 => ResvClaim::Cell(CellId(1)),
        _ => ResvClaim::Conn(ConnId(99)),
    }
}

proptest! {
    /// No sequence of ledger operations — successful or failed — ever
    /// breaks the ledger invariants.
    #[test]
    fn ledger_never_breaks_under_random_ops(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut l = LinkState::new(100.0).with_buffer_capacity(50.0);
        for op in ops {
            match op {
                Op::Admit { conn, b_min, buffer } => {
                    let _ = l.admit(ConnId(conn), b_min, buffer);
                }
                Op::Release { conn } => {
                    let _ = l.release(ConnId(conn));
                }
                Op::SetAlloc { conn, b } => {
                    let _ = l.set_alloc(ConnId(conn), b);
                }
                Op::SetClaim { key, amount } => {
                    let granted = l.set_claim(claim_key(key), amount);
                    prop_assert!(granted <= amount + 1e-9);
                }
                Op::ReleaseClaim { key } => {
                    let _ = l.release_claim(claim_key(key));
                }
            }
            prop_assert!(l.check_invariants().is_ok(), "{:?}", l.check_invariants());
            // The paper's guarantee: floors plus advance reservations fit.
            prop_assert!(l.sum_b_min() + l.b_resv() <= l.capacity() + 1e-6);
        }
    }

    /// Admission honours the Table 2 bandwidth inequality exactly.
    #[test]
    fn admit_iff_table2_inequality(
        floors in prop::collection::vec(0.1f64..40.0, 0..6),
        resv in 0.0f64..50.0,
        b_new in 0.1f64..120.0,
    ) {
        let mut l = LinkState::new(100.0);
        let mut ok = true;
        for (i, f) in floors.iter().enumerate() {
            ok &= l.admit(ConnId(i as u32), *f, 0.0).is_ok();
        }
        prop_assume!(ok);
        let granted = l.set_claim(ResvClaim::DynPool, resv);
        let expect = b_new <= l.capacity() - granted - l.sum_b_min() + 1e-6;
        prop_assert_eq!(l.admits(b_new), expect);
        prop_assert_eq!(l.admit(ConnId(99), b_new, 0.0).is_ok(), expect);
    }

    /// On random connected graphs, Dijkstra returns hop-minimal loop-free
    /// routes, symmetric endpoints, and never fabricates unreachable paths.
    #[test]
    fn routing_on_random_ring_with_chords(
        n in 3usize..12,
        chords in prop::collection::vec((0usize..12, 0usize..12), 0..8),
        src in 0usize..12,
        dst in 0usize..12,
    ) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| t.add_switch(format!("s{i}"))).collect();
        for i in 0..n {
            t.add_wired_duplex(nodes[i], nodes[(i + 1) % n], 100.0, 0.001);
        }
        for (a, b) in chords {
            let (a, b) = (a % n, b % n);
            if a != b {
                t.add_wired_duplex(nodes[a], nodes[b], 100.0, 0.001);
            }
        }
        let (src, dst) = (nodes[src % n], nodes[dst % n]);
        let r = shortest_path(&t, src, dst).expect("ring is connected");
        prop_assert_eq!(r.source(), src);
        prop_assert_eq!(r.destination(), dst);
        // Loop-free.
        let mut seen = std::collections::HashSet::new();
        for node in &r.nodes {
            prop_assert!(seen.insert(*node));
        }
        // Hop count never exceeds the ring bound.
        prop_assert!(r.hop_count() <= n / 2 + 1);
        // Consecutive nodes are actually connected by the listed link.
        for (i, l) in r.links.iter().enumerate() {
            let from = r.nodes[i];
            let found = t
                .out_edges(from)
                .any(|e| e.link == *l && e.to == r.nodes[i + 1]);
            prop_assert!(found, "edge missing for hop {i}");
        }
    }
}
