// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The assembled network: topology + per-link ledgers + connection table.
//!
//! [`Network`] is the mutable state every algorithm crate operates on. It
//! offers *mechanical* multi-link operations (reserve a floor along a
//! route with rollback, release a route, move a connection between
//! routes); *policy* — the full Table 2 admission test, maxmin adaptation,
//! advance reservation — lives in `arm-qos` / `arm-reservation`.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::connection::{Connection, ConnectionState};
use crate::ids::{CellId, ConnId, LinkId};
use crate::link::{LedgerError, LinkState};
use crate::routing::Route;
use crate::topology::Topology;

/// Topology plus run-time state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    topo: Topology,
    links: Vec<LinkState>,
    conns: Vec<Option<Connection>>,
    /// Live connections traversing each link (index = LinkId).
    link_conns: Vec<BTreeSet<ConnId>>,
}

impl Network {
    /// Instantiate ledgers for every link of the topology.
    pub fn new(topo: Topology) -> Self {
        let links = (0..topo.link_count())
            .map(|i| LinkState::new(topo.link(LinkId::from_index(i)).capacity))
            .collect();
        let link_conns = vec![BTreeSet::new(); topo.link_count()];
        Network {
            topo,
            links,
            conns: Vec::new(),
            link_conns,
        }
    }

    /// The static graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Ledger of one link.
    pub fn link(&self, l: LinkId) -> &LinkState {
        &self.links[l.index()]
    }

    /// Mutable ledger of one link.
    pub fn link_mut(&mut self, l: LinkId) -> &mut LinkState {
        &mut self.links[l.index()]
    }

    /// Ledgers of every link, with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkState)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId::from_index(i), l))
    }

    /// Live connections traversing a link.
    pub fn conns_on_link(&self, l: LinkId) -> impl Iterator<Item = &Connection> {
        self.link_conns[l.index()]
            .iter()
            .filter_map(move |c| self.get(*c))
    }

    /// Ids of live connections traversing a link.
    pub fn conn_ids_on_link(&self, l: LinkId) -> Vec<ConnId> {
        self.link_conns[l.index()].iter().copied().collect()
    }

    /// Number of live connections traversing a link (`N_l`).
    pub fn conn_count_on_link(&self, l: LinkId) -> usize {
        self.link_conns[l.index()].len()
    }

    // ------------------------------------------------------------------
    // Connection table
    // ------------------------------------------------------------------

    /// Reserve the next connection id (before admission, so failed
    /// attempts are also identifiable in traces).
    pub fn next_conn_id(&mut self) -> ConnId {
        let id = ConnId::from_index(self.conns.len());
        self.conns.push(None);
        id
    }

    /// Install a connection record under its pre-allocated id.
    pub fn install(&mut self, conn: Connection) {
        let idx = conn.id.index();
        assert!(idx < self.conns.len(), "id not pre-allocated");
        assert!(self.conns[idx].is_none(), "id already installed");
        self.conns[idx] = Some(conn);
    }

    /// Look up a live or finished connection.
    pub fn get(&self, id: ConnId) -> Option<&Connection> {
        self.conns.get(id.index()).and_then(|c| c.as_ref())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: ConnId) -> Option<&mut Connection> {
        self.conns.get_mut(id.index()).and_then(|c| c.as_mut())
    }

    /// Iterate over all connection records (any state).
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.conns.iter().filter_map(|c| c.as_ref())
    }

    /// Iterate over live connections.
    pub fn live_connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections().filter(|c| c.state.is_live())
    }

    /// Live connections of one portable.
    pub fn connections_of_portable(
        &self,
        p: crate::ids::PortableId,
    ) -> impl Iterator<Item = &Connection> {
        self.live_connections().filter(move |c| c.portable == p)
    }

    /// Live connections currently homed in a cell.
    pub fn connections_in_cell(&self, cell: CellId) -> impl Iterator<Item = &Connection> {
        self.live_connections().filter(move |c| c.cell == cell)
    }

    // ------------------------------------------------------------------
    // Mechanical multi-link operations
    // ------------------------------------------------------------------

    /// Reserve `b_min`/`buffers[i]` on every link of `route` for `conn`,
    /// atomically: on any per-link failure, links already reserved are
    /// rolled back and the error is returned together with the failing
    /// link. `buffers` must have one entry per route link.
    ///
    /// `as_handoff` lets the connection consume its own advance claims.
    pub fn reserve_route(
        &mut self,
        conn: ConnId,
        route: &Route,
        b_min: f64,
        buffers: &[f64],
        as_handoff: bool,
    ) -> Result<(), (LinkId, LedgerError)> {
        assert_eq!(buffers.len(), route.links.len());
        let mut done = 0;
        for (i, l) in route.links.iter().enumerate() {
            let r = if as_handoff {
                self.links[l.index()].admit_handoff(conn, b_min, buffers[i])
            } else {
                self.links[l.index()].admit(conn, b_min, buffers[i])
            };
            match r {
                Ok(()) => done += 1,
                Err(e) => {
                    for l in &route.links[..done] {
                        self.links[l.index()]
                            .release(conn)
                            .expect("invariant: rollback of just-reserved link");
                        self.link_conns[l.index()].remove(&conn);
                    }
                    return Err((*l, e));
                }
            }
        }
        for l in &route.links {
            self.link_conns[l.index()].insert(conn);
        }
        Ok(())
    }

    /// Release `conn` from every link of `route`. Links where the
    /// connection is unknown are skipped (idempotent teardown).
    pub fn release_route(&mut self, conn: ConnId, route: &Route) {
        for l in &route.links {
            let _ = self.links[l.index()].release(conn);
            self.link_conns[l.index()].remove(&conn);
        }
    }

    /// Set a live connection's end-to-end rate: adjusts the allocation on
    /// every link of its route and the record's `b_current`. The rate must
    /// lie in `[b_min, b_max]`.
    pub fn set_conn_rate(&mut self, id: ConnId, rate: f64) -> Result<(), (LinkId, LedgerError)> {
        let (route, b_min, b_max, old) = {
            let c = self
                .get(id)
                .expect("precondition: set_conn_rate on unknown connection");
            (c.route.clone(), c.qos.b_min, c.qos.b_max, c.b_current)
        };
        assert!(
            rate >= b_min - 1e-9 && rate <= b_max + 1e-9,
            "rate {rate} outside [{b_min}, {b_max}]"
        );
        let rate = rate.clamp(b_min, b_max);
        let mut done = 0;
        for l in &route.links {
            match self.links[l.index()].set_alloc(id, rate) {
                Ok(()) => done += 1,
                Err(e) => {
                    for l in &route.links[..done] {
                        self.links[l.index()]
                            .set_alloc(id, old)
                            .expect("invariant: rollback of rate change");
                    }
                    return Err((*l, e));
                }
            }
        }
        self.get_mut(id)
            .expect("invariant: checked above")
            .b_current = rate;
        Ok(())
    }

    /// Tear down a live connection with the given terminal state,
    /// releasing all its links.
    pub fn finish(&mut self, id: ConnId, state: ConnectionState) {
        debug_assert!(!state.is_live());
        let route = match self.get(id) {
            Some(c) if c.state.is_live() => c.route.clone(),
            _ => return,
        };
        self.release_route(id, &route);
        let c = self.get_mut(id).expect("invariant: checked above");
        c.state = state;
        c.b_current = 0.0;
    }

    /// Verify every link ledger and the link↔connection index agree; used
    /// by integration and property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            l.check_invariants()
                .map_err(|e| format!("link l{i}: {e}"))?;
            let from_ledger: BTreeSet<ConnId> = l.allocs().map(|(c, _)| c).collect();
            if from_ledger != self.link_conns[i] {
                return Err(format!(
                    "link l{i}: ledger conns {:?} != index {:?}",
                    from_ledger, self.link_conns[i]
                ));
            }
        }
        for c in self.live_connections() {
            for l in &c.route.links {
                if self.links[l.index()].alloc(c.id).is_none() {
                    return Err(format!("live {:?} missing from {:?}", c.id, l));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowspec::QosRequest;
    use crate::ids::{NodeId, PortableId};
    use crate::routing::shortest_path;
    use arm_sim::SimTime;

    /// Two cells joined by one switch; backbone links of 10 Mbps.
    fn two_cell_net() -> (Network, CellId, CellId) {
        let mut t = Topology::new();
        let sw = t.add_switch("sw");
        let c0 = t.add_cell("c0", 1600.0, 0.0);
        let c1 = t.add_cell("c1", 1600.0, 0.0);
        t.add_wired_duplex(sw, t.base_station(c0), 10_000.0, 0.0);
        t.add_wired_duplex(sw, t.base_station(c1), 10_000.0, 0.0);
        (Network::new(t), c0, c1)
    }

    fn make_conn(net: &mut Network, cell: CellId, remote_cell: CellId, qos: QosRequest) -> ConnId {
        let id = net.next_conn_id();
        let route = shortest_path(
            net.topology(),
            net.topology().air_node(cell),
            net.topology().air_node(remote_cell),
        )
        .unwrap();
        let conn = Connection::new(
            id,
            PortableId(0),
            cell,
            NodeId(0),
            qos,
            route,
            SimTime::ZERO,
        );
        net.install(conn);
        id
    }

    #[test]
    fn reserve_and_release_route() {
        let (mut net, c0, c1) = two_cell_net();
        let id = make_conn(&mut net, c0, c1, QosRequest::bandwidth(100.0, 400.0));
        let route = net.get(id).unwrap().route.clone();
        let buffers = vec![1.0; route.links.len()];
        net.reserve_route(id, &route, 100.0, &buffers, false)
            .unwrap();
        assert!(net.check_invariants().is_ok());
        let wl = net.topology().wireless_link(c0);
        assert_eq!(net.link(wl).sum_b_min(), 100.0);
        assert_eq!(net.conn_count_on_link(wl), 1);

        net.release_route(id, &route);
        assert_eq!(net.link(wl).sum_b_min(), 0.0);
        assert_eq!(net.conn_count_on_link(wl), 0);
        // release_route is mechanical; the caller records the new state
        // before the network is consistent again.
        net.get_mut(id).unwrap().state = ConnectionState::Terminated;
        assert!(net.check_invariants().is_ok());
    }

    /// Install a connection with an explicit route (e.g. a local flow that
    /// only consumes its own cell's medium).
    fn make_conn_on_route(
        net: &mut Network,
        cell: CellId,
        route: Route,
        qos: QosRequest,
    ) -> ConnId {
        let id = net.next_conn_id();
        let conn = Connection::new(
            id,
            PortableId(1),
            cell,
            NodeId(0),
            qos,
            route,
            SimTime::ZERO,
        );
        net.install(conn);
        id
    }

    /// A route consuming only the given cell's wireless medium.
    fn local_route(net: &Network, cell: CellId) -> Route {
        Route {
            nodes: vec![
                net.topology().air_node(cell),
                net.topology().base_station(cell),
            ],
            links: vec![net.topology().wireless_link(cell)],
        }
    }

    #[test]
    fn reserve_rolls_back_on_failure() {
        let (mut net, c0, c1) = two_cell_net();
        // Fill the destination cell's medium so the last hop fails.
        let froute = local_route(&net, c1);
        let filler = make_conn_on_route(&mut net, c1, froute.clone(), QosRequest::fixed(1600.0));
        net.reserve_route(filler, &froute, 1600.0, &[0.0], false)
            .unwrap();

        let id = make_conn(&mut net, c0, c1, QosRequest::fixed(100.0));
        let route = net.get(id).unwrap().route.clone();
        let err = net
            .reserve_route(id, &route, 100.0, &vec![0.0; route.links.len()], false)
            .unwrap_err();
        assert_eq!(err.0, net.topology().wireless_link(c1));
        // First hops were rolled back.
        let wl0 = net.topology().wireless_link(c0);
        assert_eq!(net.link(wl0).sum_b_min(), 0.0);
        assert_eq!(net.conn_count_on_link(wl0), 0);
        // The caller records the admission failure.
        net.get_mut(id).unwrap().state = ConnectionState::Blocked;
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn rate_changes_apply_everywhere() {
        let (mut net, c0, c1) = two_cell_net();
        let id = make_conn(&mut net, c0, c1, QosRequest::bandwidth(100.0, 800.0));
        let route = net.get(id).unwrap().route.clone();
        net.reserve_route(id, &route, 100.0, &vec![0.0; route.links.len()], false)
            .unwrap();
        net.set_conn_rate(id, 500.0).unwrap();
        assert_eq!(net.get(id).unwrap().b_current, 500.0);
        for l in &route.links {
            assert_eq!(net.link(*l).alloc(id).unwrap().b_alloc, 500.0);
        }
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn rate_change_rolls_back_on_narrow_link() {
        let (mut net, c0, c1) = two_cell_net();
        let a = make_conn(&mut net, c0, c1, QosRequest::bandwidth(100.0, 1600.0));
        let route_a = net.get(a).unwrap().route.clone();
        net.reserve_route(a, &route_a, 100.0, &vec![0.0; route_a.links.len()], false)
            .unwrap();
        // A second connection inside cell 1 consumes most of that medium.
        let route_b = local_route(&net, c1);
        let b = make_conn_on_route(&mut net, c1, route_b.clone(), QosRequest::fixed(1400.0));
        net.reserve_route(b, &route_b, 1400.0, &[0.0], false)
            .unwrap();
        // Raising a to 300 exceeds cell 1's medium (1400 + 300 > 1600).
        let err = net.set_conn_rate(a, 300.0).unwrap_err();
        assert_eq!(err.0, net.topology().wireless_link(c1));
        // Rolled back to 100 everywhere.
        assert_eq!(net.get(a).unwrap().b_current, 100.0);
        for l in &route_a.links {
            assert_eq!(net.link(*l).alloc(a).unwrap().b_alloc, 100.0);
        }
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn finish_releases_and_marks() {
        let (mut net, c0, c1) = two_cell_net();
        let id = make_conn(&mut net, c0, c1, QosRequest::fixed(100.0));
        let route = net.get(id).unwrap().route.clone();
        net.reserve_route(id, &route, 100.0, &vec![0.0; route.links.len()], false)
            .unwrap();
        net.finish(id, ConnectionState::Terminated);
        assert_eq!(net.get(id).unwrap().state, ConnectionState::Terminated);
        assert_eq!(net.get(id).unwrap().b_current, 0.0);
        assert_eq!(net.live_connections().count(), 0);
        let wl = net.topology().wireless_link(c0);
        assert_eq!(net.link(wl).sum_b_min(), 0.0);
        // Idempotent.
        net.finish(id, ConnectionState::Terminated);
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn per_cell_and_per_portable_queries() {
        let (mut net, c0, c1) = two_cell_net();
        let id = make_conn(&mut net, c0, c1, QosRequest::fixed(100.0));
        let route = net.get(id).unwrap().route.clone();
        net.reserve_route(id, &route, 100.0, &vec![0.0; route.links.len()], false)
            .unwrap();
        assert_eq!(net.connections_in_cell(c0).count(), 1);
        assert_eq!(net.connections_in_cell(c1).count(), 0);
        assert_eq!(net.connections_of_portable(PortableId(0)).count(), 1);
        assert_eq!(net.connections_of_portable(PortableId(9)).count(), 0);
    }
}
