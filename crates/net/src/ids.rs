// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Strongly typed identifiers.
//!
//! Each entity class in the system model gets its own index newtype so a
//! cell id can never be passed where a link id is expected. Ids are dense
//! `u32` indices assigned by the owning container (topology, network,
//! environment), which lets hot paths use `Vec` indexing rather than hash
//! maps.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this id wraps.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("invariant: id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A node in the topology: a backbone switch or a base station.
    NodeId,
    "n"
);
define_id!(
    /// A directed link between two nodes (the wireless hop is modelled as
    /// the link between a base station and its cell's air interface).
    LinkId,
    "l"
);
define_id!(
    /// A wireless cell served by one base station.
    CellId,
    "c"
);
define_id!(
    /// A connection (flow) with QoS bounds.
    ConnId,
    "f"
);
define_id!(
    /// A portable computer — per the paper's footnote, "portable" means
    /// the user of a portable.
    PortableId,
    "p"
);
define_id!(
    /// A zone: a geographical group of cells served by one profile server.
    ZoneId,
    "z"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(usize::from(c), 7);
        assert_eq!(format!("{c}"), "c7");
        assert_eq!(format!("{c:?}"), "c7");
    }

    #[test]
    fn distinct_types_distinct_display() {
        assert_eq!(format!("{}", NodeId(1)), "n1");
        assert_eq!(format!("{}", LinkId(1)), "l1");
        assert_eq!(format!("{}", ConnId(1)), "f1");
        assert_eq!(format!("{}", PortableId(1)), "p1");
        assert_eq!(format!("{}", ZoneId(1)), "z1");
    }

    #[test]
    fn ordering_and_hash_usable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ConnId(3));
        assert!(s.contains(&ConnId(3)));
        assert!(CellId(1) < CellId(2));
    }

    #[test]
    fn serde_transparent() {
        let j = serde_json_like(CellId(5));
        assert_eq!(j, "5");
    }

    /// Tiny stand-in so we don't pull serde_json just for one assertion:
    /// serialize through serde's to-string of the transparent u32.
    fn serde_json_like(c: CellId) -> String {
        // Transparent newtype means the u32 is the serialized form.
        format!("{}", c.0)
    }
}
