//! Connection lifecycle records.
//!
//! A connection is one QoS-bounded flow between two endpoints, one (or
//! both) of which is a portable on a wireless cell. The record keeps the
//! negotiated bounds, the current route, the current end-to-end allocated
//! rate, and lifecycle state; per-link numbers live in the link ledgers.

use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::flowspec::QosRequest;
use crate::ids::{CellId, ConnId, NodeId, PortableId};
use crate::routing::Route;

/// Where a connection is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionState {
    /// Admitted and transferring.
    Active,
    /// Mid-handoff: the old cell's resources are being moved to the new
    /// cell (transient; most operations treat it as active).
    HandingOff,
    /// Finished normally.
    Terminated,
    /// Dropped mid-lifetime because a handoff could not be accommodated —
    /// the event counted by the paper's `P_d`.
    Dropped,
    /// Never admitted — counted by `P_b`.
    Blocked,
}

impl ConnectionState {
    /// Is the connection consuming resources right now?
    pub fn is_live(self) -> bool {
        matches!(self, ConnectionState::Active | ConnectionState::HandingOff)
    }
}

/// One QoS-bounded flow.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Connection {
    /// Identifier.
    pub id: ConnId,
    /// The portable this connection belongs to (determines static/mobile
    /// policy and which cell's medium it consumes).
    pub portable: PortableId,
    /// The cell the portable was in when the connection was admitted or
    /// last handed off.
    pub cell: CellId,
    /// Fixed wired endpoint (e.g. a server on the backbone). The wireless
    /// endpoint is implied by `cell`.
    pub remote: NodeId,
    /// Negotiated QoS bounds.
    pub qos: QosRequest,
    /// Current route (wireless hop first when the portable is the source).
    pub route: Route,
    /// Current end-to-end allocated rate (kbps), in
    /// `[qos.b_min, qos.b_max]` while live.
    pub b_current: f64,
    /// Lifecycle state.
    pub state: ConnectionState,
    /// Admission time.
    pub started: SimTime,
    /// Handoffs survived so far.
    pub handoffs: u32,
}

impl Connection {
    /// A freshly admitted connection at its minimum rate.
    pub fn new(
        id: ConnId,
        portable: PortableId,
        cell: CellId,
        remote: NodeId,
        qos: QosRequest,
        route: Route,
        started: SimTime,
    ) -> Self {
        Connection {
            id,
            portable,
            cell,
            remote,
            qos,
            route,
            b_current: qos.b_min,
            state: ConnectionState::Active,
            started,
            handoffs: 0,
        }
    }

    /// Is this connection "satisfied" in the maxmin sense — already at its
    /// maximum useful rate?
    pub fn is_satisfied(&self) -> bool {
        self.b_current >= self.qos.b_max - 1e-9
    }

    /// How much more bandwidth the connection could use.
    pub fn residual_demand(&self) -> f64 {
        (self.qos.b_max - self.b_current).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowspec::QosRequest;

    fn conn(b_min: f64, b_max: f64) -> Connection {
        Connection::new(
            ConnId(0),
            PortableId(0),
            CellId(0),
            NodeId(0),
            QosRequest::bandwidth(b_min, b_max),
            Route::trivial(NodeId(0)),
            SimTime::ZERO,
        )
    }

    #[test]
    fn starts_at_minimum_rate() {
        let c = conn(16.0, 64.0);
        assert_eq!(c.b_current, 16.0);
        assert_eq!(c.state, ConnectionState::Active);
        assert!(!c.is_satisfied());
        assert_eq!(c.residual_demand(), 48.0);
    }

    #[test]
    fn satisfaction_at_b_max() {
        let mut c = conn(16.0, 64.0);
        c.b_current = 64.0;
        assert!(c.is_satisfied());
        assert_eq!(c.residual_demand(), 0.0);
    }

    #[test]
    fn fixed_rate_is_born_satisfied() {
        let c = conn(16.0, 16.0);
        assert!(c.is_satisfied());
    }

    #[test]
    fn state_liveness() {
        assert!(ConnectionState::Active.is_live());
        assert!(ConnectionState::HandingOff.is_live());
        assert!(!ConnectionState::Terminated.is_live());
        assert!(!ConnectionState::Dropped.is_live());
        assert!(!ConnectionState::Blocked.is_live());
    }
}
