//! Control packets of the distributed rate-allocation protocol (§5.3.1).
//!
//! Switches exchange **ADVERTISE** packets carrying a *stamped rate* — the
//! initiating switch's desired bandwidth for a connection — which each
//! intermediate switch clamps down to its own *advertised rate*. After the
//! (up to four) round trips, the initiator emits **UPDATE** messages fixing
//! the connection's new rate. Each ADVERTISE carries a global id and a
//! sequence number "to avoid possible infinite loop due to the flooding
//! mechanism".

use crate::ids::{ConnId, NodeId};

/// Which way along a connection's route a control packet travels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Toward the connection's source.
    Upstream,
    /// Toward the connection's destination.
    Downstream,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Upstream => Direction::Downstream,
            Direction::Downstream => Direction::Upstream,
        }
    }
}

/// A control packet on the signalling channel.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlMessage {
    /// Rate advertisement for one connection.
    Advertise(Advertise),
    /// Final rate fix after an adaptation round.
    Update(Update),
}

/// ADVERTISE: "the next estimate for optimal bandwidth for the connection".
#[derive(Clone, Debug, PartialEq)]
pub struct Advertise {
    /// The connection this advertisement concerns.
    pub conn: ConnId,
    /// Stamped rate `b_stamp` — the initiator's desired *excess* bandwidth
    /// for the connection (kbps beyond `b_min`), clamped downward by every
    /// switch whose advertised rate is lower.
    pub stamped_rate: f64,
    /// Travel direction relative to the connection's route.
    pub direction: Direction,
    /// The switch that initiated this adaptation round.
    pub initiator: NodeId,
    /// Global id of the adaptation round (initiator-scoped counter).
    pub global_id: u64,
    /// Sequence number within the round (1..=4: the four round trips).
    pub seq: u32,
}

/// UPDATE: fixes a connection's rate to the converged value.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// The connection being updated.
    pub conn: ConnId,
    /// New excess rate (kbps beyond `b_min`).
    pub rate: f64,
    /// The switch that initiated the round.
    pub initiator: NodeId,
    /// Global id of the adaptation round.
    pub global_id: u64,
}

impl ControlMessage {
    /// The connection this message concerns.
    pub fn conn(&self) -> ConnId {
        match self {
            ControlMessage::Advertise(a) => a.conn,
            ControlMessage::Update(u) => u.conn,
        }
    }

    /// UPDATE packets are processed before ADVERTISE packets when both
    /// arrive simultaneously (§5.3.1); this priority key sorts accordingly
    /// (lower = first).
    pub fn priority(&self) -> u8 {
        match self {
            ControlMessage::Update(_) => 0,
            ControlMessage::Advertise(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reversal() {
        assert_eq!(Direction::Upstream.reverse(), Direction::Downstream);
        assert_eq!(Direction::Downstream.reverse(), Direction::Upstream);
    }

    #[test]
    fn update_outranks_advertise() {
        let adv = ControlMessage::Advertise(Advertise {
            conn: ConnId(1),
            stamped_rate: 10.0,
            direction: Direction::Upstream,
            initiator: NodeId(0),
            global_id: 1,
            seq: 1,
        });
        let upd = ControlMessage::Update(Update {
            conn: ConnId(1),
            rate: 8.0,
            initiator: NodeId(0),
            global_id: 1,
        });
        assert!(upd.priority() < adv.priority());
        assert_eq!(adv.conn(), ConnId(1));
        assert_eq!(upd.conn(), ConnId(1));
    }
}
