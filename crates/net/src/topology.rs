//! The node/link graph.
//!
//! Nodes are backbone **switches** and **base stations**; each base station
//! serves one wireless **cell**. Wired links are full-duplex and modelled
//! as two independent capacity resources (one per direction). The wireless
//! hop of a cell is a **single shared-medium resource**: the paper speaks
//! of "cell throughput" (e.g. 1.6 Mbps in §7.1) shared by all uplink and
//! downlink traffic in the cell, so both graph directions of the air
//! interface map onto one capacity ledger.
//!
//! To give the air interface a place in route computations, every cell gets
//! an auxiliary *air node* representing the portable side of the medium; a
//! connection terminating at a portable in cell `c` routes to `air(c)`.

use serde::{Deserialize, Serialize};

use crate::ids::{CellId, LinkId, NodeId};

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A backbone packet switch (WFQ or RCSP scheduler, per Table 2).
    Switch,
    /// The base station serving a cell.
    BaseStation(CellId),
    /// The portable side of a cell's wireless medium (route endpoint).
    Air(CellId),
}

/// Static description of a capacity resource.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link speed `C_l` (kbps).
    pub capacity: f64,
    /// Propagation delay (seconds). The paper omits propagation delay "for
    /// simplicity of presentation"; we carry it but default it to zero.
    pub prop_delay: f64,
    /// Per-link packet error probability `p_e,l` (wireless links are
    /// error-prone; wired links typically 0).
    pub error_prob: f64,
    /// The cell whose shared medium this is, if wireless.
    pub wireless_cell: Option<CellId>,
}

/// A node record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Debug name.
    pub name: String,
}

/// A directed edge in the routing graph, referencing its capacity resource.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Tail.
    pub from: NodeId,
    /// Head.
    pub to: NodeId,
    /// The capacity resource this edge consumes.
    pub link: LinkId,
}

/// Per-cell wiring produced by [`Topology::add_cell`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellPorts {
    /// The base-station node.
    pub base_station: NodeId,
    /// The air node (portable side of the medium).
    pub air: NodeId,
    /// The shared wireless medium resource.
    pub wireless: LinkId,
}

/// The static network graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    out_adj: Vec<Vec<usize>>,
    /// Cell wiring, indexed by `CellId`.
    cells: Vec<CellPorts>,
}

impl Topology {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a backbone switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(Node {
            kind: NodeKind::Switch,
            name: name.into(),
        })
    }

    /// Add a cell: creates its base station, its air node, and the shared
    /// wireless medium with the given cell throughput (kbps) and wireless
    /// error probability. Returns the new `CellId`.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell_throughput: f64,
        error_prob: f64,
    ) -> CellId {
        let cell = CellId::from_index(self.cells.len());
        let name = name.into();
        let bs = self.push_node(Node {
            kind: NodeKind::BaseStation(cell),
            name: format!("bs:{name}"),
        });
        let air = self.push_node(Node {
            kind: NodeKind::Air(cell),
            name: format!("air:{name}"),
        });
        let link = self.push_link(LinkSpec {
            capacity: cell_throughput,
            prop_delay: 0.0,
            error_prob,
            wireless_cell: Some(cell),
        });
        // Both directions of the air interface share the one medium.
        self.push_edge(bs, air, link);
        self.push_edge(air, bs, link);
        self.cells.push(CellPorts {
            base_station: bs,
            air,
            wireless: link,
        });
        cell
    }

    /// Add a full-duplex wired link: two independent capacity resources.
    /// Returns `(a→b, b→a)` link ids.
    pub fn add_wired_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        prop_delay: f64,
    ) -> (LinkId, LinkId) {
        let ab = self.push_link(LinkSpec {
            capacity,
            prop_delay,
            error_prob: 0.0,
            wireless_cell: None,
        });
        self.push_edge(a, b, ab);
        let ba = self.push_link(LinkSpec {
            capacity,
            prop_delay,
            error_prob: 0.0,
            wireless_cell: None,
        });
        self.push_edge(b, a, ba);
        (ab, ba)
    }

    /// Add a one-way wired link (used by tests that need asymmetric
    /// bottlenecks).
    pub fn add_wired_simplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        prop_delay: f64,
    ) -> LinkId {
        let ab = self.push_link(LinkSpec {
            capacity,
            prop_delay,
            error_prob: 0.0,
            wireless_cell: None,
        });
        self.push_edge(a, b, ab);
        ab
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        self.out_adj.push(Vec::new());
        id
    }

    fn push_link(&mut self, spec: LinkSpec) -> LinkId {
        let id = LinkId::from_index(self.links.len());
        self.links.push(spec);
        id
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, link: LinkId) {
        let idx = self.edges.len();
        self.edges.push(Edge { from, to, link });
        self.out_adj[from.index()].push(idx);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of capacity resources (links).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Node record.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link spec.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.index()]
    }

    /// Cell wiring.
    pub fn cell(&self, id: CellId) -> &CellPorts {
        &self.cells[id.index()]
    }

    /// All cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &CellPorts)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_adj[n.index()].iter().map(move |i| &self.edges[*i])
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The base-station node of a cell.
    pub fn base_station(&self, cell: CellId) -> NodeId {
        self.cells[cell.index()].base_station
    }

    /// The air node of a cell.
    pub fn air_node(&self, cell: CellId) -> NodeId {
        self.cells[cell.index()].air
    }

    /// The shared wireless medium of a cell.
    pub fn wireless_link(&self, cell: CellId) -> LinkId {
        self.cells[cell.index()].wireless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_cells_on_a_switch() {
        let mut t = Topology::new();
        let sw = t.add_switch("sw0");
        let c0 = t.add_cell("cell0", 1600.0, 0.01);
        let c1 = t.add_cell("cell1", 1600.0, 0.01);
        t.add_wired_duplex(sw, t.base_station(c0), 10_000.0, 0.0);
        t.add_wired_duplex(sw, t.base_station(c1), 10_000.0, 0.0);

        assert_eq!(t.cell_count(), 2);
        assert_eq!(t.node_count(), 5); // switch + 2×(bs + air)
        assert_eq!(t.link_count(), 6); // 2 wireless + 4 wired simplex halves
        assert_eq!(t.link(t.wireless_link(c0)).wireless_cell, Some(c0));
        assert_eq!(t.link(t.wireless_link(c0)).capacity, 1600.0);
        assert_eq!(t.node(t.base_station(c1)).kind, NodeKind::BaseStation(c1));
        assert_eq!(t.node(t.air_node(c1)).kind, NodeKind::Air(c1));
    }

    #[test]
    fn wireless_directions_share_one_resource() {
        let mut t = Topology::new();
        let c = t.add_cell("c", 1600.0, 0.0);
        let bs = t.base_station(c);
        let air = t.air_node(c);
        let up: Vec<_> = t.out_edges(air).collect();
        let down: Vec<_> = t.out_edges(bs).collect();
        assert_eq!(up.len(), 1);
        assert_eq!(down.len(), 1);
        assert_eq!(up[0].link, down[0].link, "shared medium");
    }

    #[test]
    fn duplex_wired_links_are_independent() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let (ab, ba) = t.add_wired_duplex(a, b, 1000.0, 0.001);
        assert_ne!(ab, ba);
        assert_eq!(t.link(ab).capacity, 1000.0);
        assert_eq!(t.link(ab).wireless_cell, None);
        assert_eq!(t.link(ab).prop_delay, 0.001);
    }

    #[test]
    fn cells_iterator_enumerates_in_id_order() {
        let mut t = Topology::new();
        let c0 = t.add_cell("x", 100.0, 0.0);
        let c1 = t.add_cell("y", 200.0, 0.0);
        let got: Vec<_> = t.cells().map(|(id, _)| id).collect();
        assert_eq!(got, vec![c0, c1]);
    }
}
