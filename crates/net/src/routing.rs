// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Route computation over the backbone.
//!
//! §4's overview assumes "an appropriate route found by a routing
//! algorithm"; the paper does not innovate here, so we provide a standard
//! Dijkstra over the directed edge graph, minimising hop count with
//! propagation delay as a tie-break. Multicast fan-out (the pre-setup of
//! routes into every neighbouring cell, §4) is computed as independent
//! unicast routes that the caller may overlap-count — adequate because
//! indoor backbones are small trees or meshes where shared prefixes are
//! found naturally by identical shortest-path prefixes.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::topology::Topology;

/// A loop-free path: the node sequence and the capacity resources of each
/// hop, in travel order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Visited nodes, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Link resources consumed, one per hop (`nodes.len() - 1` of them).
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops (links).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self
            .nodes
            .first()
            .expect("invariant: route has at least one node")
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self
            .nodes
            .last()
            .expect("invariant: route has at least one node")
    }

    /// Whether the route traverses the given link resource.
    pub fn uses_link(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// The trivial single-node route.
    pub fn trivial(n: NodeId) -> Self {
        Route {
            nodes: vec![n],
            links: Vec::new(),
        }
    }
}

/// Shortest path from `src` to `dst` by `(hops, total prop delay)`.
///
/// Returns `None` when `dst` is unreachable.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Route> {
    shortest_path_avoiding(topo, src, dst, &std::collections::BTreeSet::new())
}

/// Shortest path from `src` to `dst` that traverses none of the links in
/// `avoid` — used to route around failed links. Returns `None` when no
/// such path exists.
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    avoid: &std::collections::BTreeSet<LinkId>,
) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    const UNSEEN: u64 = u64::MAX;
    // Cost packs (hops, delay in ns) lexicographically into a u64-pair.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Cost {
        hops: u32,
        delay_ns: u64,
    }
    let n = topo.node_count();
    let mut best = vec![
        Cost {
            hops: u32::MAX,
            delay_ns: UNSEEN,
        };
        n
    ];
    // (cost, node) min-heap via BinaryHeap<Reverse<_>> with node index as
    // the final deterministic tie-break.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap = BinaryHeap::new();
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    best[src.index()] = Cost {
        hops: 0,
        delay_ns: 0,
    };
    heap.push(Reverse((0u32, 0u64, src.index())));
    while let Some(Reverse((hops, delay_ns, u))) = heap.pop() {
        let cur = best[u];
        if (hops, delay_ns) != (cur.hops, cur.delay_ns) {
            continue; // stale entry
        }
        if u == dst.index() {
            break;
        }
        for edge in topo.out_edges(NodeId::from_index(u)) {
            if avoid.contains(&edge.link) {
                continue;
            }
            let v = edge.to.index();
            let spec = topo.link(edge.link);
            let cand = Cost {
                hops: hops + 1,
                delay_ns: delay_ns + (spec.prop_delay * 1e9) as u64,
            };
            if (cand.hops, cand.delay_ns) < (best[v].hops, best[v].delay_ns) {
                best[v] = cand;
                prev[v] = Some((NodeId::from_index(u), edge.link));
                heap.push(Reverse((cand.hops, cand.delay_ns, v)));
            }
        }
    }
    if best[dst.index()].hops == u32::MAX {
        return None;
    }
    // Walk predecessors back to the source.
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.index()].expect("invariant: predecessor chain broken");
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Route { nodes, links })
}

/// Routes from `src` to the air node of every listed cell — the multicast
/// pre-setup of §4 (packets are multicast to pre-allocated buffers in all
/// neighbouring cells of a mobile's current cell).
pub fn multicast_routes(
    topo: &Topology,
    src: NodeId,
    cells: &[crate::ids::CellId],
) -> Vec<(crate::ids::CellId, Option<Route>)> {
    cells
        .iter()
        .map(|c| (*c, shortest_path(topo, src, topo.air_node(*c))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CellId;

    /// Star backbone: one switch, three cells.
    fn star() -> (Topology, Vec<CellId>) {
        let mut t = Topology::new();
        let sw = t.add_switch("sw");
        let cells: Vec<CellId> = (0..3)
            .map(|i| {
                let c = t.add_cell(format!("c{i}"), 1600.0, 0.0);
                t.add_wired_duplex(sw, t.base_station(c), 10_000.0, 0.001);
                c
            })
            .collect();
        (t, cells)
    }

    #[test]
    fn air_to_air_route_is_four_hops() {
        let (t, cells) = star();
        let r = shortest_path(&t, t.air_node(cells[0]), t.air_node(cells[1])).unwrap();
        // air0 → bs0 → sw → bs1 → air1
        assert_eq!(r.hop_count(), 4);
        assert_eq!(r.source(), t.air_node(cells[0]));
        assert_eq!(r.destination(), t.air_node(cells[1]));
        assert!(r.uses_link(t.wireless_link(cells[0])));
        assert!(r.uses_link(t.wireless_link(cells[1])));
    }

    #[test]
    fn trivial_route() {
        let (t, cells) = star();
        let n = t.air_node(cells[0]);
        let r = shortest_path(&t, n, n).unwrap();
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.nodes, vec![n]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        assert!(shortest_path(&t, a, b).is_none());
    }

    #[test]
    fn avoiding_a_failed_link_takes_the_detour() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let c = t.add_switch("c");
        t.add_wired_simplex(a, b, 100.0, 0.001);
        t.add_wired_simplex(a, c, 100.0, 0.001);
        t.add_wired_simplex(c, b, 100.0, 0.001);
        let direct = shortest_path(&t, a, b).unwrap();
        assert_eq!(direct.hop_count(), 1);
        let mut avoid = std::collections::BTreeSet::new();
        avoid.insert(direct.links[0]);
        let detour = shortest_path_avoiding(&t, a, b, &avoid).unwrap();
        assert_eq!(detour.hop_count(), 2);
        assert!(!detour.uses_link(direct.links[0]));
        // Avoiding every outbound link makes the destination unreachable.
        for e in t.out_edges(a) {
            avoid.insert(e.link);
        }
        assert!(shortest_path_avoiding(&t, a, b, &avoid).is_none());
    }

    #[test]
    fn prefers_fewer_hops_then_lower_delay() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let c = t.add_switch("c");
        // Direct high-delay edge vs two-hop low-delay path.
        t.add_wired_simplex(a, b, 100.0, 0.5);
        t.add_wired_simplex(a, c, 100.0, 0.001);
        t.add_wired_simplex(c, b, 100.0, 0.001);
        let r = shortest_path(&t, a, b).unwrap();
        assert_eq!(r.hop_count(), 1, "hop count dominates delay");

        // Among equal hop counts, delay decides.
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let slow = t.add_wired_simplex(a, b, 100.0, 0.5);
        let fast = t.add_wired_simplex(a, b, 100.0, 0.001);
        let r = shortest_path(&t, a, b).unwrap();
        assert_eq!(r.links, vec![fast]);
        assert_ne!(r.links, vec![slow]);
    }

    #[test]
    fn multicast_covers_all_neighbours() {
        let (t, cells) = star();
        let src = t.base_station(cells[0]);
        let routes = multicast_routes(&t, src, &cells[1..]);
        assert_eq!(routes.len(), 2);
        for (cell, r) in routes {
            let r = r.expect("reachable");
            assert_eq!(r.destination(), t.air_node(cell));
            // bs0 → sw → bsX → airX
            assert_eq!(r.hop_count(), 3);
        }
    }

    #[test]
    fn route_is_loop_free() {
        let (t, cells) = star();
        let r = shortest_path(&t, t.air_node(cells[0]), t.air_node(cells[2])).unwrap();
        let mut seen = std::collections::HashSet::new();
        for n in &r.nodes {
            assert!(seen.insert(*n), "node repeated: {n:?}");
        }
    }
}
