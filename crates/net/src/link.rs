// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Per-link reservation ledgers.
//!
//! A [`LinkState`] tracks, for one capacity resource `l`:
//!
//! * the link speed `C_l`,
//! * **allocations** for ongoing connections: each connection `i` holds a
//!   guaranteed floor `b_min,i` and a current allocation
//!   `b_alloc,i ∈ [b_min,i, b_max,i]` (the upper bound is enforced by the
//!   caller, which knows the QoS request),
//! * **advance reservations** `b_resv,l`: bandwidth set aside for predicted
//!   handoffs. Claims are named — per-connection claims for
//!   profile-predicted handoffs, per-cell aggregate claims from the lounge
//!   algorithms, and the dynamically adjustable pool `B_dyn` of §4.3 —
//!   so each reservation algorithm can adjust its own claims without
//!   trampling the others,
//! * **buffer space** allocations (Table 2's buffer column).
//!
//! The paper's central quantity, the *excess available bandwidth*
//! `b'_av,l := C_l − b_resv,l − Σ_i b_min,i` (§5.2), falls directly out of
//! the ledger.
//!
//! ## Feasibility invariant
//!
//! `Σ_i b_alloc,i + b_resv,l ≤ C_l` at all times (checked in debug builds
//! and by `check_invariants`). Operations that would violate it fail with
//! [`LedgerError`] instead of silently overcommitting.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{CellId, ConnId};

/// Who owns an advance-reservation claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResvClaim {
    /// Profile-predicted handoff of one specific connection.
    Conn(ConnId),
    /// An aggregate claim made on behalf of a neighbouring cell's
    /// reservation algorithm (meeting room / cafeteria / default).
    Cell(CellId),
    /// The dynamically adjustable pool `B_dyn` for unforeseen events
    /// (sudden movement of static portables), §4.3.
    DynPool,
    /// Capacity currently lost to wireless channel error — the paper's
    /// "time-varying effective capacity of the wireless link". Installed
    /// by the channel monitor; not consumable by handoffs.
    Channel,
    /// Capacity made unavailable by an injected link failure. Installed
    /// by the resource manager's fault path (sized to the full link
    /// speed; `set_claim` caps it to whatever headroom exists) so a dead
    /// link admits nothing new; not consumable by handoffs and preserved
    /// across claim refreshes until the link is restored.
    Outage,
}

/// One connection's slice of the link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alloc {
    /// Guaranteed floor `b_min` (kbps).
    pub b_min: f64,
    /// Current allocation (kbps), `≥ b_min`.
    pub b_alloc: f64,
    /// Reserved buffer space (kilobits).
    pub buffer: f64,
}

/// Ledger operation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// The operation would overcommit the link (`Σ b_alloc + b_resv > C`).
    Overcommitted,
    /// The connection is not allocated on this link.
    UnknownConn,
    /// The connection is already allocated on this link.
    DuplicateConn,
    /// An allocation below the connection's floor was requested.
    BelowFloor,
    /// Buffer pool exhausted.
    BufferExhausted,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Overcommitted => write!(f, "link would be overcommitted"),
            LedgerError::UnknownConn => write!(f, "connection not allocated on link"),
            LedgerError::DuplicateConn => write!(f, "connection already allocated on link"),
            LedgerError::BelowFloor => write!(f, "allocation below b_min"),
            LedgerError::BufferExhausted => write!(f, "buffer pool exhausted"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Reservation and allocation state of one link.
#[derive(Clone, Debug)]
pub struct LinkState {
    capacity: f64,
    buffer_capacity: f64,
    allocs: BTreeMap<ConnId, Alloc>,
    advance: BTreeMap<ResvClaim, f64>,
    sum_b_min: f64,
    sum_b_alloc: f64,
    sum_resv: f64,
    sum_buffer: f64,
}

// Snapshot support. Manual impls because `buffer_capacity` defaults to
// `f64::INFINITY` ("effectively unlimited pool"), and the vendored JSON
// writer lowers non-finite floats to `null` — which a derived `f64`
// deserializer would reject. The unlimited pool is therefore encoded
// explicitly as `null` and restored as `INFINITY`, keeping the
// serialize → deserialize → re-serialize cycle byte-identical.
impl Serialize for LinkState {
    fn to_value(&self) -> serde::Value {
        let buffer_capacity = if self.buffer_capacity.is_finite() {
            self.buffer_capacity.to_value()
        } else {
            serde::Value::Null
        };
        serde::Value::Object(vec![
            ("capacity".to_string(), self.capacity.to_value()),
            ("buffer_capacity".to_string(), buffer_capacity),
            ("allocs".to_string(), self.allocs.to_value()),
            ("advance".to_string(), self.advance.to_value()),
            ("sum_b_min".to_string(), self.sum_b_min.to_value()),
            ("sum_b_alloc".to_string(), self.sum_b_alloc.to_value()),
            ("sum_resv".to_string(), self.sum_resv.to_value()),
            ("sum_buffer".to_string(), self.sum_buffer.to_value()),
        ])
    }
}

impl Deserialize for LinkState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("LinkState: expected object"))?;
        let capacity: f64 = serde::from_field(obj, "capacity", "LinkState")?;
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(serde::Error::custom(
                "LinkState: capacity must be positive and finite",
            ));
        }
        let buffer_capacity = match obj.iter().find(|(k, _)| k == "buffer_capacity") {
            Some((_, serde::Value::Null)) => f64::INFINITY,
            Some((_, v)) => f64::from_value(v)?,
            None => return Err(serde::Error::missing_field("buffer_capacity", "LinkState")),
        };
        Ok(LinkState {
            capacity,
            buffer_capacity,
            allocs: serde::from_field(obj, "allocs", "LinkState")?,
            advance: serde::from_field(obj, "advance", "LinkState")?,
            sum_b_min: serde::from_field(obj, "sum_b_min", "LinkState")?,
            sum_b_alloc: serde::from_field(obj, "sum_b_alloc", "LinkState")?,
            sum_resv: serde::from_field(obj, "sum_resv", "LinkState")?,
            sum_buffer: serde::from_field(obj, "sum_buffer", "LinkState")?,
        })
    }
}

/// Numerical slack for float accounting; a millionth of a kbps.
const EPS: f64 = 1e-6;

impl LinkState {
    /// A fresh ledger for a link of the given capacity, with an
    /// effectively unlimited buffer pool.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        LinkState {
            capacity,
            buffer_capacity: f64::INFINITY,
            allocs: BTreeMap::new(),
            advance: BTreeMap::new(),
            sum_b_min: 0.0,
            sum_b_alloc: 0.0,
            sum_resv: 0.0,
            sum_buffer: 0.0,
        }
    }

    /// Bound the buffer pool (kilobits).
    pub fn with_buffer_capacity(mut self, b: f64) -> Self {
        self.buffer_capacity = b;
        self
    }

    /// Link speed `C_l`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Total advance-reserved bandwidth `b_resv,l`.
    pub fn b_resv(&self) -> f64 {
        self.sum_resv
    }

    /// Sum of allocation floors `Σ b_min,i`.
    pub fn sum_b_min(&self) -> f64 {
        self.sum_b_min
    }

    /// Sum of current allocations `Σ b_alloc,i`.
    pub fn sum_b_alloc(&self) -> f64 {
        self.sum_b_alloc
    }

    /// The paper's excess available bandwidth
    /// `b'_av,l = C_l − b_resv,l − Σ b_min,i`. May be negative after a
    /// capacity drop — §5.3's signal that re-negotiation is required.
    pub fn excess_available(&self) -> f64 {
        self.capacity - self.sum_resv - self.sum_b_min
    }

    /// Bandwidth not yet handed to anyone:
    /// `C_l − b_resv,l − Σ b_alloc,i`.
    pub fn unallocated(&self) -> f64 {
        self.capacity - self.sum_resv - self.sum_b_alloc
    }

    /// Number of ongoing connections `N_l`.
    pub fn conn_count(&self) -> usize {
        self.allocs.len()
    }

    /// Iterate over ongoing connections and their allocations.
    pub fn allocs(&self) -> impl Iterator<Item = (ConnId, &Alloc)> {
        self.allocs.iter().map(|(k, v)| (*k, v))
    }

    /// Allocation of one connection, if present.
    pub fn alloc(&self, conn: ConnId) -> Option<&Alloc> {
        self.allocs.get(&conn)
    }

    /// True if the connection is allocated here.
    pub fn has_conn(&self, conn: ConnId) -> bool {
        self.allocs.contains_key(&conn)
    }

    // ------------------------------------------------------------------
    // Admission / release
    // ------------------------------------------------------------------

    /// Can a new connection with floor `b_min` pass the Table 2 bandwidth
    /// test on this link? (`b_min ≤ C_l − b_resv,l − Σ b_min,i`.)
    pub fn admits(&self, b_min: f64) -> bool {
        b_min <= self.excess_available() + EPS
    }

    /// Like [`admits`](Self::admits), but allowing the connection to
    /// consume its own advance-reservation claim (the handoff case: "the
    /// connection handoff is able to use the advance reserved resources").
    pub fn admits_with_claim(&self, conn: ConnId, b_min: f64) -> bool {
        let own = self.claim(ResvClaim::Conn(conn));
        b_min <= self.excess_available() + own + EPS
    }

    /// Admit a connection at its floor. Fails if the bandwidth test fails
    /// or the connection is already present.
    pub fn admit(&mut self, conn: ConnId, b_min: f64, buffer: f64) -> Result<(), LedgerError> {
        self.admit_inner(conn, b_min, buffer, false)
    }

    /// Admit a handing-off connection, consuming (releasing) its own
    /// advance claim first.
    pub fn admit_handoff(
        &mut self,
        conn: ConnId,
        b_min: f64,
        buffer: f64,
    ) -> Result<(), LedgerError> {
        self.admit_inner(conn, b_min, buffer, true)
    }

    fn admit_inner(
        &mut self,
        conn: ConnId,
        b_min: f64,
        buffer: f64,
        consume_claim: bool,
    ) -> Result<(), LedgerError> {
        assert!(b_min >= 0.0 && buffer >= 0.0);
        if self.allocs.contains_key(&conn) {
            return Err(LedgerError::DuplicateConn);
        }
        let admissible = if consume_claim {
            self.admits_with_claim(conn, b_min)
        } else {
            self.admits(b_min)
        };
        if !admissible {
            return Err(LedgerError::Overcommitted);
        }
        if self.sum_buffer + buffer > self.buffer_capacity + EPS {
            return Err(LedgerError::BufferExhausted);
        }
        if consume_claim {
            self.release_claim(ResvClaim::Conn(conn));
        }
        self.allocs.insert(
            conn,
            Alloc {
                b_min,
                b_alloc: b_min,
                buffer,
            },
        );
        self.sum_b_min += b_min;
        self.sum_b_alloc += b_min;
        self.sum_buffer += buffer;
        // Resource conflict (§5.2 case b): the floor fits but connections
        // adapted above their floors are in the way. Squeeze their excess
        // proportionally — the maxmin adaptation round the caller runs next
        // will redistribute what remains fairly.
        self.squeeze_to_fit();
        self.debug_check();
        Ok(())
    }

    /// Reduce above-floor allocations proportionally until
    /// `Σ b_alloc ≤ C_l`. Admission tests guarantee floors alone fit, so
    /// this always succeeds.
    fn squeeze_to_fit(&mut self) {
        let overflow = self.sum_b_alloc - self.capacity;
        if overflow <= EPS {
            return;
        }
        let total_excess: f64 = self
            .allocs
            .values()
            .map(|a| a.b_alloc - a.b_min)
            .sum::<f64>();
        debug_assert!(
            total_excess + EPS >= overflow,
            "floors alone overflow the link"
        );
        if total_excess <= 0.0 {
            return;
        }
        let scale = ((total_excess - overflow) / total_excess).max(0.0);
        let mut new_sum = 0.0;
        for a in self.allocs.values_mut() {
            a.b_alloc = a.b_min + (a.b_alloc - a.b_min) * scale;
            new_sum += a.b_alloc;
        }
        self.sum_b_alloc = new_sum;
    }

    /// Release a connection entirely, returning its allocation.
    pub fn release(&mut self, conn: ConnId) -> Result<Alloc, LedgerError> {
        let alloc = self.allocs.remove(&conn).ok_or(LedgerError::UnknownConn)?;
        self.sum_b_min -= alloc.b_min;
        self.sum_b_alloc -= alloc.b_alloc;
        self.sum_buffer -= alloc.buffer;
        self.clamp_sums();
        self.debug_check();
        Ok(alloc)
    }

    /// Set a connection's current allocation (adaptation). Must be at
    /// least its floor and must keep the link feasible. Decreases are
    /// always allowed (they can only improve feasibility); increases must
    /// fit beside the advance reservations.
    pub fn set_alloc(&mut self, conn: ConnId, b_alloc: f64) -> Result<(), LedgerError> {
        let cur = self.allocs.get(&conn).ok_or(LedgerError::UnknownConn)?;
        if b_alloc + EPS < cur.b_min {
            return Err(LedgerError::BelowFloor);
        }
        let new_sum = self.sum_b_alloc - cur.b_alloc + b_alloc;
        let increasing = b_alloc > cur.b_alloc;
        if increasing && new_sum + self.sum_resv > self.capacity + EPS {
            return Err(LedgerError::Overcommitted);
        }
        let entry = self
            .allocs
            .get_mut(&conn)
            .expect("invariant: checked above");
        self.sum_b_alloc = new_sum;
        entry.b_alloc = b_alloc;
        self.debug_check();
        Ok(())
    }

    /// Set a connection's reserved buffer (buffer adaptation, §5.3).
    pub fn set_buffer(&mut self, conn: ConnId, buffer: f64) -> Result<(), LedgerError> {
        let cur = self.allocs.get(&conn).ok_or(LedgerError::UnknownConn)?;
        let new_sum = self.sum_buffer - cur.buffer + buffer;
        if new_sum > self.buffer_capacity + EPS {
            return Err(LedgerError::BufferExhausted);
        }
        let entry = self
            .allocs
            .get_mut(&conn)
            .expect("invariant: checked above");
        self.sum_buffer = new_sum;
        entry.buffer = buffer;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Advance reservations
    // ------------------------------------------------------------------

    /// Current size of one claim (0 if absent).
    pub fn claim(&self, key: ResvClaim) -> f64 {
        self.advance.get(&key).copied().unwrap_or(0.0)
    }

    /// Set a claim to an absolute amount, replacing any previous amount
    /// under the same key. The amount is granted even if it pushes the
    /// link into negative excess — the paper's algorithms deliberately
    /// over-reserve and then resolve conflicts by squeezing allocations —
    /// but never beyond what squeezing could recover: the grant is capped
    /// so that `Σ b_min + b_resv ≤ C_l`. Returns the granted amount.
    pub fn set_claim(&mut self, key: ResvClaim, amount: f64) -> f64 {
        assert!(amount >= 0.0);
        let old = self.claim(key);
        let headroom = (self.capacity - self.sum_b_min - (self.sum_resv - old)).max(0.0);
        let granted = amount.min(headroom);
        if granted <= EPS {
            self.advance.remove(&key);
            self.sum_resv -= old;
        } else {
            self.advance.insert(key, granted);
            self.sum_resv += granted - old;
        }
        self.clamp_sums();
        granted
    }

    /// Remove a claim entirely, returning the released amount.
    pub fn release_claim(&mut self, key: ResvClaim) -> f64 {
        match self.advance.remove(&key) {
            Some(v) => {
                self.sum_resv -= v;
                self.clamp_sums();
                v
            }
            None => 0.0,
        }
    }

    /// Iterate over advance claims.
    pub fn claims(&self) -> impl Iterator<Item = (ResvClaim, f64)> + '_ {
        self.advance.iter().map(|(k, v)| (*k, *v))
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Verify ledger internal consistency; used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let b_min: f64 = self.allocs.values().map(|a| a.b_min).sum();
        let b_alloc: f64 = self.allocs.values().map(|a| a.b_alloc).sum();
        let buffer: f64 = self.allocs.values().map(|a| a.buffer).sum();
        let resv: f64 = self.advance.values().sum();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs() + b.abs());
        if !close(b_min, self.sum_b_min) {
            return Err(format!("sum_b_min drift: {} vs {}", b_min, self.sum_b_min));
        }
        if !close(b_alloc, self.sum_b_alloc) {
            return Err(format!(
                "sum_b_alloc drift: {} vs {}",
                b_alloc, self.sum_b_alloc
            ));
        }
        if !close(buffer, self.sum_buffer) {
            return Err(format!(
                "sum_buffer drift: {} vs {}",
                buffer, self.sum_buffer
            ));
        }
        if !close(resv, self.sum_resv) {
            return Err(format!("sum_resv drift: {} vs {}", resv, self.sum_resv));
        }
        for (c, a) in &self.allocs {
            if a.b_alloc + EPS < a.b_min {
                return Err(format!("{c:?} allocated below floor"));
            }
        }
        let tol = 1e-6 * (1.0 + self.capacity);
        // Physical: actual transmissions never exceed the link speed.
        if b_alloc > self.capacity + tol {
            return Err(format!(
                "allocations {} exceed capacity {}",
                b_alloc, self.capacity
            ));
        }
        // Guarantee feasibility: every floor plus every advance claim can
        // be honoured simultaneously (claims are capped to ensure this).
        if b_min + resv > self.capacity + tol {
            return Err(format!(
                "floors {} + resv {} > capacity {}",
                b_min, resv, self.capacity
            ));
        }
        Ok(())
    }

    fn clamp_sums(&mut self) {
        // Guard against float drift pushing sums slightly negative.
        if self.sum_b_min < 0.0 && self.sum_b_min > -EPS {
            self.sum_b_min = 0.0;
        }
        if self.sum_b_alloc < 0.0 && self.sum_b_alloc > -EPS {
            self.sum_b_alloc = 0.0;
        }
        if self.sum_resv < 0.0 && self.sum_resv > -EPS {
            self.sum_resv = 0.0;
        }
        if self.sum_buffer < 0.0 && self.sum_buffer > -EPS {
            self.sum_buffer = 0.0;
        }
    }

    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            panic!("invariant: ledger invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(i: u32) -> ConnId {
        ConnId(i)
    }

    #[test]
    fn admit_and_release() {
        let mut l = LinkState::new(100.0);
        assert!(l.admits(60.0));
        l.admit(cid(1), 60.0, 5.0).unwrap();
        assert_eq!(l.sum_b_min(), 60.0);
        assert_eq!(l.excess_available(), 40.0);
        assert!(!l.admits(50.0));
        assert!(l.admits(40.0));
        assert_eq!(l.admit(cid(1), 10.0, 0.0), Err(LedgerError::DuplicateConn));
        assert_eq!(l.admit(cid(2), 50.0, 0.0), Err(LedgerError::Overcommitted));
        let a = l.release(cid(1)).unwrap();
        assert_eq!(a.b_min, 60.0);
        assert_eq!(l.excess_available(), 100.0);
        assert_eq!(l.release(cid(1)), Err(LedgerError::UnknownConn));
    }

    #[test]
    fn adaptation_between_floor_and_capacity() {
        let mut l = LinkState::new(100.0);
        l.admit(cid(1), 20.0, 0.0).unwrap();
        l.admit(cid(2), 20.0, 0.0).unwrap();
        l.set_alloc(cid(1), 60.0).unwrap();
        assert_eq!(l.sum_b_alloc(), 80.0);
        assert_eq!(l.unallocated(), 20.0);
        // excess_available ignores allocations above floors (it's the
        // pool being divided), so it stays at C − Σ b_min.
        assert_eq!(l.excess_available(), 60.0);
        assert_eq!(l.set_alloc(cid(2), 50.0), Err(LedgerError::Overcommitted));
        assert_eq!(l.set_alloc(cid(1), 10.0), Err(LedgerError::BelowFloor));
        assert_eq!(l.set_alloc(cid(9), 10.0), Err(LedgerError::UnknownConn));
        l.set_alloc(cid(1), 20.0).unwrap();
        l.set_alloc(cid(2), 80.0).unwrap();
        assert_eq!(l.unallocated(), 0.0);
    }

    #[test]
    fn advance_claims_reduce_admissibility() {
        let mut l = LinkState::new(100.0);
        let granted = l.set_claim(ResvClaim::DynPool, 10.0);
        assert_eq!(granted, 10.0);
        l.set_claim(ResvClaim::Conn(cid(7)), 30.0);
        assert_eq!(l.b_resv(), 40.0);
        assert!(!l.admits(70.0));
        assert!(l.admits(60.0));
        // The predicted connection itself may consume its claim.
        assert!(l.admits_with_claim(cid(7), 90.0));
        l.admit_handoff(cid(7), 90.0, 0.0).unwrap();
        assert_eq!(l.claim(ResvClaim::Conn(cid(7))), 0.0);
        assert_eq!(l.b_resv(), 10.0);
        assert_eq!(l.sum_b_min(), 90.0);
    }

    #[test]
    fn handoff_uses_only_its_own_claim() {
        let mut l = LinkState::new(100.0);
        l.set_claim(ResvClaim::Conn(cid(1)), 50.0);
        // A different connection cannot use conn 1's claim.
        assert!(!l.admits_with_claim(cid(2), 60.0));
        assert_eq!(
            l.admit_handoff(cid(2), 60.0, 0.0),
            Err(LedgerError::Overcommitted)
        );
        assert!(l.admits_with_claim(cid(2), 50.0));
    }

    #[test]
    fn claim_replacement_and_release() {
        let mut l = LinkState::new(100.0);
        l.set_claim(ResvClaim::Cell(CellId(3)), 30.0);
        l.set_claim(ResvClaim::Cell(CellId(3)), 10.0);
        assert_eq!(l.b_resv(), 10.0);
        assert_eq!(l.claim(ResvClaim::Cell(CellId(3))), 10.0);
        assert_eq!(l.release_claim(ResvClaim::Cell(CellId(3))), 10.0);
        assert_eq!(l.release_claim(ResvClaim::Cell(CellId(3))), 0.0);
        assert_eq!(l.b_resv(), 0.0);
        // Setting a claim to zero removes it.
        l.set_claim(ResvClaim::DynPool, 5.0);
        l.set_claim(ResvClaim::DynPool, 0.0);
        assert_eq!(l.claims().count(), 0);
    }

    #[test]
    fn claims_capped_at_squeezable_headroom() {
        let mut l = LinkState::new(100.0);
        l.admit(cid(1), 40.0, 0.0).unwrap();
        l.set_alloc(cid(1), 90.0).unwrap();
        // Headroom above floors is 60 even though only 10 is unallocated:
        // conflict resolution can squeeze conn 1 back to its floor.
        let granted = l.set_claim(ResvClaim::Cell(CellId(0)), 80.0);
        assert_eq!(granted, 60.0);
        assert!(l.check_invariants().is_ok());
        // While the claim transiently overlaps conn 1's excess allocation,
        // a further allocation increase is refused...
        assert_eq!(l.set_alloc(cid(1), 95.0), Err(LedgerError::Overcommitted));
        // ...but squeezing back toward the floor always succeeds.
        l.set_alloc(cid(1), 40.0).unwrap();
        assert!(l.check_invariants().is_ok());
    }

    #[test]
    fn buffer_pool_enforced() {
        let mut l = LinkState::new(100.0).with_buffer_capacity(10.0);
        l.admit(cid(1), 10.0, 8.0).unwrap();
        assert_eq!(
            l.admit(cid(2), 10.0, 5.0),
            Err(LedgerError::BufferExhausted)
        );
        l.admit(cid(2), 10.0, 2.0).unwrap();
        assert_eq!(l.set_buffer(cid(2), 3.0), Err(LedgerError::BufferExhausted));
        l.set_buffer(cid(1), 1.0).unwrap();
        l.set_buffer(cid(2), 3.0).unwrap();
    }

    #[test]
    fn negative_excess_signals_renegotiation() {
        let mut l = LinkState::new(100.0);
        l.admit(cid(1), 80.0, 0.0).unwrap();
        // A capacity drop is modelled by a claim the channel monitor puts
        // on the link (see arm-qos::adaptation); excess goes negative.
        l.set_claim(ResvClaim::DynPool, 20.0);
        assert!(l.excess_available() <= 0.0);
    }
}
