//! Traffic envelopes and QoS-bound requests.
//!
//! §5.1: to request a new connection the application specifies lower and
//! upper bandwidth bounds `[b_min, b_max]`, an end-to-end delay bound `d`,
//! an end-to-end delay-jitter bound `σ̄`, and a maximum packet loss
//! probability `p_e`. Traffic is described by a `(σ, ρ)` token-bucket
//! envelope with maximum packet size `L_max` (Table 2's notation).
//!
//! Units throughout the workspace: bandwidth in **kilobits per second**,
//! buffer/burst sizes in **kilobits**, delays in **seconds**, probabilities
//! dimensionless. (Abstract experiments like Figure 6 use "bandwidth
//! units"; nothing in the formulas depends on the unit choice, only on
//! consistency.)

use serde::{Deserialize, Serialize};

/// Token-bucket traffic envelope `(σ, ρ)` with maximum packet size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Burst size σ (kilobits).
    pub sigma: f64,
    /// Sustained rate ρ (kbps). In the paper's admission test the reserved
    /// rate is at least `b_min ≥ ρ`; we keep ρ explicit for generality.
    pub rho: f64,
    /// Maximum packet size `L_max` (kilobits).
    pub l_max: f64,
}

impl TrafficSpec {
    /// A spec with the given burst and rate, using a 1 kbit (125-byte)
    /// maximum packet — a typical small wireless MTU of the era.
    pub fn new(sigma: f64, rho: f64) -> Self {
        TrafficSpec {
            sigma,
            rho,
            l_max: 1.0,
        }
    }

    /// Override the maximum packet size.
    pub fn with_l_max(mut self, l_max: f64) -> Self {
        self.l_max = l_max;
        self
    }

    /// Sanity: all fields nonnegative, packet fits in the burst.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !(self.sigma >= 0.0 && self.rho >= 0.0 && self.l_max > 0.0) {
            return Err(SpecError::NonPositive);
        }
        Ok(())
    }
}

/// QoS bounds requested at connection setup (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QosRequest {
    /// Minimum acceptable bandwidth `b_min` (kbps). The network guarantees
    /// this level for the lifetime of the connection (including across
    /// handoffs, via advance reservation).
    pub b_min: f64,
    /// Maximum useful bandwidth `b_max` (kbps). The network never allocates
    /// beyond this; excess capacity between `b_min` and `b_max` is
    /// distributed maxmin-fairly.
    pub b_max: f64,
    /// End-to-end delay bound `d` (seconds).
    pub delay_bound: f64,
    /// End-to-end delay-jitter bound `σ̄` (seconds).
    pub jitter_bound: f64,
    /// Maximum end-to-end packet loss probability `p_e`.
    pub loss_bound: f64,
    /// Traffic envelope.
    pub traffic: TrafficSpec,
}

/// Why a spec failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A field that must be positive (or nonnegative) is not.
    NonPositive,
    /// `b_min > b_max`.
    InvertedBounds,
    /// Loss probability outside `[0, 1]`.
    LossOutOfRange,
    /// A field is NaN or infinite.
    NotFinite,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NonPositive => write!(f, "spec field must be positive"),
            SpecError::InvertedBounds => write!(f, "b_min exceeds b_max"),
            SpecError::LossOutOfRange => write!(f, "loss bound outside [0, 1]"),
            SpecError::NotFinite => write!(f, "spec field is NaN or infinite"),
        }
    }
}

impl std::error::Error for SpecError {}

impl QosRequest {
    /// A request with bandwidth bounds and generous secondary bounds —
    /// the common case in the paper's experiments, which exercise the
    /// bandwidth dimension.
    pub fn bandwidth(b_min: f64, b_max: f64) -> Self {
        QosRequest {
            b_min,
            b_max,
            delay_bound: 10.0,
            jitter_bound: 10.0,
            loss_bound: 1.0,
            traffic: TrafficSpec::new(b_min * 0.1, b_min),
        }
    }

    /// A fixed-rate request (`b_min == b_max`), e.g. the 16 kbps / 64 kbps
    /// audio connections of §7.1.
    pub fn fixed(rate: f64) -> Self {
        Self::bandwidth(rate, rate)
    }

    /// Override the delay bound.
    pub fn with_delay(mut self, d: f64) -> Self {
        self.delay_bound = d;
        self
    }

    /// Override the jitter bound.
    pub fn with_jitter(mut self, j: f64) -> Self {
        self.jitter_bound = j;
        self
    }

    /// Override the loss bound.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_bound = p;
        self
    }

    /// Override the traffic envelope.
    pub fn with_traffic(mut self, t: TrafficSpec) -> Self {
        self.traffic = t;
        self
    }

    /// The adaptable bandwidth range `b_max - b_min` (the paper's "demand"
    /// beyond the guaranteed minimum).
    pub fn adaptable_range(&self) -> f64 {
        self.b_max - self.b_min
    }

    /// Validate all bounds.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.traffic.validate()?;
        // Every comparison below is written so NaN falls into an error
        // branch — except `b_min > b_max`, which is *false* for a NaN
        // `b_max` and would let one through to crash the allocator's
        // `clamp(b_min, b_max)` later. Check finiteness explicitly.
        if !(self.b_max.is_finite() && self.b_min.is_finite()) {
            return Err(SpecError::NotFinite);
        }
        if !(self.b_min > 0.0 && self.delay_bound > 0.0 && self.jitter_bound >= 0.0) {
            return Err(SpecError::NonPositive);
        }
        if self.b_min > self.b_max {
            return Err(SpecError::InvertedBounds);
        }
        if !(0.0..=1.0).contains(&self.loss_bound) {
            return Err(SpecError::LossOutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_validation() {
        let q = QosRequest::bandwidth(16.0, 64.0)
            .with_delay(0.1)
            .with_jitter(0.02)
            .with_loss(0.01)
            .with_traffic(TrafficSpec::new(4.0, 16.0).with_l_max(0.5));
        assert!(q.validate().is_ok());
        assert_eq!(q.adaptable_range(), 48.0);
        assert_eq!(q.traffic.l_max, 0.5);
    }

    #[test]
    fn fixed_rate_has_no_adaptable_range() {
        let q = QosRequest::fixed(16.0);
        assert_eq!(q.b_min, 16.0);
        assert_eq!(q.b_max, 16.0);
        assert_eq!(q.adaptable_range(), 0.0);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn invalid_specs_rejected() {
        assert_eq!(
            QosRequest::bandwidth(64.0, 16.0).validate(),
            Err(SpecError::InvertedBounds)
        );
        assert_eq!(
            QosRequest::bandwidth(0.0, 16.0).validate(),
            Err(SpecError::NonPositive)
        );
        assert_eq!(
            QosRequest::bandwidth(16.0, 64.0).with_loss(1.5).validate(),
            Err(SpecError::LossOutOfRange)
        );
        assert_eq!(
            QosRequest::bandwidth(16.0, 64.0)
                .with_traffic(TrafficSpec {
                    sigma: -1.0,
                    rho: 1.0,
                    l_max: 1.0
                })
                .validate(),
            Err(SpecError::NonPositive)
        );
    }

    #[test]
    fn non_finite_bounds_rejected() {
        // Regression: `b_min > b_max` is false when b_max is NaN, so a
        // NaN upper bound used to validate cleanly and only blow up in
        // the rate allocator's `clamp` much later.
        assert_eq!(
            QosRequest::bandwidth(16.0, f64::NAN).validate(),
            Err(SpecError::NotFinite)
        );
        assert_eq!(
            QosRequest::bandwidth(16.0, f64::INFINITY).validate(),
            Err(SpecError::NotFinite)
        );
        // (With a valid traffic envelope, so the bounds check is what
        // fires rather than the NaN-poisoned builder-derived envelope.)
        assert_eq!(
            QosRequest::bandwidth(f64::NAN, 16.0)
                .with_traffic(TrafficSpec::new(1.0, 1.0))
                .validate(),
            Err(SpecError::NotFinite)
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(SpecError::InvertedBounds.to_string(), "b_min exceeds b_max");
        assert_eq!(
            SpecError::NotFinite.to_string(),
            "spec field is NaN or infinite"
        );
    }
}
