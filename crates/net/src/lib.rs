// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-net — the network substrate
//!
//! The paper's system model (§3.1): a cellular architecture with a wired
//! backbone and a wireless cellular component. Base stations hang off
//! backbone switches and serve *cells*; neighbouring cells overlap so a
//! portable can hand off between them. All wireless traffic is uplink or
//! downlink between a portable and its base station.
//!
//! This crate supplies the data plane the algorithm crates operate on:
//!
//! * [`ids`] — strongly typed identifiers (`NodeId`, `LinkId`, `CellId`,
//!   `ConnId`, `PortableId`, `ZoneId`),
//! * [`flowspec`] — `(σ, ρ)` traffic envelopes and QoS-bound requests
//!   (`[b_min, b_max]`, delay, jitter, loss — §5.1),
//! * [`topology`] — the node/link graph and its builders,
//! * [`routing`] — Dijkstra paths over the backbone and multicast fan-out
//!   to neighbour cells (§4's multicast pre-setup),
//! * [`link`] — per-link reservation ledgers: capacity `C_l`, the advance
//!   reservation pool `b_resv,l`, per-connection allocations, and the
//!   excess-bandwidth accounting (`b'_av,l`) that drives the maxmin
//!   machinery of §5.2,
//! * [`connection`] — connection lifecycle records,
//! * [`message`] — ADVERTISE / UPDATE control packets (§5.3.1).
//!
//! Everything is a plain, deterministic data structure — the event loop
//! lives in `arm-sim`, and algorithms live in `arm-qos` and friends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection;
pub mod flowspec;
pub mod ids;
pub mod link;
pub mod message;
pub mod network;
pub mod routing;
pub mod topology;

pub use connection::{Connection, ConnectionState};
pub use flowspec::{QosRequest, TrafficSpec};
pub use ids::{CellId, ConnId, LinkId, NodeId, PortableId, ZoneId};
pub use link::LinkState;
pub use network::Network;
pub use routing::Route;
pub use topology::{LinkSpec, NodeKind, Topology};
