//! Crash-recovery drills: kill → restore → replay must be
//! **byte-identical** to never crashing, with and without active fault
//! schedules, including a kill point inside a link outage.

use arm_core::scenario::{EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::Strategy;
use arm_server::drill::{events_from_scenario, run_with_kill_restore};
use arm_server::{ServerConfig, ServerEvent};
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng};

fn walk_cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        scenario: Scenario {
            name: "server-drill".into(),
            environment: EnvSpec::Figure4,
            mobility: MobilitySpec::RandomWalk {
                population: 10,
                mean_dwell_secs: 90,
                span_mins: 15,
            },
            workload: WorkloadSpec::Paper71,
            strategy: Strategy::Paper,
            cell_throughput_kbps: 800.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed,
        },
        slot: SimDuration::from_mins(1),
        checkpoint_every: 64,
        backlog_capacity: 64,
    }
}

fn faults_for(cfg: &ServerConfig, seed: u64) -> FaultSchedule {
    let params = FaultScheduleParams {
        span: SimDuration::from_mins(15),
        links: 20,
        zones: 1,
        portables: 10,
        ..FaultScheduleParams::default()
    };
    let _ = cfg;
    FaultSchedule::generate(&params, &SimRng::new(seed))
}

#[test]
fn kill_restore_replay_is_bit_identical_without_faults() {
    let cfg = walk_cfg(11);
    let events =
        events_from_scenario(&cfg.scenario, &FaultSchedule::empty()).expect("valid scenario");
    assert!(events.len() > 20, "stream too short to drill");
    for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
        let out = run_with_kill_restore(&cfg, &events, cut).expect("drill runs");
        assert_eq!(
            out.uninterrupted, out.recovered,
            "kill at {cut}/{} diverged",
            out.total_events
        );
    }
}

#[test]
fn kill_restore_replay_is_bit_identical_under_active_faults() {
    let cfg = walk_cfg(13);
    let faults = faults_for(&cfg, 99);
    assert!(!faults.is_empty(), "schedule must actually inject faults");
    let events = events_from_scenario(&cfg.scenario, &faults).expect("valid scenario");
    for cut in [events.len() / 4, events.len() / 2, 3 * events.len() / 4] {
        let out = run_with_kill_restore(&cfg, &events, cut).expect("drill runs");
        assert_eq!(
            out.uninterrupted, out.recovered,
            "faulted kill at {cut}/{} diverged",
            out.total_events
        );
    }
}

#[test]
fn kill_inside_a_link_outage_restores_the_outage_seal() {
    let cfg = walk_cfg(17);
    let faults = faults_for(&cfg, 101);
    let events = events_from_scenario(&cfg.scenario, &faults).expect("valid scenario");
    // Kill immediately after the first LinkDown lands, i.e. while the
    // outage seal is active — the snapshot must carry the sealed claim
    // and the replayed LinkUp must release it identically.
    let down_at = events
        .iter()
        .position(|e| matches!(e, ServerEvent::LinkDown { .. }))
        .expect("schedule injects a link outage");
    let out = run_with_kill_restore(&cfg, &events, down_at + 1).expect("drill runs");
    assert_eq!(
        out.uninterrupted, out.recovered,
        "kill inside an outage diverged"
    );
    assert!(
        out.snapshot_json.contains("Outage"),
        "snapshot taken mid-outage must carry the Outage seal"
    );
}
