//! Ingestion hardening: a hostile input stream is counted, surfaced,
//! and skipped — it never aborts the server and never corrupts state.

use arm_core::scenario::{EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::Strategy;
use arm_obs::{Obs, ObsEvent};
use arm_server::{IngestError, LineOutcome, Server, ServerConfig, ServerEvent};
use arm_sim::{SimDuration, SimTime};

fn cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        scenario: Scenario {
            name: "server-ingest".into(),
            environment: EnvSpec::Figure4,
            mobility: MobilitySpec::RandomWalk {
                population: 4,
                mean_dwell_secs: 90,
                span_mins: 5,
            },
            workload: WorkloadSpec::None,
            strategy: Strategy::Paper,
            cell_throughput_kbps: 800.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed,
        },
        slot: SimDuration::from_mins(1),
        checkpoint_every: 0,
        backlog_capacity: 16,
    }
}

fn line(ev: &ServerEvent) -> String {
    ev.to_jsonl().expect("serializable")
}

#[test]
fn hostile_corpus_never_aborts_the_stream() {
    let mut server = Server::new(cfg(3), Obs::recording(4096)).expect("valid scenario");

    // A healthy prelude: one portable appears and asks for bandwidth.
    let good = [
        line(&ServerEvent::Appear {
            t: SimTime::from_secs(10),
            portable: arm_net::ids::PortableId(0),
            cell: arm_net::ids::CellId(0),
        }),
        line(&ServerEvent::Request {
            t: SimTime::from_secs(11),
            portable: arm_net::ids::PortableId(0),
            b_min_kbps: 16.0,
            b_max_kbps: 64.0,
        }),
    ];
    for l in &good {
        assert_eq!(server.ingest_line(l), LineOutcome::Accepted, "{l}");
    }

    // The corpus: every class of bad line, with the reason slug each
    // must surface under.
    let corpus: Vec<(String, &str)> = vec![
        ("{".into(), "malformed"),
        ("not json at all".into(), "malformed"),
        (r#"{"Teleport":{"t":0,"portable":0}}"#.into(), "malformed"),
        // JSON null where a rate belongs fails f64 decoding.
        (
            r#"{"Request":{"t":12000000,"portable":0,"b_min_kbps":null,"b_max_kbps":64.0}}"#.into(),
            "malformed",
        ),
        // Negative and zero rates decode fine but are semantically bad.
        (
            r#"{"Request":{"t":12000000,"portable":1,"b_min_kbps":-16.0,"b_max_kbps":64.0}}"#
                .into(),
            "unknown-entity", // portable 1 never appeared — checked first
        ),
        (
            line(&ServerEvent::Request {
                t: SimTime::from_secs(12),
                portable: arm_net::ids::PortableId(0),
                b_min_kbps: -16.0,
                b_max_kbps: 64.0,
            }),
            "negative-rate",
        ),
        (
            line(&ServerEvent::Request {
                t: SimTime::from_secs(12),
                portable: arm_net::ids::PortableId(0),
                b_min_kbps: 64.0,
                b_max_kbps: 16.0,
            }),
            "invalid-parameter", // inverted bounds
        ),
        // Time running backwards.
        (
            line(&ServerEvent::Move {
                t: SimTime::from_secs(1),
                portable: arm_net::ids::PortableId(0),
                to: arm_net::ids::CellId(1),
            }),
            "out-of-order",
        ),
        // References past the edge of the world.
        (
            line(&ServerEvent::LinkDown {
                t: SimTime::from_secs(13),
                link: arm_net::ids::LinkId(9999),
            }),
            "unknown-entity",
        ),
        (
            line(&ServerEvent::ProfileServerDown {
                t: SimTime::from_secs(13),
                zone: arm_net::ids::ZoneId(77),
            }),
            "unknown-entity",
        ),
        (
            line(&ServerEvent::Appear {
                t: SimTime::from_secs(13),
                portable: arm_net::ids::PortableId(5),
                cell: arm_net::ids::CellId(200),
            }),
            "unknown-entity",
        ),
        (
            line(&ServerEvent::Move {
                t: SimTime::from_secs(13),
                portable: arm_net::ids::PortableId(42),
                to: arm_net::ids::CellId(0),
            }),
            "unknown-entity",
        ),
        // A second Appear for a present portable.
        (
            line(&ServerEvent::Appear {
                t: SimTime::from_secs(13),
                portable: arm_net::ids::PortableId(0),
                cell: arm_net::ids::CellId(0),
            }),
            "invalid-parameter",
        ),
        // Channel fraction outside (0, 1].
        (
            line(&ServerEvent::ChannelChange {
                t: SimTime::from_secs(13),
                cell: arm_net::ids::CellId(0),
                fraction: 1.5,
            }),
            "invalid-parameter",
        ),
    ];

    let before = server.accepted();
    for (l, want_reason) in &corpus {
        match server.ingest_line(l) {
            LineOutcome::Rejected(e) => {
                assert_eq!(&e.reason(), want_reason, "line {l} -> {e}");
            }
            LineOutcome::Accepted => panic!("corpus line accepted: {l}"),
        }
    }
    assert_eq!(
        server.accepted(),
        before,
        "rejections must not change state"
    );
    assert_eq!(server.rejected(), corpus.len() as u64);

    // The stream continues: a good event still lands.
    let tail = line(&ServerEvent::Move {
        t: SimTime::from_secs(20),
        portable: arm_net::ids::PortableId(0),
        to: arm_net::ids::CellId(1),
    });
    assert_eq!(server.ingest_line(&tail), LineOutcome::Accepted);
    assert_eq!(server.accepted(), before + 1);

    // Every rejection surfaced on the observability stream, with its
    // slug.
    let obs = server.mgr.take_obs();
    let rejections: Vec<ObsEvent> = obs
        .snapshot_events()
        .into_iter()
        .filter(|e| matches!(e, ObsEvent::IngestRejected { .. }))
        .collect();
    assert_eq!(rejections.len(), corpus.len());
    for ((_, want_reason), got) in corpus.iter().zip(&rejections) {
        match got {
            ObsEvent::IngestRejected { reason, detail, .. } => {
                assert_eq!(reason, want_reason);
                assert!(!detail.is_empty());
            }
            other => panic!("want IngestRejected, got {other:?}"),
        }
    }
    let counted = obs
        .event_counts()
        .into_iter()
        .find(|c| c.kind == "IngestRejected")
        .expect("IngestRejected counted");
    assert_eq!(counted.count, corpus.len() as u64);
}

#[test]
fn non_finite_rates_are_typed_rejections() {
    // JSON cannot carry NaN, but the programmatic path must still
    // reject it (a buggy upstream could construct events directly).
    let mut server = Server::new(cfg(4), Obs::off()).expect("valid scenario");
    server
        .apply_event(&ServerEvent::Appear {
            t: SimTime::from_secs(1),
            portable: arm_net::ids::PortableId(0),
            cell: arm_net::ids::CellId(0),
        })
        .expect("valid event");
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = server
            .apply_event(&ServerEvent::Request {
                t: SimTime::from_secs(2),
                portable: arm_net::ids::PortableId(0),
                b_min_kbps: bad,
                b_max_kbps: 64.0,
            })
            .expect_err("NaN/Inf must be rejected");
        assert!(matches!(err, IngestError::NonFinite { .. }), "{bad}: {err}");
        let err = server
            .apply_event(&ServerEvent::ChannelChange {
                t: SimTime::from_secs(2),
                cell: arm_net::ids::CellId(0),
                fraction: bad,
            })
            .expect_err("NaN/Inf fraction must be rejected");
        assert!(matches!(err, IngestError::NonFinite { .. }), "{bad}: {err}");
    }
    assert_eq!(server.rejected(), 6);
}

#[test]
fn degraded_mode_sheds_to_the_guaranteed_floor() {
    let mut server = Server::new(cfg(5), Obs::off()).expect("valid scenario");
    let p = arm_net::ids::PortableId(0);
    server
        .apply_event(&ServerEvent::Appear {
            t: SimTime::from_secs(1),
            portable: p,
            cell: arm_net::ids::CellId(0),
        })
        .expect("valid event");
    assert!(!server.degraded());

    // Queue pressure on: the next admission is squeezed to b_min.
    server
        .apply_event(&ServerEvent::QueuePressure {
            t: SimTime::from_secs(2),
            on: true,
        })
        .expect("valid event");
    assert!(server.degraded());
    server
        .apply_event(&ServerEvent::Request {
            t: SimTime::from_secs(3),
            portable: p,
            b_min_kbps: 16.0,
            b_max_kbps: 64.0,
        })
        .expect("valid event");
    assert_eq!(server.shed(), 1, "adaptive request squeezed");
    let id = *server.open_connections().get(&p).expect("admitted");
    let conn = server.mgr.net.get(id).expect("installed");
    assert_eq!(conn.qos.b_max, conn.qos.b_min, "admitted at the floor");

    // Pressure off: back to full-quality admissions.
    server
        .apply_event(&ServerEvent::QueuePressure {
            t: SimTime::from_secs(4),
            on: false,
        })
        .expect("valid event");
    assert!(!server.degraded());

    // Profile-server outage also degrades.
    server
        .apply_event(&ServerEvent::ProfileServerDown {
            t: SimTime::from_secs(5),
            zone: arm_net::ids::ZoneId(0),
        })
        .expect("valid event");
    assert!(server.degraded(), "profile outage degrades the server");
    server
        .apply_event(&ServerEvent::ProfileServerUp {
            t: SimTime::from_secs(6),
            zone: arm_net::ids::ZoneId(0),
        })
        .expect("valid event");
    assert!(!server.degraded());
}
