//! Snapshot round-trip properties: any mid-run server state must
//! serialize → deserialize → re-serialize byte-identically, and schema
//! skew must surface as a typed error, never a panic or a misparse.

use arm_core::scenario::{EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::{SnapshotError, Strategy};
use arm_obs::Obs;
use arm_server::drill::events_from_scenario;
use arm_server::{Server, ServerConfig, ServerSnapshot};
use arm_sim::{FaultSchedule, SimDuration};
use proptest::prelude::*;

/// A small random-walk configuration: fast to run, still exercising
/// handoffs, admissions, terminations, and slot ticks.
fn walk_cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        scenario: Scenario {
            name: "server-walk".into(),
            environment: EnvSpec::Figure4,
            mobility: MobilitySpec::RandomWalk {
                population: 8,
                mean_dwell_secs: 90,
                span_mins: 12,
            },
            workload: WorkloadSpec::Paper71,
            strategy: Strategy::Paper,
            cell_throughput_kbps: 800.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed,
        },
        slot: SimDuration::from_mins(1),
        checkpoint_every: 64,
        backlog_capacity: 64,
    }
}

/// Run a server through the first `prefix` events of its scenario
/// stream.
fn server_at(cfg: &ServerConfig, prefix: usize) -> Server {
    let events =
        events_from_scenario(&cfg.scenario, &FaultSchedule::empty()).expect("valid scenario");
    let mut server = Server::new(cfg.clone(), Obs::off()).expect("valid scenario");
    let prefix = prefix.min(events.len());
    for ev in &events[..prefix] {
        server.apply_event(ev).expect("generated events are valid");
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary mid-run states round-trip byte-identically, for both
    /// the server snapshot and the embedded manager snapshot.
    #[test]
    fn snapshot_round_trip_is_byte_identical(seed in 0u64..1000, cut in 0usize..400) {
        let cfg = walk_cfg(seed);
        let server = server_at(&cfg, cut);

        // `to_json` internally validates serialize → parse →
        // re-serialize equality; do the external loop again to pin the
        // public API.
        let json = server.snapshot().to_json().expect("snapshot serializes");
        let back = ServerSnapshot::from_json(&json).expect("snapshot parses");
        let again = back.to_json().expect("restored snapshot serializes");
        prop_assert_eq!(&json, &again, "server snapshot round trip drifted");

        let mjson = server.mgr.snapshot().to_json().expect("manager snapshot serializes");
        let mback = arm_core::ManagerSnapshot::from_json(&mjson).expect("manager snapshot parses");
        prop_assert_eq!(
            &mjson,
            &serde_json::to_string(&mback).expect("re-serializes"),
            "manager snapshot round trip drifted"
        );
    }

    /// A restored server is behaviourally identical, not just
    /// byte-identical: its next snapshot matches too.
    #[test]
    fn restore_preserves_state_exactly(seed in 0u64..1000, cut in 0usize..300) {
        let cfg = walk_cfg(seed);
        let server = server_at(&cfg, cut);
        let json = server.snapshot().to_json().expect("snapshot serializes");
        let restored = Server::restore(
            ServerSnapshot::from_json(&json).expect("parses"),
            Obs::off(),
        )
        .expect("restores");
        let json2 = restored.snapshot().to_json().expect("snapshot serializes");
        prop_assert_eq!(json, json2, "restore changed state");
    }
}

#[test]
fn mismatched_server_schema_is_a_typed_error() {
    let server = server_at(&walk_cfg(7), 40);
    let json = server.snapshot().to_json().expect("snapshot serializes");
    assert!(
        json.starts_with("{\"schema\":1,"),
        "layout drifted: {json:.60}"
    );
    let skewed = json.replacen("{\"schema\":1,", "{\"schema\":999,", 1);
    match ServerSnapshot::from_json(&skewed) {
        Err(SnapshotError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, 999);
            assert_eq!(expected, arm_server::SERVER_SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("want SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn mismatched_manager_schema_is_a_typed_error() {
    let server = server_at(&walk_cfg(7), 40);
    let json = server
        .mgr
        .snapshot()
        .to_json()
        .expect("snapshot serializes");
    assert!(
        json.starts_with("{\"schema\":1,"),
        "layout drifted: {json:.60}"
    );
    let skewed = json.replacen("{\"schema\":1,", "{\"schema\":42,", 1);
    match arm_core::ManagerSnapshot::from_json(&skewed) {
        Err(SnapshotError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, 42);
            assert_eq!(expected, arm_core::SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("want SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn garbage_snapshots_are_typed_parse_errors() {
    for garbage in ["", "{", "[1,2,3]", "{\"no_schema\":true}"] {
        match ServerSnapshot::from_json(garbage) {
            Err(SnapshotError::Parse(_)) => {}
            other => panic!("{garbage:?}: want Parse error, got {other:?}"),
        }
    }
}
