//! Crash-recovery drills: prove restore + replay ≡ never crashed.
//!
//! A drill runs the same event sequence twice:
//!
//! * **Run A** — one server, uninterrupted, start to finish;
//! * **Run B** — a server killed after `kill_after` events (dropped on
//!   the floor, simulating a crash), a *new* server restored from the
//!   victim's serialized snapshot, and the remaining events replayed
//!   into it.
//!
//! Both runs then emit their [`RunReport`] JSON, and the drill demands
//! **byte equality** — not "close", not "same metrics to 6 digits":
//! identical bytes, including with an active fault schedule in the
//! event stream and a kill point inside a link outage. That is the
//! strongest checkable statement of the snapshot's completeness; any
//! forgotten field (an RNG, a dirty set, a counter) shows up as a byte
//! diff. `tests/drill.rs` runs it in the suite, `expt_soak` in CI.

use arm_core::scenario::Scenario;
use arm_core::{ControlError, SnapshotError};
use arm_net::ids::{LinkId, PortableId, ZoneId};
use arm_obs::Obs;
use arm_sim::{FaultEvent, FaultKind, FaultSchedule, SimTime};
use std::collections::{BTreeMap, BTreeSet};

use crate::event::ServerEvent;
use crate::ingest::IngestError;
use crate::server::{Server, ServerConfig, ServerSnapshot};

/// Why a drill could not run. (Byte *mismatches* are asserted by the
/// callers, not reported here — a mismatch is a bug, not an input
/// problem.)
#[derive(Debug)]
pub enum DrillError {
    /// The scenario itself is invalid.
    Control(ControlError),
    /// A snapshot failed to serialize, parse, or validate.
    Snapshot(SnapshotError),
    /// A drill event was rejected — drill streams are generated from
    /// validated scenarios, so this indicates a generator bug.
    Ingest(IngestError),
}

impl std::fmt::Display for DrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrillError::Control(e) => write!(f, "drill scenario rejected: {e}"),
            DrillError::Snapshot(e) => write!(f, "drill snapshot failed: {e}"),
            DrillError::Ingest(e) => write!(f, "drill event rejected: {e}"),
        }
    }
}

impl std::error::Error for DrillError {}

impl From<ControlError> for DrillError {
    fn from(e: ControlError) -> Self {
        DrillError::Control(e)
    }
}

impl From<SnapshotError> for DrillError {
    fn from(e: SnapshotError) -> Self {
        DrillError::Snapshot(e)
    }
}

impl From<IngestError> for DrillError {
    fn from(e: IngestError) -> Self {
        DrillError::Ingest(e)
    }
}

/// Convert a scenario's mobility trace, merged with a fault schedule,
/// into the equivalent server event stream — the same interleaving the
/// chaos harness uses (faults due at or before a trace event land
/// first; each portable departs at its final trace event; trailing
/// faults fire after the trace ends).
///
/// Fault indices map onto concrete entities exactly as in
/// `arm_core::chaos` (modulo link/zone counts, modulo the sorted
/// portable set). Control-plane degradation windows have no server
/// entity to point at; they become [`ServerEvent::QueuePressure`]
/// toggles, which exercises degraded-mode shedding on a deterministic
/// schedule — precisely what a replayed drill must reproduce.
pub fn events_from_scenario(
    sc: &Scenario,
    faults: &FaultSchedule,
) -> Result<Vec<ServerEvent>, DrillError> {
    let (mgr, trace) = arm_core::scenario::build_manager(sc)?;
    let links = mgr.net.topology().link_count() as u32;
    let zones = mgr.profiles.zone_count().max(1) as u32;
    let portables: Vec<PortableId> = {
        let set: BTreeSet<PortableId> = trace.events().iter().map(|e| e.portable).collect();
        set.into_iter().collect()
    };
    let mut last_event: BTreeMap<PortableId, SimTime> = BTreeMap::new();
    for ev in trace.events() {
        last_event.insert(ev.portable, ev.time);
    }

    let fault_event = |f: &FaultEvent| -> Option<ServerEvent> {
        match f.kind {
            FaultKind::LinkDown { link } => (links > 0).then(|| ServerEvent::LinkDown {
                t: f.time,
                link: LinkId(link % links),
            }),
            FaultKind::LinkUp { link } => (links > 0).then(|| ServerEvent::LinkUp {
                t: f.time,
                link: LinkId(link % links),
            }),
            FaultKind::ProfileServerDown { zone } => Some(ServerEvent::ProfileServerDown {
                t: f.time,
                zone: ZoneId(zone % zones),
            }),
            FaultKind::ProfileServerUp { zone } => Some(ServerEvent::ProfileServerUp {
                t: f.time,
                zone: ZoneId(zone % zones),
            }),
            FaultKind::HandoffSignallingFailure { portable } => {
                if portables.is_empty() {
                    None
                } else {
                    Some(ServerEvent::FailNextHandoff {
                        t: f.time,
                        portable: portables[portable as usize % portables.len()],
                    })
                }
            }
            FaultKind::ControlDegradeStart { .. } => Some(ServerEvent::QueuePressure {
                t: f.time,
                on: true,
            }),
            FaultKind::ControlDegradeEnd => Some(ServerEvent::QueuePressure {
                t: f.time,
                on: false,
            }),
        }
    };

    let mut out = Vec::new();
    let mut pending = faults.events().iter().peekable();
    for ev in trace.events() {
        while let Some(f) = pending.peek() {
            if f.time > ev.time {
                break;
            }
            out.extend(fault_event(f));
            pending.next();
        }
        match ev.from {
            None => out.push(ServerEvent::Appear {
                t: ev.time,
                portable: ev.portable,
                cell: ev.to,
            }),
            Some(_) => out.push(ServerEvent::Move {
                t: ev.time,
                portable: ev.portable,
                to: ev.to,
            }),
        }
        if last_event.get(&ev.portable) == Some(&ev.time) {
            out.push(ServerEvent::Depart {
                t: ev.time,
                portable: ev.portable,
            });
        }
    }
    for f in pending {
        out.extend(fault_event(f));
    }
    Ok(out)
}

/// A drill's evidence: the two reports to compare, plus the checkpoint
/// that carried run B across the crash.
#[derive(Clone, Debug)]
#[must_use]
pub struct DrillOutcome {
    /// Run A's report JSON (never crashed).
    pub uninterrupted: String,
    /// Run B's report JSON (killed, restored, replayed).
    pub recovered: String,
    /// The serialized snapshot run B restored from.
    pub snapshot_json: String,
    /// Where the kill landed (accepted events before the crash).
    pub killed_after: usize,
    /// Length of the full event stream.
    pub total_events: usize,
}

/// Drive a fresh server through `events` to completion and return its
/// report JSON (observation off — drills compare pure state).
pub fn run_to_completion(cfg: &ServerConfig, events: &[ServerEvent]) -> Result<String, DrillError> {
    let mut server = Server::new(cfg.clone(), Obs::off())?;
    for ev in events {
        server.apply_event(ev)?;
    }
    server
        .report("drill")
        .to_json()
        .map_err(|e| DrillError::Snapshot(SnapshotError::Parse(e.to_string())))
}

/// The full crash-recovery drill: run A uninterrupted; run B killed
/// after `kill_after` events, restored from its own serialized
/// snapshot, and replayed over the suffix. Returns both report JSONs —
/// callers assert byte equality.
pub fn run_with_kill_restore(
    cfg: &ServerConfig,
    events: &[ServerEvent],
    kill_after: usize,
) -> Result<DrillOutcome, DrillError> {
    let kill_after = kill_after.min(events.len());
    let uninterrupted = run_to_completion(cfg, events)?;

    // Run B, phase 1: live until the crash.
    let mut victim = Server::new(cfg.clone(), Obs::off())?;
    for ev in &events[..kill_after] {
        victim.apply_event(ev)?;
    }
    let snapshot_json = victim.snapshot().to_json()?;
    drop(victim); // the crash: everything not in the snapshot is gone

    // Run B, phase 2: restore from bytes, replay the journaled suffix.
    let snap = ServerSnapshot::from_json(&snapshot_json)?;
    let mut restored = Server::restore(snap, Obs::off())?;
    for ev in &events[kill_after..] {
        restored.apply_event(ev)?;
    }
    let recovered = restored
        .report("drill")
        .to_json()
        .map_err(|e| DrillError::Snapshot(SnapshotError::Parse(e.to_string())))?;

    Ok(DrillOutcome {
        uninterrupted,
        recovered,
        snapshot_json,
        killed_after: kill_after,
        total_events: events.len(),
    })
}
