//! The server's wire-format event vocabulary.
//!
//! One JSONL line per event, externally tagged, e.g.:
//!
//! ```text
//! {"Appear":{"t":120000000,"portable":3,"cell":2}}
//! {"Move":{"t":180000000,"portable":3,"to":5}}
//! {"LinkDown":{"t":200000000,"link":7}}
//! {"Depart":{"t":240000000,"portable":3}}
//! ```
//!
//! Times are [`SimTime`] ticks and must be nondecreasing across the
//! stream — the server is a deterministic state machine over this
//! journal, which is what makes restore-and-replay exact (see
//! `crate::server`). Out-of-order, non-finite, or malformed lines are
//! rejected *per line* (typed [`crate::ingest::IngestError`]), never
//! aborting the stream.

use arm_net::ids::{CellId, LinkId, PortableId, ZoneId};
use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One ingestible event.
///
/// The vocabulary covers the manager's full control surface: portable
/// lifecycle (`Appear`/`Move`/`Depart`), explicit QoS requests, fault
/// injection (links, profile servers, handoff signalling, channel
/// fades), and the transport's own health signal (`QueuePressure`,
/// journaled so degraded-mode shedding replays deterministically).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServerEvent {
    /// A portable enters the environment at `cell`. Under a sampled
    /// workload (`Paper71`/`Fixed`) the server also opens the user's
    /// connection, drawing its QoS from the workload stream.
    Appear {
        /// Event time (ticks).
        t: SimTime,
        /// The arriving portable.
        portable: PortableId,
        /// The cell it appears in.
        cell: CellId,
    },
    /// A handoff: the portable crosses into `to`.
    Move {
        /// Event time (ticks).
        t: SimTime,
        /// The moving portable.
        portable: PortableId,
        /// The destination cell.
        to: CellId,
    },
    /// The portable leaves the environment; its open connection (if
    /// any) is terminated.
    Depart {
        /// Event time (ticks).
        t: SimTime,
        /// The departing portable.
        portable: PortableId,
    },
    /// An explicit connection request with caller-supplied bandwidth
    /// bounds (kbps). Rates must be finite and positive with
    /// `b_max_kbps ≥ b_min_kbps`.
    Request {
        /// Event time (ticks).
        t: SimTime,
        /// The requesting portable (must be present).
        portable: PortableId,
        /// Guaranteed floor `b_min` (kbps).
        b_min_kbps: f64,
        /// Maximum useful bandwidth `b_max` (kbps).
        b_max_kbps: f64,
    },
    /// A link fails (capacity drops to the admitted floors).
    LinkDown {
        /// Event time (ticks).
        t: SimTime,
        /// The failing link.
        link: LinkId,
    },
    /// The link comes back.
    LinkUp {
        /// Event time (ticks).
        t: SimTime,
        /// The restored link.
        link: LinkId,
    },
    /// A zone's profile server stops answering. While any zone is
    /// down the server operates degraded (new admissions squeezed to
    /// `b_min`).
    ProfileServerDown {
        /// Event time (ticks).
        t: SimTime,
        /// The affected zone.
        zone: ZoneId,
    },
    /// The zone's profile server recovers (with stale profiles).
    ProfileServerUp {
        /// Event time (ticks).
        t: SimTime,
        /// The recovered zone.
        zone: ZoneId,
    },
    /// The portable's next handoff loses its signalling (advance
    /// claims unusable for that handoff).
    FailNextHandoff {
        /// Event time (ticks).
        t: SimTime,
        /// The affected portable.
        portable: PortableId,
    },
    /// The wireless channel of `cell` fades to `fraction` of nominal
    /// capacity (`0 < fraction ≤ 1`).
    ChannelChange {
        /// Event time (ticks).
        t: SimTime,
        /// The affected cell.
        cell: CellId,
        /// Effective capacity fraction.
        fraction: f64,
    },
    /// The transport layer's backpressure signal: the bounded input
    /// queue crossed its watermark (`on = true`) or drained back
    /// (`on = false`). Journaled like any other event so a restored
    /// replay sheds the exact same admissions the live run shed.
    QueuePressure {
        /// Event time (ticks).
        t: SimTime,
        /// Whether pressure is now asserted.
        on: bool,
    },
}

impl ServerEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            ServerEvent::Appear { t, .. }
            | ServerEvent::Move { t, .. }
            | ServerEvent::Depart { t, .. }
            | ServerEvent::Request { t, .. }
            | ServerEvent::LinkDown { t, .. }
            | ServerEvent::LinkUp { t, .. }
            | ServerEvent::ProfileServerDown { t, .. }
            | ServerEvent::ProfileServerUp { t, .. }
            | ServerEvent::FailNextHandoff { t, .. }
            | ServerEvent::ChannelChange { t, .. }
            | ServerEvent::QueuePressure { t, .. } => *t,
        }
    }

    /// Stable variant label (journal statistics, rejection details).
    pub fn label(&self) -> &'static str {
        match self {
            ServerEvent::Appear { .. } => "Appear",
            ServerEvent::Move { .. } => "Move",
            ServerEvent::Depart { .. } => "Depart",
            ServerEvent::Request { .. } => "Request",
            ServerEvent::LinkDown { .. } => "LinkDown",
            ServerEvent::LinkUp { .. } => "LinkUp",
            ServerEvent::ProfileServerDown { .. } => "ProfileServerDown",
            ServerEvent::ProfileServerUp { .. } => "ProfileServerUp",
            ServerEvent::FailNextHandoff { .. } => "FailNextHandoff",
            ServerEvent::ChannelChange { .. } => "ChannelChange",
            ServerEvent::QueuePressure { .. } => "QueuePressure",
        }
    }

    /// Canonical JSONL encoding (one line, no trailing newline).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_as_jsonl() {
        let evs = [
            ServerEvent::Appear {
                t: SimTime::from_secs(1),
                portable: PortableId(3),
                cell: CellId(2),
            },
            ServerEvent::Request {
                t: SimTime::from_secs(2),
                portable: PortableId(3),
                b_min_kbps: 16.0,
                b_max_kbps: 64.0,
            },
            ServerEvent::QueuePressure {
                t: SimTime::from_secs(3),
                on: true,
            },
        ];
        for ev in &evs {
            let line = ev.to_jsonl().expect("serializable");
            assert!(!line.contains('\n'), "one line per event: {line}");
            let back: ServerEvent = serde_json::from_str(&line).expect("round trip");
            assert_eq!(&back, ev);
            assert_eq!(back.time(), ev.time());
            assert!(!back.label().is_empty());
        }
    }
}
