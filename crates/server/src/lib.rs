// Panic discipline: unwraps/expects are banned in library code (same
// rule as arm-core, enforced by the arm-check `no-panic` lint).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-server — the long-running resource-manager server
//!
//! The batch runners (`arm-bench`) build a manager, replay a finite
//! trace, and exit. This crate keeps a [`ResourceManager`] alive
//! *indefinitely*: scenario events arrive as JSONL (stdin or a TCP
//! socket, see the `run_server` binary), observability streams out
//! continuously, and the three robustness properties a long-lived
//! process needs are built in:
//!
//! * **Snapshot/restore** — [`Server::snapshot`] captures the complete
//!   state (manager ledgers, solver, workload RNG, sim clock, replay
//!   counters) as a schema-versioned, round-trip-validated JSON
//!   artifact; [`Server::restore`] rebuilds a bit-identical server
//!   from it. Periodic checkpoints + an event journal make crashes
//!   recoverable by *restore + replay*.
//! * **Crash-recovery drills** — [`drill`] kills a server mid-run,
//!   restores from its checkpoint, replays the journaled suffix, and
//!   proves the final report **byte-identical** to the uninterrupted
//!   run — including under active fault schedules.
//! * **Graceful degradation** — ingestion rejects bad lines with typed
//!   errors ([`ingest`]) instead of dying; the input queue is bounded
//!   with watermark backpressure ([`backlog`]); transient side-effect
//!   failures retry under a capped backoff ([`retry`]); and while the
//!   queue is pressured or a profile server is down, admissions are
//!   squeezed to their guaranteed floor instead of queueing or
//!   blocking.
//!
//! [`ResourceManager`]: arm_core::ResourceManager

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backlog;
pub mod drill;
pub mod event;
pub mod ingest;
pub mod retry;
pub mod server;

pub use backlog::{Backlog, PopOutcome, PushOutcome};
pub use event::ServerEvent;
pub use ingest::IngestError;
pub use retry::RetryPolicy;
pub use server::{
    LineOutcome, Server, ServerConfig, ServerSnapshot, SERVER_SNAPSHOT_SCHEMA_VERSION,
};
