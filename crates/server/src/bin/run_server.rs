//! The long-running server binary.
//!
//! Reads [`ServerEvent`] JSONL from stdin, a file, or a TCP socket,
//! drives a [`Server`], and emits observability JSONL plus a final
//! `RunReport`. Supports periodic checkpointing, an append-only event
//! journal, and `--restore` (checkpoint + journal replay = crash
//! recovery).
//!
//! ```text
//! run_server [--scenario office|sample] [--seed N]
//!            [--input FILE|-] [--listen ADDR]
//!            [--obs FILE] [--report FILE]
//!            [--journal FILE] [--checkpoint-dir DIR]
//!            [--checkpoint-every N] [--backlog N]
//!            [--restore SNAPSHOT]
//! ```
//!
//! In `--listen` mode a line consisting of `SHUTDOWN` ends the run
//! cleanly. Malformed or invalid lines are rejected per line (counted,
//! surfaced as `IngestRejected` observability events) and the stream
//! continues; transient journal/checkpoint write failures retry under
//! a capped backoff; input beyond the bounded backlog raises journaled
//! `QueuePressure` (degraded-mode shedding) instead of unbounded
//! buffering.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use arm_obs::{Obs, ObsConfig};
use arm_server::backlog::{Backlog, PopOutcome, PushOutcome};
use arm_server::ingest::parse_event;
use arm_server::{RetryPolicy, Server, ServerConfig, ServerEvent, ServerSnapshot};
/// Parsed command line.
struct Args {
    scenario: String,
    seed: u64,
    input: Option<String>,
    listen: Option<String>,
    obs: Option<PathBuf>,
    report: Option<PathBuf>,
    journal: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    backlog: usize,
    restore: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: run_server [--scenario office|sample] [--seed N] [--input FILE|-] \
         [--listen ADDR] [--obs FILE] [--report FILE] [--journal FILE] \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--backlog N] [--restore SNAPSHOT]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("run_server: {msg}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        scenario: "office".to_string(),
        seed: 42,
        input: None,
        listen: None,
        obs: None,
        report: None,
        journal: None,
        checkpoint_dir: None,
        checkpoint_every: 256,
        backlog: 1024,
        restore: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("run_server: {name} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--scenario" => out.scenario = value("--scenario"),
            "--seed" => match value("--seed").parse() {
                Ok(v) => out.seed = v,
                Err(_) => fail("--seed must be an integer"),
            },
            "--input" => out.input = Some(value("--input")),
            "--listen" => out.listen = Some(value("--listen")),
            "--obs" => out.obs = Some(PathBuf::from(value("--obs"))),
            "--report" => out.report = Some(PathBuf::from(value("--report"))),
            "--journal" => out.journal = Some(PathBuf::from(value("--journal"))),
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")));
            }
            "--checkpoint-every" => match value("--checkpoint-every").parse() {
                Ok(v) => out.checkpoint_every = v,
                Err(_) => fail("--checkpoint-every must be an integer"),
            },
            "--backlog" => match value("--backlog").parse() {
                Ok(v) => out.backlog = v,
                Err(_) => fail("--backlog must be an integer"),
            },
            "--restore" => out.restore = Some(PathBuf::from(value("--restore"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("run_server: unknown flag {other}");
                usage();
            }
        }
    }
    out
}

/// All the side-effect state the event loop threads through.
struct Driver {
    server: Server,
    backlog: Backlog,
    journal: Option<fs::File>,
    checkpoint_dir: Option<PathBuf>,
    retry: RetryPolicy,
}

impl Driver {
    /// Process one raw input line end to end: parse, apply, journal,
    /// checkpoint. Rejections are logged and swallowed — the server
    /// keeps serving.
    fn process_line(&mut self, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        match parse_event(line) {
            Ok(ev) => self.process_event(&ev, true),
            Err(_) => {
                // Re-run through the server so the rejection is
                // counted and surfaced on the observability stream.
                if let arm_server::LineOutcome::Rejected(e) = self.server.ingest_line(line) {
                    eprintln!("run_server: rejected line: {e}");
                }
            }
        }
    }

    /// Apply a decoded event; journal it (unless replaying) and cut a
    /// checkpoint when one is due.
    fn process_event(&mut self, ev: &ServerEvent, journal: bool) {
        if let Err(e) = self.server.apply_event(ev) {
            eprintln!("run_server: rejected event: {e}");
            return;
        }
        if journal {
            self.append_journal(ev);
        }
        if self.server.checkpoint_due() {
            self.write_checkpoint();
        }
    }

    /// Transport backpressure crossings become real, journaled events,
    /// so a replay reproduces the degraded windows exactly.
    fn pressure_event(&mut self, on: bool) {
        let ev = ServerEvent::QueuePressure {
            t: self.server.last_time(),
            on,
        };
        self.process_event(&ev, true);
    }

    /// Offer a line to the bounded backlog, draining under pressure —
    /// never growing past capacity.
    fn enqueue(&mut self, line: String) {
        loop {
            match self.backlog.push(line.clone()) {
                PushOutcome::Accepted => return,
                PushOutcome::AcceptedPressureOn => {
                    self.pressure_event(true);
                    return;
                }
                PushOutcome::Refused => self.drain_one(),
            }
        }
    }

    /// Pop and process one queued line, clearing pressure when the
    /// drain crosses the low watermark.
    fn drain_one(&mut self) {
        match self.backlog.pop() {
            PopOutcome::Line(l) => self.process_line(&l),
            PopOutcome::LinePressureOff(l) => {
                self.process_line(&l);
                self.pressure_event(false);
            }
            PopOutcome::Empty => {}
        }
    }

    fn drain_all(&mut self) {
        while !self.backlog.is_empty() {
            self.drain_one();
        }
    }

    /// Append the canonical encoding of an accepted event to the
    /// journal, retrying transient write failures under the capped
    /// backoff. If replaying past the snapshot cursor, skip instead —
    /// those lines are already on disk.
    fn append_journal(&mut self, ev: &ServerEvent) {
        let Some(file) = self.journal.as_mut() else {
            return;
        };
        let line = match ev.to_jsonl() {
            Ok(l) => l,
            Err(e) => fail(&format!("journal encode failed: {e}")),
        };
        let wrote = self.retry.run(
            || writeln!(file, "{line}").and_then(|()| file.flush()),
            std::thread::sleep,
        );
        if let Err(e) = wrote {
            fail(&format!("journal append failed after retries: {e}"));
        }
    }

    /// Write `snapshot-latest.json` atomically (tmp + rename), retrying
    /// transient failures. A failed checkpoint is a warning, not a
    /// crash — the previous checkpoint plus the journal still recover.
    fn write_checkpoint(&mut self) {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return;
        };
        let json = match self.server.snapshot().to_json() {
            Ok(j) => j,
            Err(e) => fail(&format!("snapshot failed: {e}")),
        };
        let tmp = dir.join("snapshot-latest.json.tmp");
        let dst = dir.join("snapshot-latest.json");
        let wrote = self.retry.run(
            || {
                fs::create_dir_all(&dir)?;
                fs::write(&tmp, &json)?;
                fs::rename(&tmp, &dst)
            },
            std::thread::sleep,
        );
        match wrote {
            Ok(()) => eprintln!(
                "run_server: checkpoint at {} accepted events -> {}",
                self.server.accepted(),
                dst.display()
            ),
            Err(e) => eprintln!("run_server: checkpoint failed after retries (continuing): {e}"),
        }
    }
}

fn build_obs(path: Option<&Path>) -> Obs {
    match path {
        None => Obs::off(),
        Some(p) => match ObsConfig::jsonl(p.to_path_buf()).build() {
            Ok(o) => o,
            Err(e) => fail(&format!("cannot open obs sink {}: {e}", p.display())),
        },
    }
}

fn replay_journal(driver: &mut Driver, path: &Path, cursor: u64) {
    let data = match fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => fail(&format!("cannot read journal {}: {e}", path.display())),
    };
    let mut replayed = 0u64;
    for line in data.lines().skip(cursor as usize) {
        if line.trim().is_empty() {
            continue;
        }
        match parse_event(line) {
            Ok(ev) => {
                driver.process_event(&ev, false);
                replayed += 1;
            }
            Err(e) => fail(&format!("corrupt journal line: {e}")),
        }
    }
    eprintln!("run_server: replayed {replayed} journaled events past checkpoint cursor {cursor}");
}

fn serve_reader(driver: &mut Driver, reader: impl Read) -> bool {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        match line {
            Ok(l) => {
                if l.trim() == "SHUTDOWN" {
                    driver.drain_all();
                    return true;
                }
                driver.enqueue(l);
                // Steady-state draining: keep latency low while the
                // backlog bounds any burst.
                driver.drain_one();
            }
            Err(e) => {
                eprintln!("run_server: read error (stopping input): {e}");
                break;
            }
        }
    }
    driver.drain_all();
    false
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.input.is_some() && args.listen.is_some() {
        fail("--input and --listen are mutually exclusive");
    }
    let obs = build_obs(args.obs.as_deref());

    let (server, journal_cursor) = if let Some(snap_path) = &args.restore {
        let json = match fs::read_to_string(snap_path) {
            Ok(j) => j,
            Err(e) => fail(&format!(
                "cannot read snapshot {}: {e}",
                snap_path.display()
            )),
        };
        let snap = match ServerSnapshot::from_json(&json) {
            Ok(s) => s,
            Err(e) => fail(&format!("snapshot rejected: {e}")),
        };
        let cursor = snap.accepted();
        match Server::restore(snap, obs) {
            Ok(s) => {
                eprintln!("run_server: restored at {cursor} accepted events");
                (s, cursor)
            }
            Err(e) => fail(&format!("restore failed: {e}")),
        }
    } else {
        let cfg = match args.scenario.as_str() {
            "office" => ServerConfig::office(args.seed),
            "sample" => ServerConfig {
                scenario: arm_core::Scenario {
                    seed: args.seed,
                    ..arm_core::Scenario::sample()
                },
                ..ServerConfig::office(args.seed)
            },
            other => fail(&format!("unknown scenario {other} (want office|sample)")),
        };
        let cfg = ServerConfig {
            checkpoint_every: args.checkpoint_every,
            backlog_capacity: args.backlog,
            ..cfg
        };
        match Server::new(cfg, obs) {
            Ok(s) => (s, 0),
            Err(e) => fail(&format!("scenario rejected: {e}")),
        }
    };

    let backlog_capacity = server.cfg.backlog_capacity;
    let mut driver = Driver {
        server,
        backlog: Backlog::new(backlog_capacity),
        journal: None,
        checkpoint_dir: args.checkpoint_dir.clone(),
        retry: RetryPolicy::default(),
    };

    // Crash recovery: replay the journal suffix past the checkpoint
    // cursor before accepting new input.
    if let Some(journal_path) = &args.journal {
        if args.restore.is_some() && journal_path.exists() {
            replay_journal(&mut driver, journal_path, journal_cursor);
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(journal_path);
        match file {
            Ok(f) => driver.journal = Some(f),
            Err(e) => fail(&format!(
                "cannot open journal {}: {e}",
                journal_path.display()
            )),
        }
    }

    match (&args.input, &args.listen) {
        (_, Some(addr)) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => fail(&format!("cannot listen on {addr}: {e}")),
            };
            eprintln!("run_server: listening on {addr} (line `SHUTDOWN` ends the run)");
            // Connections are served one at a time with bounded retry
            // on accept; the backlog bounds memory within each.
            loop {
                let accepted = driver.retry.run(|| listener.accept(), std::thread::sleep);
                match accepted {
                    Ok((stream, peer)) => {
                        eprintln!("run_server: connection from {peer}");
                        if serve_reader(&mut driver, stream) {
                            break;
                        }
                    }
                    Err(e) => fail(&format!("accept failed after retries: {e}")),
                }
            }
        }
        (Some(path), None) if path != "-" => {
            let file = match fs::File::open(path) {
                Ok(f) => f,
                Err(e) => fail(&format!("cannot open input {path}: {e}")),
            };
            let _ = serve_reader(&mut driver, file);
        }
        _ => {
            let _ = serve_reader(&mut driver, std::io::stdin().lock());
        }
    }

    // Final checkpoint (when configured) so a clean shutdown is also a
    // restore point, then the report.
    if driver.checkpoint_dir.is_some() && driver.server.accepted() > 0 {
        driver.write_checkpoint();
    }
    let rep = driver.server.report("run_server");
    let json = match rep.to_json() {
        Ok(j) => j,
        Err(e) => fail(&format!("report serialization failed: {e}")),
    };
    match &args.report {
        Some(p) => {
            if let Err(e) = fs::write(p, &json) {
                fail(&format!("cannot write report {}: {e}", p.display()));
            }
            eprintln!("run_server: report -> {}", p.display());
        }
        None => println!("{json}"),
    }
    eprintln!(
        "run_server: done at t={} ({} accepted, {} rejected, {} shed)",
        driver.server.last_time(),
        driver.server.accepted(),
        driver.server.rejected(),
        driver.server.shed()
    );
    ExitCode::SUCCESS
}
