//! A bounded input queue with watermark-based backpressure.
//!
//! The transport reads lines into a [`Backlog`] and the server drains
//! it. The queue is *bounded*: at capacity, `push` refuses the line and
//! the transport must stop reading (TCP's own flow control then pushes
//! back on the producer) — the server never buffers unboundedly and so
//! never dies of memory exhaustion during an input storm.
//!
//! Crossing the high watermark (the queue fills) raises *pressure*;
//! draining below the low watermark (half of capacity) clears it. The
//! transitions are reported by [`Backlog::push`]/[`Backlog::pop`] so the
//! driver can journal them as `ServerEvent::QueuePressure` — making the
//! degraded-mode shedding they trigger part of the deterministic event
//! history (see `crate::server`).

use std::collections::VecDeque;

/// What a [`Backlog::push`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum PushOutcome {
    /// Enqueued; pressure unchanged.
    Accepted,
    /// Enqueued and the queue just reached capacity: assert pressure.
    AcceptedPressureOn,
    /// Queue full; the line was refused — stop reading and retry after
    /// draining.
    Refused,
}

/// What a [`Backlog::pop`] observed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub enum PopOutcome {
    /// A line, pressure unchanged.
    Line(String),
    /// A line, and the queue just drained below the low watermark:
    /// clear pressure.
    LinePressureOff(String),
    /// Queue empty.
    Empty,
}

/// Bounded FIFO of raw input lines.
#[derive(Debug)]
pub struct Backlog {
    queue: VecDeque<String>,
    capacity: usize,
    pressured: bool,
}

impl Backlog {
    /// A backlog holding at most `capacity` lines (floored at 1).
    pub fn new(capacity: usize) -> Self {
        Backlog {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            pressured: false,
        }
    }

    /// Lines currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True while pressure is asserted (filled to capacity, not yet
    /// drained below the low watermark).
    pub fn pressured(&self) -> bool {
        self.pressured
    }

    /// The low watermark: pressure clears when the queue drains below
    /// this (half of capacity, at least 1).
    fn low_watermark(&self) -> usize {
        (self.capacity / 2).max(1)
    }

    /// Offer a line. Refused at capacity; otherwise enqueued, reporting
    /// whether this push raised pressure.
    pub fn push(&mut self, line: String) -> PushOutcome {
        if self.queue.len() >= self.capacity {
            return PushOutcome::Refused;
        }
        self.queue.push_back(line);
        if self.queue.len() >= self.capacity && !self.pressured {
            self.pressured = true;
            PushOutcome::AcceptedPressureOn
        } else {
            PushOutcome::Accepted
        }
    }

    /// Take the oldest line, reporting whether this drain cleared
    /// pressure.
    pub fn pop(&mut self) -> PopOutcome {
        let Some(line) = self.queue.pop_front() else {
            return PopOutcome::Empty;
        };
        if self.pressured && self.queue.len() < self.low_watermark() {
            self.pressured = false;
            PopOutcome::LinePressureOff(line)
        } else {
            PopOutcome::Line(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_beyond_capacity() {
        let mut b = Backlog::new(2);
        assert_eq!(b.push("a".into()), PushOutcome::Accepted);
        assert_eq!(b.push("b".into()), PushOutcome::AcceptedPressureOn);
        assert_eq!(b.push("c".into()), PushOutcome::Refused, "bounded");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn pressure_hysteresis() {
        let mut b = Backlog::new(4);
        for (i, line) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(b.push((*line).to_string()), PushOutcome::Accepted, "{i}");
        }
        assert_eq!(b.push("d".into()), PushOutcome::AcceptedPressureOn);
        assert!(b.pressured());
        // Draining to 3, then 2 (= low watermark) keeps pressure; 1 clears.
        assert_eq!(b.pop(), PopOutcome::Line("a".into()));
        assert_eq!(b.pop(), PopOutcome::Line("b".into()));
        assert_eq!(b.pop(), PopOutcome::LinePressureOff("c".into()));
        assert!(!b.pressured());
        assert_eq!(b.pop(), PopOutcome::Line("d".into()));
        assert_eq!(b.pop(), PopOutcome::Empty);
    }

    #[test]
    fn refill_after_drain_raises_pressure_again() {
        let mut b = Backlog::new(2);
        let _ = b.push("a".into());
        let _ = b.push("b".into());
        assert!(b.pressured());
        let _ = b.pop();
        let _ = b.pop();
        assert!(!b.pressured());
        let _ = b.push("c".into());
        assert_eq!(b.push("d".into()), PushOutcome::AcceptedPressureOn);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut b = Backlog::new(0);
        assert_eq!(b.push("a".into()), PushOutcome::AcceptedPressureOn);
        assert_eq!(b.push("b".into()), PushOutcome::Refused);
        assert!(b.is_empty() || b.len() == 1);
    }
}
