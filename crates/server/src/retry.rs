//! Bounded retry with capped exponential backoff.
//!
//! The server's side effects — checkpoint writes, journal appends,
//! socket accepts — can fail transiently (full pipe, slow disk, racing
//! reader). Those operations retry under a [`RetryPolicy`]: a bounded
//! attempt count with exponentially growing, capped delays. Bounded is
//! the point — an unbounded retry loop turns a dead disk into a hung
//! server, while a bounded one surfaces the error to the degradation
//! logic after a known worst-case stall (`max_total_delay`).

use std::time::Duration;

/// A bounded exponential-backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Zero behaves as one.
    pub attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// 5 attempts, 10 ms base, 500 ms cap — worst case ~1.2 s of stall
    /// before an operation is declared failed.
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (0-based; attempt 0 has no
    /// delay). Doubles each retry, saturating at [`RetryPolicy::cap`].
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Worst-case total stall if every attempt fails.
    pub fn max_total_delay(&self) -> Duration {
        (0..self.attempts)
            .map(|a| self.backoff_delay(a))
            .fold(Duration::ZERO, Duration::saturating_add)
    }

    /// Run `op` until it succeeds or the attempt budget is spent,
    /// calling `sleep` with each backoff delay. The sleeper is
    /// injectable so tests (and the simulated drills) run without
    /// wall-clock waits; the binary passes `std::thread::sleep`.
    ///
    /// Returns the first success, or the *last* error once the budget
    /// is exhausted.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        mut sleep: impl FnMut(Duration),
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(e);
                    }
                    sleep(self.backoff_delay(attempt));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        assert_eq!(p.backoff_delay(0), Duration::ZERO);
        assert_eq!(p.backoff_delay(1), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(20));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(40));
        assert_eq!(p.backoff_delay(4), Duration::from_millis(80));
        assert_eq!(p.backoff_delay(5), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff_delay(7), Duration::from_millis(100), "capped");
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let mut slept = Vec::new();
        let out: Result<u32, &str> = p.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(calls)
                }
            },
            |d| slept.push(d),
        );
        assert_eq!(out, Ok(3));
        assert_eq!(slept, vec![p.backoff_delay(1), p.backoff_delay(2)]);
    }

    #[test]
    fn gives_up_after_the_budget() {
        let p = RetryPolicy {
            attempts: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<(), u32> = p.run(
            || {
                calls += 1;
                Err(calls)
            },
            |_| {},
        );
        assert_eq!(out, Err(3), "last error surfaces");
        assert_eq!(calls, 3, "bounded");
    }

    #[test]
    fn zero_attempts_still_tries_once() {
        let p = RetryPolicy {
            attempts: 0,
            ..RetryPolicy::default()
        };
        let out: Result<u32, ()> = p.run(|| Ok(7), |_| {});
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn worst_case_stall_is_known() {
        let p = RetryPolicy::default();
        assert_eq!(
            p.max_total_delay(),
            Duration::from_millis(10 + 20 + 40 + 80)
        );
    }
}
