//! The long-running server: a [`ResourceManager`] driven by a
//! [`ServerEvent`] stream, with schema-versioned snapshot/restore.
//!
//! # Determinism contract
//!
//! The server is a deterministic state machine: its state is a pure
//! function of `(ServerConfig, accepted event sequence)`. Everything
//! that could break that — wall clocks, workload RNG, transport
//! backpressure — is folded into the event stream (virtual timestamps,
//! a snapshotted [`SimRng`], journaled `QueuePressure` events). That is
//! what makes crash recovery *provable* rather than best-effort:
//! restore the last [`ServerSnapshot`] + replay the journaled suffix ⇒
//! bit-identical state to the uninterrupted run (`crate::drill`
//! demonstrates it, `tests/drill.rs` and the CI soak enforce it).
//!
//! # Degraded mode
//!
//! The server sheds load instead of failing when its environment is
//! unhealthy. While the input queue is pressured (see
//! [`crate::backlog`]) or any zone's profile server is down, new
//! admissions are squeezed to their guaranteed floor `b_min` — the
//! paper's §5.2 squeezing policy applied preemptively, so a degraded
//! server admits more calls at lower quality rather than blocking or
//! buffering unboundedly.

use std::collections::{BTreeMap, BTreeSet};

use arm_core::scenario::{build_manager, Scenario, WorkloadSpec};
use arm_core::{ManagerSnapshot, ResourceManager, SnapshotError};
use arm_mobility::WorkloadMix;
use arm_net::flowspec::QosRequest;
use arm_net::ids::{ConnId, PortableId};
use arm_obs::{Obs, ObsEvent, RunReport};
use arm_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::event::ServerEvent;
use crate::ingest::{parse_event, IngestError};

/// Version stamp embedded in every [`ServerSnapshot`]. Bump on any
/// change to its field set (the embedded [`ManagerSnapshot`] carries
/// its own version, checked independently).
pub const SERVER_SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Static configuration of a server instance. Captured in every
/// snapshot so a restore cannot silently run under different rules
/// than the checkpoint was taken under.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerConfig {
    /// The scenario whose environment, network, strategy, and workload
    /// parameters the server runs.
    pub scenario: Scenario,
    /// The periodic maintenance interval (the batch runners' 1-minute
    /// slot tick).
    pub slot: SimDuration,
    /// Checkpoint after every `checkpoint_every` accepted events
    /// (0 disables periodic checkpoints).
    pub checkpoint_every: u64,
    /// Bound on the transport input queue (lines).
    pub backlog_capacity: usize,
}

impl ServerConfig {
    /// The §7.1 office scenario under the paper strategy — the
    /// configuration the soak drills run.
    pub fn office(seed: u64) -> Self {
        ServerConfig {
            scenario: Scenario {
                name: "server-office".into(),
                environment: arm_core::scenario::EnvSpec::Figure4,
                mobility: arm_core::scenario::MobilitySpec::OfficeCase,
                workload: WorkloadSpec::Paper71,
                strategy: arm_core::Strategy::Paper,
                cell_throughput_kbps: 1600.0,
                backbone_kbps: 100_000.0,
                wireless_error: 0.0,
                t_th_secs: 300,
                seed,
            },
            slot: SimDuration::from_mins(1),
            checkpoint_every: 256,
            backlog_capacity: 1024,
        }
    }
}

/// What [`Server::ingest_line`] did with a line.
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub enum LineOutcome {
    /// Decoded, validated, applied.
    Accepted,
    /// Rejected (counted and surfaced via
    /// [`ObsEvent::IngestRejected`]); the server state is unchanged and
    /// the stream continues.
    Rejected(IngestError),
}

/// The long-running resource-manager process state.
pub struct Server {
    /// Static configuration (also embedded in snapshots).
    pub cfg: ServerConfig,
    /// The live control plane.
    pub mgr: ResourceManager,
    rng: SimRng,
    mix: WorkloadMix,
    open: BTreeMap<PortableId, ConnId>,
    present: BTreeSet<PortableId>,
    next_slot: SimTime,
    last_time: SimTime,
    accepted: u64,
    rejected: u64,
    shed: u64,
    queue_pressure: bool,
}

impl Server {
    /// Build a fresh server from a validated scenario. The scenario's
    /// own mobility trace is ignored — events arrive from the stream —
    /// but the manager, network, and calendar are built by exactly the
    /// code path the batch runners use.
    pub fn new(cfg: ServerConfig, obs: Obs) -> Result<Self, arm_core::ControlError> {
        let (mut mgr, _trace) = build_manager(&cfg.scenario)?;
        mgr.set_obs(obs);
        let rng = SimRng::new(cfg.scenario.seed).split("scenario-workload");
        let next_slot = SimTime::ZERO + cfg.slot;
        Ok(Server {
            cfg,
            mgr,
            rng,
            mix: WorkloadMix::paper71(),
            open: BTreeMap::new(),
            present: BTreeSet::new(),
            next_slot,
            last_time: SimTime::ZERO,
            accepted: 0,
            rejected: 0,
            shed: 0,
            queue_pressure: false,
        })
    }

    /// Events accepted and applied so far (the replay cursor: a restore
    /// skips this many journal lines before replaying).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Lines/events rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Admissions squeezed to `b_min` by degraded mode so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The high-water mark of accepted event time.
    pub fn last_time(&self) -> SimTime {
        self.last_time
    }

    /// Open connections keyed by owner.
    pub fn open_connections(&self) -> &BTreeMap<PortableId, ConnId> {
        &self.open
    }

    /// Is the server currently shedding quality? True while the input
    /// queue is pressured or any profile server is out.
    pub fn degraded(&self) -> bool {
        self.queue_pressure || self.mgr.profile_outages() > 0
    }

    /// Ingest one raw line: parse, validate, apply. A rejection leaves
    /// the server state untouched, increments the rejection counter,
    /// emits [`ObsEvent::IngestRejected`], and returns the typed error
    /// — it never aborts the stream.
    pub fn ingest_line(&mut self, line: &str) -> LineOutcome {
        match parse_event(line) {
            Ok(ev) => match self.apply_event(&ev) {
                Ok(()) => LineOutcome::Accepted,
                Err(e) => LineOutcome::Rejected(e),
            },
            Err(e) => LineOutcome::Rejected(self.reject(e)),
        }
    }

    /// Validate and apply one decoded event. Validation is complete
    /// before any state changes, so a rejected event has no effect at
    /// all (not even a slot tick).
    pub fn apply_event(&mut self, ev: &ServerEvent) -> Result<(), IngestError> {
        if let Err(e) = self.validate(ev) {
            return Err(self.reject(e));
        }
        let t = ev.time();
        // Periodic maintenance first, exactly like the batch loop.
        while t >= self.next_slot {
            let slot = self.next_slot;
            self.mgr.slot_tick(slot);
            self.next_slot += self.cfg.slot;
        }
        match ev {
            ServerEvent::Appear { t, portable, cell } => {
                self.present.insert(*portable);
                self.mgr.portable_appears(*portable, *cell, *t);
                // Sample unconditionally so the workload RNG stream
                // stays aligned with the batch runners (and across
                // degraded windows).
                let qos = match &self.cfg.scenario.workload {
                    WorkloadSpec::Paper71 => Some(self.mix.sample(&mut self.rng)),
                    WorkloadSpec::Fixed { kbps } => Some(
                        QosRequest::fixed(*kbps)
                            .with_delay(30.0)
                            .with_jitter(30.0)
                            .with_loss(1.0),
                    ),
                    WorkloadSpec::None => None,
                };
                if let Some(q) = qos {
                    let q = self.maybe_shed(q);
                    if let Ok(id) = self.mgr.request_connection(*portable, q, *t) {
                        self.open.insert(*portable, id);
                    }
                }
            }
            ServerEvent::Move { t, portable, to } => {
                let dropped = self.mgr.portable_moved(*portable, *to, *t);
                self.open.retain(|_, c| !dropped.contains(c));
            }
            ServerEvent::Depart { t, portable } => {
                if let Some(id) = self.open.remove(portable) {
                    self.mgr.terminate(id, *t);
                }
                self.present.remove(portable);
            }
            ServerEvent::Request {
                t,
                portable,
                b_min_kbps,
                b_max_kbps,
            } => {
                let q = self.maybe_shed(
                    QosRequest::bandwidth(*b_min_kbps, *b_max_kbps)
                        .with_delay(30.0)
                        .with_jitter(30.0)
                        .with_loss(1.0),
                );
                if let Ok(id) = self.mgr.request_connection(*portable, q, *t) {
                    self.open.insert(*portable, id);
                }
            }
            ServerEvent::LinkDown { t, link } => {
                let dropped = self.mgr.link_failed(*link, *t);
                self.open.retain(|_, c| !dropped.contains(c));
            }
            ServerEvent::LinkUp { t, link } => {
                self.mgr.link_restored(*link, *t);
            }
            ServerEvent::ProfileServerDown { t, zone } => {
                self.mgr.profile_server_down(*zone, *t);
            }
            ServerEvent::ProfileServerUp { t, zone } => {
                self.mgr.profile_server_up(*zone, *t);
            }
            ServerEvent::FailNextHandoff { portable, .. } => {
                self.mgr.fail_next_handoff(*portable);
            }
            ServerEvent::ChannelChange { t, cell, fraction } => {
                // Range-checked in `validate`, so this cannot fail; the
                // victims still need unlinking from the open map.
                if let Ok(dropped) = self.mgr.channel_change(*cell, *fraction, *t) {
                    self.open.retain(|_, c| !dropped.contains(c));
                }
            }
            ServerEvent::QueuePressure { on, .. } => {
                self.queue_pressure = *on;
            }
        }
        self.last_time = t;
        self.accepted += 1;
        Ok(())
    }

    /// Semantic validation against the current state: time ordering,
    /// entity bounds, rate sanity. Touches nothing.
    fn validate(&self, ev: &ServerEvent) -> Result<(), IngestError> {
        let t = ev.time();
        if t < self.last_time {
            return Err(IngestError::OutOfOrder {
                event_ticks: t.ticks(),
                last_ticks: self.last_time.ticks(),
            });
        }
        let cells = self.mgr.net.topology().cell_count();
        let links = self.mgr.net.topology().link_count();
        let zones = self.mgr.profiles.zone_count().max(1);
        let check_cell = |c: arm_net::ids::CellId| {
            if (c.0 as usize) < cells {
                Ok(())
            } else {
                Err(IngestError::UnknownEntity {
                    what: format!("cell {} (have {cells})", c.0),
                })
            }
        };
        let check_present = |p: PortableId| {
            if self.present.contains(&p) {
                Ok(())
            } else {
                Err(IngestError::UnknownEntity {
                    what: format!("portable {} (not present)", p.0),
                })
            }
        };
        let check_rate = |what: &'static str, v: f64| {
            if !v.is_finite() {
                Err(IngestError::NonFinite { what })
            } else if v <= 0.0 {
                Err(IngestError::NegativeRate { what, value: v })
            } else {
                Ok(())
            }
        };
        match ev {
            ServerEvent::Appear { portable, cell, .. } => {
                check_cell(*cell)?;
                if self.present.contains(portable) {
                    return Err(IngestError::InvalidParameter {
                        detail: format!("portable {} is already present", portable.0),
                    });
                }
                Ok(())
            }
            ServerEvent::Move { portable, to, .. } => {
                check_present(*portable)?;
                check_cell(*to)
            }
            ServerEvent::Depart { portable, .. } => check_present(*portable),
            // Doom marks are valid for any portable — the mark simply
            // waits in the doomed set until (if ever) that portable
            // hands off, matching the chaos harness's semantics.
            ServerEvent::FailNextHandoff { .. } => Ok(()),
            ServerEvent::Request {
                portable,
                b_min_kbps,
                b_max_kbps,
                ..
            } => {
                check_present(*portable)?;
                check_rate("b_min_kbps", *b_min_kbps)?;
                check_rate("b_max_kbps", *b_max_kbps)?;
                if b_max_kbps < b_min_kbps {
                    return Err(IngestError::InvalidParameter {
                        detail: format!("inverted bounds: b_max {b_max_kbps} < b_min {b_min_kbps}"),
                    });
                }
                if self.open.contains_key(portable) {
                    return Err(IngestError::InvalidParameter {
                        detail: format!("portable {} already has an open connection", portable.0),
                    });
                }
                Ok(())
            }
            ServerEvent::LinkDown { link, .. } | ServerEvent::LinkUp { link, .. } => {
                if (link.0 as usize) < links {
                    Ok(())
                } else {
                    Err(IngestError::UnknownEntity {
                        what: format!("link {} (have {links})", link.0),
                    })
                }
            }
            ServerEvent::ProfileServerDown { zone, .. }
            | ServerEvent::ProfileServerUp { zone, .. } => {
                if (zone.0 as usize) < zones {
                    Ok(())
                } else {
                    Err(IngestError::UnknownEntity {
                        what: format!("zone {} (have {zones})", zone.0),
                    })
                }
            }
            ServerEvent::ChannelChange { cell, fraction, .. } => {
                check_cell(*cell)?;
                if !fraction.is_finite() {
                    return Err(IngestError::NonFinite { what: "fraction" });
                }
                if !(*fraction > 0.0 && *fraction <= 1.0) {
                    return Err(IngestError::InvalidParameter {
                        detail: format!("channel fraction {fraction} outside (0, 1]"),
                    });
                }
                Ok(())
            }
            ServerEvent::QueuePressure { .. } => Ok(()),
        }
    }

    /// Count and surface a rejection, then hand the error back.
    fn reject(&mut self, err: IngestError) -> IngestError {
        self.rejected += 1;
        let t = self.last_time;
        let reason = err.reason().to_string();
        let detail = err.to_string();
        self.mgr
            .obs
            .emit_with(|| ObsEvent::IngestRejected { t, reason, detail });
        err
    }

    /// Degraded-mode squeeze: while unhealthy, admit at the guaranteed
    /// floor only (`b_max := b_min`). Counted when it actually bites.
    fn maybe_shed(&mut self, mut q: QosRequest) -> QosRequest {
        if self.degraded() && q.b_max > q.b_min {
            q.b_max = q.b_min;
            self.shed += 1;
        }
        q
    }

    /// True when a periodic checkpoint is due (every
    /// [`ServerConfig::checkpoint_every`] accepted events).
    pub fn checkpoint_due(&self) -> bool {
        self.cfg.checkpoint_every > 0
            && self.accepted > 0
            && self.accepted % self.cfg.checkpoint_every == 0
    }

    /// Capture the complete server state.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            schema: SERVER_SNAPSHOT_SCHEMA_VERSION,
            cfg: self.cfg.clone(),
            manager: self.mgr.snapshot(),
            rng: self.rng.clone(),
            open: self.open.clone(),
            present: self.present.clone(),
            next_slot: self.next_slot,
            last_time: self.last_time,
            accepted: self.accepted,
            rejected: self.rejected,
            shed: self.shed,
            queue_pressure: self.queue_pressure,
        }
    }

    /// Rebuild a server from a snapshot. The observer is supplied fresh
    /// (observation is passive and deliberately not snapshotted); the
    /// workload mix is rebuilt from the config (it is stateless — all
    /// sampling state lives in the snapshotted RNG).
    pub fn restore(snap: ServerSnapshot, obs: Obs) -> Result<Self, SnapshotError> {
        if snap.schema != SERVER_SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch {
                found: snap.schema,
                expected: SERVER_SNAPSHOT_SCHEMA_VERSION,
            });
        }
        let mgr = ResourceManager::restore(snap.manager, obs)?;
        Ok(Server {
            cfg: snap.cfg,
            mgr,
            rng: snap.rng,
            mix: WorkloadMix::paper71(),
            open: snap.open,
            present: snap.present,
            next_slot: snap.next_slot,
            last_time: snap.last_time,
            accepted: snap.accepted,
            rejected: snap.rejected,
            shed: snap.shed,
            queue_pressure: snap.queue_pressure,
        })
    }

    /// The run-report artifact for the current state. Built purely from
    /// snapshotted state (no observer contents), so an uninterrupted
    /// run and a restore+replay run produce byte-identical reports —
    /// the equality the crash-recovery drill asserts.
    pub fn report(&self, bin: &str) -> RunReport {
        let mut rep = RunReport::new(bin, &self.cfg.scenario.name);
        rep.seed = Some(self.cfg.scenario.seed);
        rep.sim_events = Some(self.accepted);
        rep.metrics = Some(self.mgr.metrics.summary());
        rep.notes.push(format!(
            "server: accepted={} rejected={} shed={} last_t_ticks={}",
            self.accepted,
            self.rejected,
            self.shed,
            self.last_time.ticks()
        ));
        rep
    }
}

/// Complete serializable image of a [`Server`], embedding the manager
/// snapshot plus the server's own replay state (workload RNG, open/
/// present maps, slot cursor, counters, degraded flag).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Schema stamp, always [`SERVER_SNAPSHOT_SCHEMA_VERSION`] when
    /// written by this build.
    schema: u32,
    cfg: ServerConfig,
    manager: ManagerSnapshot,
    rng: SimRng,
    open: BTreeMap<PortableId, ConnId>,
    present: BTreeSet<PortableId>,
    next_slot: SimTime,
    last_time: SimTime,
    accepted: u64,
    rejected: u64,
    shed: u64,
    queue_pressure: bool,
}

impl ServerSnapshot {
    /// The schema version this snapshot carries.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// Accepted-event count at capture time (the journal replay
    /// cursor).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Serialize, validating the round trip (serialize → parse →
    /// re-serialize must be byte-identical), same discipline as
    /// [`ManagerSnapshot::to_json`].
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let back = Self::from_json(&json)?;
        let again =
            serde_json::to_string(&back).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        if again != json {
            return Err(SnapshotError::Invalid(
                "server snapshot round trip is not byte-identical".to_string(),
            ));
        }
        Ok(json)
    }

    /// Parse a snapshot, checking the server schema version before
    /// decoding the body (the embedded manager snapshot re-checks its
    /// own version during decode).
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let v: serde::Value =
            serde_json::from_str(s).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let schema = v
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "schema"))
            .and_then(|(_, sv)| sv.as_u64())
            .ok_or_else(|| SnapshotError::Parse("missing or non-integer `schema` field".into()))?;
        if schema != u64::from(SERVER_SNAPSHOT_SCHEMA_VERSION) {
            return Err(SnapshotError::SchemaMismatch {
                found: schema as u32,
                expected: SERVER_SNAPSHOT_SCHEMA_VERSION,
            });
        }
        let snap: ServerSnapshot =
            serde::Deserialize::from_value(&v).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        snap.validate()?;
        Ok(snap)
    }

    /// Validate internal consistency: both schema stamps and the
    /// embedded network ledger.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.schema != SERVER_SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch {
                found: self.schema,
                expected: SERVER_SNAPSHOT_SCHEMA_VERSION,
            });
        }
        self.manager.validate()
    }
}
