//! Hardened event ingestion: typed per-line rejection.
//!
//! A long-running server cannot treat a bad input line the way a batch
//! run treats a bad scenario file — aborting throws away every admitted
//! connection. Instead each line is validated against a typed error
//! vocabulary and, on rejection, *counted, surfaced, and skipped*: the
//! server emits an [`arm_obs::ObsEvent::IngestRejected`] and keeps
//! serving (see `Server::ingest_line`). Nothing in this module panics.

use std::error::Error;
use std::fmt;

use crate::event::ServerEvent;

/// Why a line (or decoded event) was rejected.
///
/// The `reason()` slugs are part of the observability schema — they land
/// in [`arm_obs::ObsEvent::IngestRejected`] — so keep them stable.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestError {
    /// The line is not a well-formed [`ServerEvent`] JSON document.
    Malformed {
        /// The parser's message.
        detail: String,
    },
    /// A numeric field is NaN or infinite.
    NonFinite {
        /// Which field.
        what: &'static str,
    },
    /// A rate field is zero or negative.
    NegativeRate {
        /// Which field.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The event's timestamp precedes an already-processed event.
    OutOfOrder {
        /// The event's time (ticks).
        event_ticks: u64,
        /// The server's high-water mark (ticks).
        last_ticks: u64,
    },
    /// The event names a cell, link, zone, or portable the server does
    /// not know.
    UnknownEntity {
        /// What was referenced, e.g. `"cell 99 (have 9)"`.
        what: String,
    },
    /// The event is well-formed but semantically invalid (inverted
    /// bounds, fraction outside `(0, 1]`, duplicate appear, ...).
    InvalidParameter {
        /// Human-readable description.
        detail: String,
    },
}

impl IngestError {
    /// Stable slug for observability counters (documented on
    /// [`arm_obs::ObsEvent::IngestRejected`]).
    pub fn reason(&self) -> &'static str {
        match self {
            IngestError::Malformed { .. } => "malformed",
            IngestError::NonFinite { .. } => "non-finite",
            IngestError::NegativeRate { .. } => "negative-rate",
            IngestError::OutOfOrder { .. } => "out-of-order",
            IngestError::UnknownEntity { .. } => "unknown-entity",
            IngestError::InvalidParameter { .. } => "invalid-parameter",
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Malformed { detail } => write!(f, "malformed event line: {detail}"),
            IngestError::NonFinite { what } => write!(f, "{what} is not finite"),
            IngestError::NegativeRate { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            IngestError::OutOfOrder {
                event_ticks,
                last_ticks,
            } => write!(
                f,
                "event at tick {event_ticks} precedes high-water mark {last_ticks}"
            ),
            IngestError::UnknownEntity { what } => write!(f, "unknown entity: {what}"),
            IngestError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
        }
    }
}

impl Error for IngestError {}

/// Decode one JSONL line into a [`ServerEvent`].
///
/// Purely syntactic — semantic checks (ordering, entity bounds, rate
/// sanity) happen in `Server::apply_event` where the server's state is
/// in scope. Blank lines are rejected as [`IngestError::Malformed`];
/// callers that want to skip them silently can test `is_empty()` first.
pub fn parse_event(line: &str) -> Result<ServerEvent, IngestError> {
    serde_json::from_str::<ServerEvent>(line.trim()).map_err(|e| IngestError::Malformed {
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_lines() {
        let ev = parse_event(r#"{"QueuePressure":{"t":1000000,"on":true}}"#).expect("valid line");
        assert_eq!(ev.label(), "QueuePressure");
    }

    #[test]
    fn parse_rejects_garbage_with_typed_error() {
        for bad in ["", "   ", "{", "not json", r#"{"Teleport":{"t":0}}"#] {
            let err = parse_event(bad).expect_err("must reject");
            assert_eq!(err.reason(), "malformed");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn reasons_are_stable_slugs() {
        let cases: [(IngestError, &str); 6] = [
            (IngestError::Malformed { detail: "x".into() }, "malformed"),
            (IngestError::NonFinite { what: "b_min_kbps" }, "non-finite"),
            (
                IngestError::NegativeRate {
                    what: "b_min_kbps",
                    value: -1.0,
                },
                "negative-rate",
            ),
            (
                IngestError::OutOfOrder {
                    event_ticks: 1,
                    last_ticks: 2,
                },
                "out-of-order",
            ),
            (
                IngestError::UnknownEntity {
                    what: "cell 9".into(),
                },
                "unknown-entity",
            ),
            (
                IngestError::InvalidParameter {
                    detail: "dup".into(),
                },
                "invalid-parameter",
            ),
        ];
        for (err, slug) in cases {
            assert_eq!(err.reason(), slug);
        }
    }
}
