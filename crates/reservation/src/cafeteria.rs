// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The cafeteria predictor (§6.2.2).
//!
//! "The algorithm for prediction of the number of handoffs
//! `N_handoff(t+1)` at the next time instant is based on a linear model
//! due to the slow time-varying nature of a cafeteria." With the handoff
//! counts `n_{t−2}, n_{t−1}, n_t` of the last three slots and the model
//! `n = a·t + m`, least squares gives
//!
//! ```text
//! a = (n_t − n_{t−2}) / 2
//! m = ((3t − 1)·n_{t−2} + 2·n_{t−1} + (5 − 3t)·n_t) / 6
//! N_handoff(t+1) = a·(t+1) + m
//! ```
//!
//! **Erratum.** The paper prints the intercept as
//! `m = ((5 + 3t)·n_{t−2} + 2·n_{t−1} − (3t + 1)·n_t)/6`, which is *not*
//! the least-squares intercept it claims to apply: on a perfectly linear
//! series 3, 5, 7 it predicts 5 instead of 9 (see the
//! `paper_printed_formula_is_not_least_squares` test). Since the text
//! explicitly derives the fit from "the standard Least-square technique",
//! we implement the correct closed form above, which matches the paper's
//! printed slope and agrees with the textbook fit.
//!
//! The same procedure predicts the number of *arriving* portables when a
//! neighbour is a default cell the cafeteria "should not totally trust".

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Closed-form least-squares fit of `n = a·t + m` over the last three
/// slots, evaluated at the slot index `t` of the newest sample.
pub fn least_squares_params(n_tm2: f64, n_tm1: f64, n_t: f64, t: f64) -> (f64, f64) {
    let a = (n_t - n_tm2) / 2.0;
    let m = ((3.0 * t - 1.0) * n_tm2 + 2.0 * n_tm1 + (5.0 - 3.0 * t) * n_t) / 6.0;
    (a, m)
}

/// The intercept exactly as printed in §6.2.2 — kept for the erratum
/// test, not used by the predictor.
pub fn paper_printed_intercept(n_tm2: f64, n_tm1: f64, n_t: f64, t: f64) -> f64 {
    ((5.0 + 3.0 * t) * n_tm2 + 2.0 * n_tm1 - (3.0 * t + 1.0) * n_t) / 6.0
}

/// Predict the next slot's handoff count from the last three.
pub fn predict_next(n_tm2: f64, n_tm1: f64, n_t: f64, t: f64) -> f64 {
    let (a, m) = least_squares_params(n_tm2, n_tm1, n_t, t);
    (a * (t + 1.0) + m).max(0.0)
}

/// Sliding three-slot window with the slot index tracked automatically.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CafeteriaPredictor {
    window: VecDeque<f64>,
    /// Slot index of the newest sample.
    t: f64,
}

impl CafeteriaPredictor {
    /// Empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the handoff count of the slot that just ended. A count is
    /// a tally, so NaN/infinite/negative observations are sanitised to
    /// zero at the door — otherwise a single bad sample would poison the
    /// window and the short-window `predict` fallback would hand a
    /// negative or NaN reservation straight to the claim sizing.
    pub fn observe(&mut self, count: f64) {
        let count = if count.is_finite() {
            count.max(0.0)
        } else {
            0.0
        };
        if self.window.len() == 3 {
            self.window.pop_front();
        }
        self.window.push_back(count);
        self.t += 1.0;
    }

    /// Predicted handoffs for the next slot; falls back to the latest
    /// observation (one-step memory) until three slots are available,
    /// and to zero before any observation. Never negative or NaN.
    pub fn predict(&self) -> f64 {
        match self.window.len() {
            0 => 0.0,
            1 | 2 => self.window.back().expect("invariant: non-empty").max(0.0),
            _ => predict_next(self.window[0], self.window[1], self.window[2], self.t),
        }
    }

    /// Number of observations so far (capped view: window size).
    pub fn observations(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force least squares over the three points
    /// ((t−2, n0), (t−1, n1), (t, n2)).
    fn ls_reference(n0: f64, n1: f64, n2: f64, t: f64) -> (f64, f64) {
        let xs = [t - 2.0, t - 1.0, t];
        let ys = [n0, n1, n2];
        let xbar = xs.iter().sum::<f64>() / 3.0;
        let ybar = ys.iter().sum::<f64>() / 3.0;
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - xbar) * (y - ybar))
            .sum();
        let sxx: f64 = xs.iter().map(|x| (x - xbar) * (x - xbar)).sum();
        let a = sxy / sxx;
        let m = ybar - a * xbar;
        (a, m)
    }

    #[test]
    fn closed_form_matches_textbook_least_squares() {
        for (n0, n1, n2, t) in [
            (2.0, 3.0, 4.0, 2.0),
            (10.0, 7.0, 9.0, 5.0),
            (0.0, 0.0, 5.0, 17.0),
            (4.0, 4.0, 4.0, 100.0),
        ] {
            let (a, m) = least_squares_params(n0, n1, n2, t);
            let (ar, mr) = ls_reference(n0, n1, n2, t);
            assert!((a - ar).abs() < 1e-9, "slope {a} vs {ar}");
            assert!((m - mr).abs() < 1e-9, "intercept {m} vs {mr}");
        }
    }

    #[test]
    fn linear_ramp_is_extrapolated_exactly() {
        // Counts 3, 5, 7 at slots 4, 5, 6 → next is 9.
        let p = predict_next(3.0, 5.0, 7.0, 6.0);
        assert!((p - 9.0).abs() < 1e-9, "p={p}");
        // Constant series predicts itself.
        assert!((predict_next(4.0, 4.0, 4.0, 9.0) - 4.0).abs() < 1e-9);
        // Falling ramp clamps at zero rather than predicting negative
        // handoffs.
        assert_eq!(predict_next(4.0, 2.0, 0.0, 3.0), 0.0);
    }

    #[test]
    fn sliding_window_behaviour() {
        let mut p = CafeteriaPredictor::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(2.0);
        assert_eq!(p.predict(), 2.0, "one-step memory until warm");
        p.observe(4.0);
        assert_eq!(p.predict(), 4.0);
        p.observe(6.0);
        // Ramp 2, 4, 6 → 8.
        assert!((p.predict() - 8.0).abs() < 1e-9);
        p.observe(8.0);
        // Window slides: 4, 6, 8 → 10.
        assert!((p.predict() - 10.0).abs() < 1e-9);
        assert_eq!(p.observations(), 3);
    }

    #[test]
    fn short_window_fallback_is_latest_observation() {
        // Intended behavior with fewer than three samples, documented:
        // the least-squares fit needs three points, so the predictor
        // degrades gracefully rather than guessing a trend —
        //   0 samples → 0.0 (no information: reserve nothing);
        //   1 sample  → that sample (one-step memory);
        //   2 samples → the *newest* sample, not the mean — a cafeteria
        //     ramps at meal boundaries, so the latest slot is the best
        //     cheap estimate and deliberately ignores the older one.
        let p = CafeteriaPredictor::new();
        assert_eq!(p.observations(), 0);
        assert_eq!(p.predict(), 0.0);

        let mut p = CafeteriaPredictor::new();
        p.observe(5.0);
        assert_eq!(p.observations(), 1);
        assert_eq!(p.predict(), 5.0);

        p.observe(9.0);
        assert_eq!(p.observations(), 2);
        // Newest wins; no averaging, no extrapolation of the 5→9 ramp.
        assert_eq!(p.predict(), 9.0);

        // Two samples in the other direction: still the newest, even
        // though a trend fit would predict lower.
        let mut q = CafeteriaPredictor::new();
        q.observe(9.0);
        q.observe(5.0);
        assert_eq!(q.predict(), 5.0);
    }

    #[test]
    fn paper_printed_formula_is_not_least_squares() {
        // Documenting the erratum: on the linear series 3, 5, 7 at slots
        // 4..6, the printed intercept yields prediction 5 where least
        // squares (and common sense) give 9.
        let a = (7.0 - 3.0) / 2.0;
        let m = paper_printed_intercept(3.0, 5.0, 7.0, 6.0);
        let printed_pred = a * 7.0 + m;
        assert!((printed_pred - 5.0).abs() < 1e-9, "printed={printed_pred}");
        // It does agree on constant series, which is probably why the
        // typo survived review.
        let mc = paper_printed_intercept(4.0, 4.0, 4.0, 9.0);
        assert!((mc - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bad_observations_never_produce_negative_or_nan_predictions() {
        // Regression: with fewer than three samples, `predict` returns
        // the newest observation raw — a negative or NaN sample became a
        // negative or NaN reservation.
        let mut p = CafeteriaPredictor::new();
        p.observe(-3.0);
        assert_eq!(p.predict(), 0.0);
        p.observe(f64::NAN);
        assert_eq!(p.predict(), 0.0);
        p.observe(f64::INFINITY);
        assert_eq!(p.predict(), 0.0);
        // And the warm path stays finite and nonnegative too.
        p.observe(2.0);
        let pred = p.predict();
        assert!(pred.is_finite() && pred >= 0.0, "pred={pred}");
    }

    #[test]
    fn prediction_is_shift_invariant_in_t() {
        // The predicted next value shouldn't depend on the absolute slot
        // index, only on the three counts.
        let p1 = predict_next(3.0, 5.0, 6.0, 10.0);
        let p2 = predict_next(3.0, 5.0, 6.0, 1000.0);
        assert!((p1 - p2).abs() < 1e-6, "{p1} vs {p2}");
    }
}
