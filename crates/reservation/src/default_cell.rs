//! The default-lounge predictor (§6.2.3).
//!
//! "We adopt a one-step-memory policy for the prediction of the number of
//! handoffs … the number of handoffs at time t+1 is simply the number of
//! handoffs at current time: `N_handoff(t+1) = N_handoff(t)`."
//!
//! When a default cell's neighbour is itself a default cell — a poor
//! predictor it "should not totally trust" — the cell additionally runs
//! the probabilistic reservation algorithm
//! ([`crate::probabilistic`]) for its own inbound capacity.

use serde::{Deserialize, Serialize};

/// One-step-memory predictor.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OneStepMemory {
    last: f64,
    seen_any: bool,
}

impl OneStepMemory {
    /// Fresh predictor (predicts zero until the first observation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the handoff count of the slot that just ended. Counts are
    /// tallies: NaN/infinite/negative observations sanitise to zero so
    /// the echoed prediction can never size a negative reservation.
    pub fn observe(&mut self, count: f64) {
        self.last = if count.is_finite() {
            count.max(0.0)
        } else {
            0.0
        };
        self.seen_any = true;
    }

    /// `N_handoff(t+1) = N_handoff(t)`.
    pub fn predict(&self) -> f64 {
        self.last
    }

    /// Has anything been observed yet?
    pub fn warmed_up(&self) -> bool {
        self.seen_any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_the_last_observation() {
        let mut p = OneStepMemory::new();
        assert_eq!(p.predict(), 0.0);
        assert!(!p.warmed_up());
        p.observe(7.0);
        assert_eq!(p.predict(), 7.0);
        p.observe(3.0);
        assert_eq!(p.predict(), 3.0);
        assert!(p.warmed_up());
    }

    #[test]
    fn bad_observations_are_sanitised() {
        // Regression: the echo predictor used to repeat a negative or
        // NaN sample verbatim as the next reservation size.
        let mut p = OneStepMemory::new();
        p.observe(-2.0);
        assert_eq!(p.predict(), 0.0);
        p.observe(f64::NAN);
        assert_eq!(p.predict(), 0.0);
        p.observe(f64::NEG_INFINITY);
        assert_eq!(p.predict(), 0.0);
        assert!(p.warmed_up());
    }
}
