//! The probabilistic default reservation algorithm (§6.3, eqns 3–7).
//!
//! Model (Figure 3): two neighbouring cells `C_q` (ours) and `C_s`.
//! Connections come in `k` types with bandwidth `b_min,i`, exponential
//! holding (rate `μ_i`), and handoff probability `h_q`. Over a look-ahead
//! window `[t, t+T]`:
//!
//! * a connection stays put with `p_s,i = e^{−μ_i T}` ,
//! * a connection in the neighbour hands off here with
//!   `p_m,i = (1 − e^{−μ_i T})·h_q`,
//! * at most one handoff per connection, and new arrivals during the
//!   window are ignored (conflicts drop the later arrival — the
//!   interpretation that makes "handoff dropping" measurable),
//! * the count of stayers is binomial `B(j_i; N_i, p_s,i)` (eqn 3), the
//!   count of arrivals binomial `B(l_i; s_i, p_m,i)` (eqn 4),
//! * the non-blocking probability is
//!   `P_nb = Prob(Σ_i b_min,i (l_i + j_i) ≤ B_c)` (eqn 5),
//! * the design constraint is `P_nb ≥ 1 − P_QOS` (eqn 6), met by capping
//!   the admissible counts `N_i` and reserving
//!   `b_resv ≥ B_c − Σ_i b_min,i N_i` (eqn 7).
//!
//! Everything is computed exactly by convolving the binomial pmfs on a
//! bandwidth grid — no Monte Carlo, so admission decisions are
//! deterministic.

use serde::{Deserialize, Serialize};

/// Stay probability `p_s = e^{−μT}`.
pub fn p_stay(mu: f64, t_window: f64) -> f64 {
    (-mu * t_window).exp()
}

/// Handoff-in probability `p_m = (1 − e^{−μT})·h`.
pub fn p_move(mu: f64, t_window: f64, h: f64) -> f64 {
    (1.0 - (-mu * t_window).exp()) * h
}

/// Binomial pmf `B(·; n, p)` as a vector of length `n + 1`.
pub fn binom_pmf(n: u32, p: f64) -> Vec<f64> {
    let p = p.clamp(0.0, 1.0);
    let mut pmf = vec![0.0; n as usize + 1];
    // Iterative: start at (1-p)^n, multiply by ratio.
    let q = 1.0 - p;
    if q == 0.0 {
        pmf[n as usize] = 1.0;
        return pmf;
    }
    let mut v = q.powi(n as i32);
    for (k, slot) in pmf.iter_mut().enumerate() {
        *slot = v;
        if k < n as usize {
            v = v * (n as usize - k) as f64 / (k + 1) as f64 * (p / q);
        }
    }
    pmf
}

/// One connection type's state at decision time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TypeState {
    /// Guaranteed bandwidth per connection (`b_min,i`).
    pub b_min: f64,
    /// Departure rate `μ_i`.
    pub mu: f64,
    /// Connections of this type currently in our cell (`n_i`, a lower
    /// bound on `N_i`).
    pub n_current: u32,
    /// Connections of this type currently in the neighbour (`s_i`).
    pub s_neighbor: u32,
}

/// Algorithm configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProbabilisticConfig {
    /// Look-ahead window `T` (same time unit as the `μ_i`).
    pub window_t: f64,
    /// Target handoff-drop probability `P_QOS`.
    pub p_qos: f64,
    /// Cell capacity `B_c`.
    pub capacity: f64,
    /// Handoff probability `h_q` out of the neighbour toward us.
    pub handoff_prob: f64,
    /// Bandwidth quantum: every `b_min,i` and the capacity must be an
    /// integer multiple (1.0 for the Figure 6 units; 16.0 for the §7.1
    /// kbps mix).
    pub quantum: f64,
}

impl ProbabilisticConfig {
    /// The Figure 6 experiment's base configuration (capacity 40,
    /// `h_q` = 0.7, unit quantum); `window_t` and `p_qos` vary per curve.
    pub fn fig6(window_t: f64, p_qos: f64) -> Self {
        ProbabilisticConfig {
            window_t,
            p_qos,
            capacity: 40.0,
            handoff_prob: 0.7,
            quantum: 1.0,
        }
    }
}

/// The solver.
///
/// ```
/// use arm_reservation::probabilistic::{
///     ProbabilisticConfig, ProbabilisticReservation, TypeState,
/// };
///
/// // Figure 6's cell: capacity 40, look-ahead T = 0.05, target 1%.
/// let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.05, 0.01));
/// let types = [
///     TypeState { b_min: 1.0, mu: 5.0, n_current: 20, s_neighbor: 20 },
///     TypeState { b_min: 4.0, mu: 4.0, n_current: 1, s_neighbor: 1 },
/// ];
/// // Admitting one more type-1 connection keeps P_nb ≥ 1 − P_QOS here…
/// assert!(solver.admit_new(&types, 0));
/// // …and the non-blocking probability itself is available (eqn 5).
/// let p_nb = solver.nonblocking_prob(&types, &[20, 1]);
/// assert!(p_nb > 0.99);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ProbabilisticReservation {
    /// Configuration.
    pub cfg: ProbabilisticConfig,
}

impl ProbabilisticReservation {
    /// Wrap a configuration.
    pub fn new(cfg: ProbabilisticConfig) -> Self {
        assert!(cfg.window_t > 0.0 && cfg.capacity > 0.0 && cfg.quantum > 0.0);
        assert!((0.0..=1.0).contains(&cfg.p_qos));
        ProbabilisticReservation { cfg }
    }

    fn units(&self, b: f64) -> usize {
        let u = b / self.cfg.quantum;
        let r = u.round();
        assert!(
            (u - r).abs() < 1e-9,
            "bandwidth {b} is not a multiple of the quantum {}",
            self.cfg.quantum
        );
        r as usize
    }

    /// Eqn 5: `P_nb = Prob(Σ b_min,i (l_i + j_i) ≤ B_c)`, with the
    /// admitted counts `n_i` (eqn 3's `N_i`) given per type.
    pub fn nonblocking_prob(&self, types: &[TypeState], admitted: &[u32]) -> f64 {
        assert_eq!(types.len(), admitted.len());
        let cap_units = self.units(self.cfg.capacity);
        // dist[w] = probability the survivors+arrivals demand exactly w
        // units; index cap_units+1 accumulates the overflow mass.
        let mut dist = vec![0.0; cap_units + 2];
        dist[0] = 1.0;
        for (ty, n_adm) in types.iter().zip(admitted) {
            let b_units = self.units(ty.b_min);
            let ps = p_stay(ty.mu, self.cfg.window_t);
            let pm = p_move(ty.mu, self.cfg.window_t, self.cfg.handoff_prob);
            for (count_max, p) in [(*n_adm, ps), (ty.s_neighbor, pm)] {
                if count_max == 0 {
                    continue;
                }
                let pmf = binom_pmf(count_max, p);
                dist = convolve_scaled(&dist, &pmf, b_units, cap_units);
            }
        }
        dist[..=cap_units].iter().sum()
    }

    /// Eqn 6 check with the *current* population as the admitted counts.
    pub fn meets_target(&self, types: &[TypeState]) -> bool {
        let admitted: Vec<u32> = types.iter().map(|t| t.n_current).collect();
        self.nonblocking_prob(types, &admitted) >= 1.0 - self.cfg.p_qos
    }

    /// Call-admission decision: may one more connection of
    /// `types[new_idx]` be admitted without violating eqn 6 for the
    /// existing connections at `t + T`?
    pub fn admit_new(&self, types: &[TypeState], new_idx: usize) -> bool {
        let mut admitted: Vec<u32> = types.iter().map(|t| t.n_current).collect();
        admitted[new_idx] += 1;
        self.nonblocking_prob(types, &admitted) >= 1.0 - self.cfg.p_qos
    }

    /// The largest admissible counts `N_i ≥ n_i`, grown round-robin until
    /// eqn 6 would break (deterministic; used to size `b_resv`).
    pub fn max_admissible(&self, types: &[TypeState]) -> Vec<u32> {
        let mut n: Vec<u32> = types.iter().map(|t| t.n_current).collect();
        // Hard cap per type: the capacity in units of its bandwidth.
        let caps: Vec<u32> = types
            .iter()
            .map(|t| (self.cfg.capacity / t.b_min).floor() as u32)
            .collect();
        loop {
            let mut grew = false;
            for i in 0..n.len() {
                if n[i] >= caps[i] {
                    continue;
                }
                n[i] += 1;
                if self.nonblocking_prob(types, &n) >= 1.0 - self.cfg.p_qos {
                    grew = true;
                } else {
                    n[i] -= 1;
                }
            }
            if !grew {
                return n;
            }
        }
    }

    /// Eqn 7: the bandwidth to advance-reserve given the admissible
    /// counts — `max(0, B_c − Σ b_min,i N_i)`.
    pub fn reserved_bandwidth(&self, types: &[TypeState], admissible: &[u32]) -> f64 {
        let used: f64 = types
            .iter()
            .zip(admissible)
            .map(|(t, n)| t.b_min * f64::from(*n))
            .sum();
        (self.cfg.capacity - used).max(0.0)
    }
}

/// Convolve `dist` with `pmf` where each pmf count weighs `b_units` grid
/// cells; mass beyond `cap_units` lands in the overflow bin.
fn convolve_scaled(dist: &[f64], pmf: &[f64], b_units: usize, cap_units: usize) -> Vec<f64> {
    let over = cap_units + 1;
    let mut out = vec![0.0; cap_units + 2];
    for (w, dmass) in dist.iter().enumerate() {
        if *dmass == 0.0 {
            continue;
        }
        if w == over {
            out[over] += dmass;
            continue;
        }
        for (k, pmass) in pmf.iter().enumerate() {
            if *pmass == 0.0 {
                continue;
            }
            let idx = w + k * b_units;
            if idx > cap_units {
                out[over] += dmass * pmass;
            } else {
                out[idx] += dmass * pmass;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stay_and_move_probabilities() {
        // μ = 5, T = 0.2: p_s = e^{−1} ≈ 0.3679.
        assert!((p_stay(5.0, 0.2) - (-1.0f64).exp()).abs() < 1e-12);
        // p_m = (1 − e^{−1})·0.7 ≈ 0.4425.
        assert!((p_move(5.0, 0.2, 0.7) - (1.0 - (-1.0f64).exp()) * 0.7).abs() < 1e-12);
        // T → 0: everyone stays, nobody moves.
        assert!((p_stay(5.0, 1e-12) - 1.0).abs() < 1e-9);
        assert!(p_move(5.0, 1e-12, 0.7) < 1e-9);
    }

    #[test]
    fn binom_pmf_properties() {
        let pmf = binom_pmf(10, 0.3);
        assert_eq!(pmf.len(), 11);
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - 3.0).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(binom_pmf(5, 0.0)[0], 1.0);
        assert_eq!(binom_pmf(5, 1.0)[5], 1.0);
        assert_eq!(binom_pmf(0, 0.4), vec![1.0]);
    }

    fn fig6_state(n1: u32, s1: u32, n2: u32, s2: u32) -> Vec<TypeState> {
        vec![
            TypeState {
                b_min: 1.0,
                mu: 5.0,
                n_current: n1,
                s_neighbor: s1,
            },
            TypeState {
                b_min: 4.0,
                mu: 4.0,
                n_current: n2,
                s_neighbor: s2,
            },
        ]
    }

    #[test]
    fn nonblocking_prob_empty_cells_is_one() {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.05, 0.01));
        let p = solver.nonblocking_prob(&fig6_state(0, 0, 0, 0), &[0, 0]);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonblocking_prob_monotone_in_population() {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.1, 0.01));
        let mut last = 1.0;
        for n in [5u32, 15, 25, 35, 45] {
            let p = solver.nonblocking_prob(&fig6_state(n, 20, 2, 2), &[n, 2]);
            assert!(p <= last + 1e-12, "not monotone at n={n}: {p} > {last}");
            last = p;
        }
        // Saturated cell: certainly some blocking risk.
        assert!(last < 0.9);
    }

    #[test]
    fn monte_carlo_agreement() {
        // Cross-validate the exact convolution with simulation.
        let cfg = ProbabilisticConfig::fig6(0.1, 0.01);
        let solver = ProbabilisticReservation::new(cfg);
        let types = fig6_state(25, 15, 2, 1);
        let admitted = [25u32, 2];
        let exact = solver.nonblocking_prob(&types, &admitted);
        let mut rng = arm_sim::SimRng::new(99);
        let trials = 200_000;
        let mut ok = 0u32;
        for _ in 0..trials {
            let mut demand = 0.0;
            for (ty, adm) in types.iter().zip(&admitted) {
                let ps = p_stay(ty.mu, cfg.window_t);
                let pm = p_move(ty.mu, cfg.window_t, cfg.handoff_prob);
                let j = rng.binomial(*adm, ps);
                let l = rng.binomial(ty.s_neighbor, pm);
                demand += ty.b_min * f64::from(j + l);
            }
            if demand <= cfg.capacity {
                ok += 1;
            }
        }
        let mc = f64::from(ok) / trials as f64;
        assert!((exact - mc).abs() < 0.005, "exact {exact} vs MC {mc}");
    }

    #[test]
    fn admit_new_blocks_when_target_at_risk() {
        // Small window, tight target, a nearly full cell.
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.5, 0.001));
        let crowded = fig6_state(36, 36, 1, 1);
        assert!(!solver.admit_new(&crowded, 0), "crowded cell must refuse");
        let empty = fig6_state(0, 0, 0, 0);
        assert!(solver.admit_new(&empty, 0));
        assert!(solver.admit_new(&empty, 1));
    }

    #[test]
    fn window_effects() {
        // As T → 0 a feasible current population certainly fits.
        let types = fig6_state(30, 30, 1, 1);
        let admitted = [30u32, 1];
        let p0 = ProbabilisticReservation::new(ProbabilisticConfig::fig6(1e-9, 0.01))
            .nonblocking_prob(&types, &admitted);
        assert!((p0 - 1.0).abs() < 1e-9, "p0={p0}");
        // With no local connections only handoffs-in matter, and p_m is
        // increasing in T: a longer window means lower P_nb.
        let arrivals_only = fig6_state(0, 70, 0, 1);
        let mut last = 1.0;
        for t in [0.01, 0.05, 0.2, 0.5, 2.0] {
            let p = ProbabilisticReservation::new(ProbabilisticConfig::fig6(t, 0.01))
                .nonblocking_prob(&arrivals_only, &[0, 0]);
            assert!(p <= last + 1e-12, "not decreasing at T={t}");
            last = p;
        }
        assert!(last < 0.9, "long window sees real handoff risk: {last}");
    }

    #[test]
    fn max_admissible_and_reservation() {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.05, 0.02));
        let types = fig6_state(10, 10, 1, 1);
        let n = solver.max_admissible(&types);
        // At least the current population is admissible.
        assert!(n[0] >= 10 && n[1] >= 1);
        // Growing any type by one must break the target (maximality),
        // unless the hard capacity cap stopped it first.
        for i in 0..2 {
            let mut grown = n.clone();
            grown[i] += 1;
            let cap = (solver.cfg.capacity / types[i].b_min).floor() as u32;
            if grown[i] <= cap {
                assert!(
                    solver.nonblocking_prob(&types, &grown) < 1.0 - solver.cfg.p_qos,
                    "N not maximal in type {i}"
                );
            }
        }
        let resv = solver.reserved_bandwidth(&types, &n);
        let used: f64 = types
            .iter()
            .zip(&n)
            .map(|(t, k)| t.b_min * f64::from(*k))
            .sum();
        assert!((resv - (40.0 - used).max(0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a multiple of the quantum")]
    fn non_quantised_bandwidth_rejected() {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.1, 0.01));
        let bad = vec![TypeState {
            b_min: 1.5,
            mu: 1.0,
            n_current: 1,
            s_neighbor: 0,
        }];
        solver.nonblocking_prob(&bad, &[1]);
    }
}
