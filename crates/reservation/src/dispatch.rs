// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The §6.4 summary dispatcher.
//!
//! Given a mobile portable's three-level prediction and the class of its
//! current cell, decide what kind of advance reservation to make:
//!
//! 1. next-predicted-cell from the **portable profile** ⇒ reserve there;
//! 2. otherwise by **cell class**:
//!    * *office*: a neighbouring office the user occupies ⇒ reserve
//!      there; the user occupies *this* office ⇒ no reservation (they are
//!      expected to stay; the neighbours' `B_dyn` pools cover surprises);
//!      otherwise aggregate history;
//!    * *corridor*: occupant office ⇒ reserve there; otherwise aggregate
//!      history;
//!    * *lounges*: the class's slot-driven policy (meeting calendar,
//!      cafeteria least-squares, default one-step + probabilistic) sizes
//!      an aggregate claim instead of per-portable claims;
//! 3. nothing to go on ⇒ the default (probabilistic) algorithm.

use arm_net::ids::{CellId, PortableId};
use arm_obs::{Obs, ObsEvent};
use arm_profiles::prediction::{Prediction, PredictionLevel};
use arm_profiles::CellClass;
use arm_sim::time::SimTime;

/// What the §6.4 dispatcher tells the resource manager to do for one
/// mobile portable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservationDecision {
    /// Reserve this portable's connection floors in the named cell.
    PerConnection(CellId),
    /// Make no per-portable reservation (occupant staying put).
    NoReservation,
    /// The current cell's class-level (aggregate) policy covers it.
    ClassPolicy,
    /// No usable information: fall back to the default probabilistic
    /// reservation algorithm.
    DefaultAlgorithm,
}

impl ReservationDecision {
    /// Stable kebab-case label (used in trace events and reports).
    pub fn label(self) -> &'static str {
        match self {
            ReservationDecision::PerConnection(_) => "per-connection",
            ReservationDecision::NoReservation => "no-reservation",
            ReservationDecision::ClassPolicy => "class-policy",
            ReservationDecision::DefaultAlgorithm => "default-algorithm",
        }
    }
}

/// Run the dispatcher.
///
/// `is_occupant_of_current` — is the portable a regular occupant of its
/// *current* cell (meaningful when that cell is an office)?
pub fn decide(
    current_class: CellClass,
    is_occupant_of_current: bool,
    prediction: Prediction,
) -> ReservationDecision {
    // Rule 1: the portable's own profile always wins.
    if prediction.level == PredictionLevel::PortableProfile {
        return ReservationDecision::PerConnection(
            prediction
                .cell
                .expect("invariant: level-1 prediction has a cell"),
        );
    }
    match current_class {
        CellClass::Office => {
            match prediction.level {
                // Rule 2(office).1: neighbouring office occupancy.
                PredictionLevel::OccupantOffice => ReservationDecision::PerConnection(
                    prediction
                        .cell
                        .expect("invariant: occupant prediction has a cell"),
                ),
                // Rule 2(office).2: the portable belongs here.
                _ if is_occupant_of_current => ReservationDecision::NoReservation,
                // Rule 2(office).3: aggregate history.
                PredictionLevel::CellAggregate => ReservationDecision::PerConnection(
                    prediction
                        .cell
                        .expect("invariant: aggregate prediction has a cell"),
                ),
                _ => ReservationDecision::DefaultAlgorithm,
            }
        }
        CellClass::Corridor => match prediction.level {
            PredictionLevel::OccupantOffice | PredictionLevel::CellAggregate => {
                ReservationDecision::PerConnection(
                    prediction.cell.expect("invariant: prediction has a cell"),
                )
            }
            _ => ReservationDecision::DefaultAlgorithm,
        },
        CellClass::Lounge(_) => ReservationDecision::ClassPolicy,
    }
}

/// [`decide`], with the outcome emitted as a
/// [`ReservationDispatch`](ObsEvent::ReservationDispatch) trace event.
///
/// The decision is computed first and observed after, so an attached
/// observer can never influence it; with `obs` off this is exactly
/// [`decide`] plus one branch.
pub fn decide_traced(
    current_class: CellClass,
    is_occupant_of_current: bool,
    prediction: Prediction,
    now: SimTime,
    portable: PortableId,
    obs: &mut Obs,
) -> ReservationDecision {
    let decision = decide(current_class, is_occupant_of_current, prediction);
    obs.emit_with(|| ObsEvent::ReservationDispatch {
        t: now,
        portable,
        decision: decision.label().to_string(),
    });
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_profiles::LoungeKind;

    fn pred(level: PredictionLevel, cell: Option<u32>) -> Prediction {
        Prediction {
            cell: cell.map(CellId),
            level,
        }
    }

    #[test]
    fn portable_profile_beats_everything() {
        for class in [
            CellClass::Office,
            CellClass::Corridor,
            CellClass::Lounge(LoungeKind::MeetingRoom),
        ] {
            let d = decide(class, true, pred(PredictionLevel::PortableProfile, Some(9)));
            assert_eq!(d, ReservationDecision::PerConnection(CellId(9)));
        }
    }

    #[test]
    fn office_occupant_stays_put() {
        let d = decide(
            CellClass::Office,
            true,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::NoReservation);
        // Even with an aggregate prediction available, an occupant of the
        // current office makes no advance reservation.
        let d = decide(
            CellClass::Office,
            true,
            pred(PredictionLevel::CellAggregate, Some(4)),
        );
        assert_eq!(d, ReservationDecision::NoReservation);
    }

    #[test]
    fn office_visitor_with_own_office_next_door() {
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::OccupantOffice, Some(3)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(3)));
    }

    #[test]
    fn office_stranger_uses_aggregate_then_default() {
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::CellAggregate, Some(7)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(7)));
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::DefaultAlgorithm);
    }

    #[test]
    fn corridor_rules() {
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::OccupantOffice, Some(2)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(2)));
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::CellAggregate, Some(5)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(5)));
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::DefaultAlgorithm);
    }

    #[test]
    fn traced_wrapper_matches_decide_and_emits() {
        let mut obs = arm_obs::Obs::recording(8);
        let p = pred(PredictionLevel::PortableProfile, Some(9));
        let d = decide_traced(
            CellClass::Office,
            false,
            p,
            SimTime::from_secs(4),
            PortableId(3),
            &mut obs,
        );
        assert_eq!(d, decide(CellClass::Office, false, p));
        let events = obs.snapshot_events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            ObsEvent::ReservationDispatch {
                t,
                portable,
                decision,
            } => {
                assert_eq!(*t, SimTime::from_secs(4));
                assert_eq!(*portable, PortableId(3));
                assert_eq!(decision, "per-connection");
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Off path: same decision, nothing recorded.
        let mut off = arm_obs::Obs::off();
        let d2 = decide_traced(
            CellClass::Office,
            false,
            p,
            SimTime::from_secs(4),
            PortableId(3),
            &mut off,
        );
        assert_eq!(d2, d);
        assert_eq!(off.total_events(), 0);
    }

    #[test]
    fn lounges_defer_to_class_policy() {
        for kind in [
            LoungeKind::MeetingRoom,
            LoungeKind::Cafeteria,
            LoungeKind::Default,
        ] {
            let d = decide(
                CellClass::Lounge(kind),
                false,
                pred(PredictionLevel::CellAggregate, Some(1)),
            );
            assert_eq!(d, ReservationDecision::ClassPolicy);
        }
    }
}
