// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The §6.4 summary dispatcher.
//!
//! Given a mobile portable's three-level prediction and the class of its
//! current cell, decide what kind of advance reservation to make:
//!
//! 1. next-predicted-cell from the **portable profile** ⇒ reserve there;
//! 2. otherwise by **cell class**:
//!    * *office*: a neighbouring office the user occupies ⇒ reserve
//!      there; the user occupies *this* office ⇒ no reservation (they are
//!      expected to stay; the neighbours' `B_dyn` pools cover surprises);
//!      otherwise aggregate history;
//!    * *corridor*: occupant office ⇒ reserve there; otherwise aggregate
//!      history;
//!    * *lounges*: the class's slot-driven policy (meeting calendar,
//!      cafeteria least-squares, default one-step + probabilistic) sizes
//!      an aggregate claim instead of per-portable claims;
//! 3. nothing to go on ⇒ the default (probabilistic) algorithm.

use arm_net::ids::CellId;
use arm_profiles::prediction::{Prediction, PredictionLevel};
use arm_profiles::CellClass;

/// What the §6.4 dispatcher tells the resource manager to do for one
/// mobile portable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservationDecision {
    /// Reserve this portable's connection floors in the named cell.
    PerConnection(CellId),
    /// Make no per-portable reservation (occupant staying put).
    NoReservation,
    /// The current cell's class-level (aggregate) policy covers it.
    ClassPolicy,
    /// No usable information: fall back to the default probabilistic
    /// reservation algorithm.
    DefaultAlgorithm,
}

/// Run the dispatcher.
///
/// `is_occupant_of_current` — is the portable a regular occupant of its
/// *current* cell (meaningful when that cell is an office)?
pub fn decide(
    current_class: CellClass,
    is_occupant_of_current: bool,
    prediction: Prediction,
) -> ReservationDecision {
    // Rule 1: the portable's own profile always wins.
    if prediction.level == PredictionLevel::PortableProfile {
        return ReservationDecision::PerConnection(
            prediction
                .cell
                .expect("invariant: level-1 prediction has a cell"),
        );
    }
    match current_class {
        CellClass::Office => {
            match prediction.level {
                // Rule 2(office).1: neighbouring office occupancy.
                PredictionLevel::OccupantOffice => ReservationDecision::PerConnection(
                    prediction
                        .cell
                        .expect("invariant: occupant prediction has a cell"),
                ),
                // Rule 2(office).2: the portable belongs here.
                _ if is_occupant_of_current => ReservationDecision::NoReservation,
                // Rule 2(office).3: aggregate history.
                PredictionLevel::CellAggregate => ReservationDecision::PerConnection(
                    prediction
                        .cell
                        .expect("invariant: aggregate prediction has a cell"),
                ),
                _ => ReservationDecision::DefaultAlgorithm,
            }
        }
        CellClass::Corridor => match prediction.level {
            PredictionLevel::OccupantOffice | PredictionLevel::CellAggregate => {
                ReservationDecision::PerConnection(
                    prediction.cell.expect("invariant: prediction has a cell"),
                )
            }
            _ => ReservationDecision::DefaultAlgorithm,
        },
        CellClass::Lounge(_) => ReservationDecision::ClassPolicy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_profiles::LoungeKind;

    fn pred(level: PredictionLevel, cell: Option<u32>) -> Prediction {
        Prediction {
            cell: cell.map(CellId),
            level,
        }
    }

    #[test]
    fn portable_profile_beats_everything() {
        for class in [
            CellClass::Office,
            CellClass::Corridor,
            CellClass::Lounge(LoungeKind::MeetingRoom),
        ] {
            let d = decide(class, true, pred(PredictionLevel::PortableProfile, Some(9)));
            assert_eq!(d, ReservationDecision::PerConnection(CellId(9)));
        }
    }

    #[test]
    fn office_occupant_stays_put() {
        let d = decide(
            CellClass::Office,
            true,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::NoReservation);
        // Even with an aggregate prediction available, an occupant of the
        // current office makes no advance reservation.
        let d = decide(
            CellClass::Office,
            true,
            pred(PredictionLevel::CellAggregate, Some(4)),
        );
        assert_eq!(d, ReservationDecision::NoReservation);
    }

    #[test]
    fn office_visitor_with_own_office_next_door() {
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::OccupantOffice, Some(3)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(3)));
    }

    #[test]
    fn office_stranger_uses_aggregate_then_default() {
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::CellAggregate, Some(7)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(7)));
        let d = decide(
            CellClass::Office,
            false,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::DefaultAlgorithm);
    }

    #[test]
    fn corridor_rules() {
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::OccupantOffice, Some(2)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(2)));
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::CellAggregate, Some(5)),
        );
        assert_eq!(d, ReservationDecision::PerConnection(CellId(5)));
        let d = decide(
            CellClass::Corridor,
            false,
            pred(PredictionLevel::Default, None),
        );
        assert_eq!(d, ReservationDecision::DefaultAlgorithm);
    }

    #[test]
    fn lounges_defer_to_class_policy() {
        for kind in [
            LoungeKind::MeetingRoom,
            LoungeKind::Cafeteria,
            LoungeKind::Default,
        ] {
            let d = decide(
                CellClass::Lounge(kind),
                false,
                pred(PredictionLevel::CellAggregate, Some(1)),
            );
            assert_eq!(d, ReservationDecision::ClassPolicy);
        }
    }
}
