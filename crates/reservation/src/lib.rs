// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-reservation — advance resource reservation (§6)
//!
//! "Advanced resource reservation is based \[on\] two factors: (a)
//! prediction of the next cell of a mobile user, and (b) aggregate
//! handoff activity of cells." Prediction lives in `arm-profiles`; this
//! crate supplies the per-class reservation *policies* plus the paper's
//! baselines:
//!
//! * [`dispatch`] — the §6.4 summary algorithm: route each mobile
//!   portable's reservation decision through the three-level prediction
//!   and the current cell's class,
//! * [`meeting`] — the booking-calendar meeting-room algorithm
//!   (§6.2.1): arrival-count-driven reservation in the room from
//!   `T_s − Δ_s`, departure-driven reservation in the neighbours from
//!   `T_a − Δ_a`, with the 5/15-minute release timers,
//! * [`cafeteria`] — the least-squares linear predictor over the last
//!   three slots (§6.2.2),
//! * [`default_cell`] — the one-step-memory predictor (§6.2.3),
//! * [`probabilistic`] — the binomial look-ahead algorithm (§6.3, eqns
//!   3–7): keep the handoff-drop probability below `P_QOS` over the
//!   window `[t, t+T]`,
//! * [`baselines`] — brute-force neighbourhood reservation, aggregate
//!   history-weighted reservation, and static fixed-fraction
//!   reservation, the comparison points of §7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cafeteria;
pub mod default_cell;
pub mod dispatch;
pub mod meeting;
pub mod probabilistic;

pub use dispatch::{decide, ReservationDecision};
pub use meeting::{BookingCalendar, Meeting, MeetingRoomPolicy};
pub use probabilistic::{ProbabilisticConfig, ProbabilisticReservation};
