//! The meeting-room reservation algorithm (§6.2.1).
//!
//! A meeting room's profile includes a *booking calendar*; each meeting
//! specifies a start time `T_s`, stop time `T_a`, and expected attendance
//! `N_m`. The policy:
//!
//! * **(a) arrivals** — from `T_s − Δ_s` (Δ_s = 10 min in the paper's
//!   simulations) the room advance-reserves for `N_m` attendees and
//!   counts arrivals; at any time the reservation covers
//!   `N_m − N_arrived(t)`. Five minutes after `T_s` a timer releases
//!   whatever is still unused (no-shows).
//! * **(b) departures** — from `T_a − Δ_a` (Δ_a = 5 min) the room asks
//!   its neighbours to reserve for the leaving attendees, sized by the
//!   attendees still present; fifteen minutes after `T_a` the neighbours
//!   release what remains. (The paper words the neighbour demand as
//!   `N_m − N_left(t)`; we size it from the attendees actually present,
//!   `min(N_m, N_arrived) − N_left`, since no-show reservations were
//!   already released by timer (a) and cannot leave the room.)
//!
//! The policy is queried, not scheduled: the resource manager calls
//! [`MeetingRoomPolicy::room_demand`] / [`neighbor_demand`] whenever it
//! refreshes claims, and reports arrivals/departures as they happen.
//! Timers therefore need no event plumbing — they are implied by `now`.
//!
//! [`neighbor_demand`]: MeetingRoomPolicy::neighbor_demand

use arm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One calendar entry.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Meeting {
    /// Scheduled start `T_s`.
    pub t_start: SimTime,
    /// Scheduled end `T_a`.
    pub t_end: SimTime,
    /// Expected attendance `N_m` ("currently, we specify N_m in terms of
    /// the number of users").
    pub expected: u32,
}

/// The room's booking calendar (non-overlapping, time-sorted).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BookingCalendar {
    meetings: Vec<Meeting>,
}

impl BookingCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Book a meeting; panics if it overlaps an existing booking
    /// (including the surrounding reservation windows would be a policy
    /// choice; we require plain non-overlap of `[T_s, T_a]`).
    pub fn book(&mut self, m: Meeting) {
        assert!(m.t_end > m.t_start, "meeting must have positive duration");
        for ex in &self.meetings {
            assert!(
                m.t_end <= ex.t_start || m.t_start >= ex.t_end,
                "overlapping booking"
            );
        }
        self.meetings.push(m);
        self.meetings.sort_by_key(|m| m.t_start);
    }

    /// All bookings in start order.
    pub fn meetings(&self) -> &[Meeting] {
        &self.meetings
    }

    /// The booking whose extended window (`T_s − δ_before` to
    /// `T_a + δ_after`) contains `now`.
    pub fn active(
        &self,
        now: SimTime,
        before: SimDuration,
        after: SimDuration,
    ) -> Option<(usize, &Meeting)> {
        self.meetings
            .iter()
            .enumerate()
            .find(|(_, m)| now >= m.t_start.saturating_sub(before) && now <= m.t_end + after)
    }
}

/// Timer configuration (paper values as defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeetingTimers {
    /// Δ_s: how long before `T_s` arrival reservations begin (10 min).
    pub delta_s: SimDuration,
    /// Release-unused timer after `T_s` (5 min).
    pub release_start: SimDuration,
    /// Δ_a: how long before `T_a` neighbour reservations begin (5 min).
    pub delta_a: SimDuration,
    /// Neighbour release timer after `T_a` (15 min).
    pub release_end: SimDuration,
}

impl Default for MeetingTimers {
    fn default() -> Self {
        MeetingTimers {
            delta_s: SimDuration::from_mins(10),
            release_start: SimDuration::from_mins(5),
            delta_a: SimDuration::from_mins(5),
            release_end: SimDuration::from_mins(15),
        }
    }
}

/// The per-room policy state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MeetingRoomPolicy {
    calendar: BookingCalendar,
    timers: MeetingTimers,
    /// Bandwidth to reserve per expected user (kbps) — the §7.1 workload
    /// mean, 0.75·16 + 0.25·64 = 28 kbps, unless configured otherwise.
    per_user_kbps: f64,
    /// Meeting index the counters refer to.
    counting_for: Option<usize>,
    n_arrived: u32,
    n_left: u32,
}

impl MeetingRoomPolicy {
    /// A policy over a calendar with the paper's timer values.
    pub fn new(calendar: BookingCalendar, per_user_kbps: f64) -> Self {
        MeetingRoomPolicy {
            calendar,
            timers: MeetingTimers::default(),
            per_user_kbps,
            counting_for: None,
            n_arrived: 0,
            n_left: 0,
        }
    }

    /// Override the timers.
    pub fn with_timers(mut self, timers: MeetingTimers) -> Self {
        self.timers = timers;
        self
    }

    /// The calendar.
    pub fn calendar(&self) -> &BookingCalendar {
        &self.calendar
    }

    /// Arrivals counted for the current meeting.
    pub fn n_arrived(&self) -> u32 {
        self.n_arrived
    }

    /// Departures counted for the current meeting.
    pub fn n_left(&self) -> u32 {
        self.n_left
    }

    /// Which meeting is in its extended window at `now`, resetting the
    /// counters when the active meeting changes.
    fn sync(&mut self, now: SimTime) -> Option<Meeting> {
        let active = self
            .calendar
            .active(now, self.timers.delta_s, self.timers.release_end);
        match active {
            Some((idx, m)) => {
                if self.counting_for != Some(idx) {
                    self.counting_for = Some(idx);
                    self.n_arrived = 0;
                    self.n_left = 0;
                }
                Some(*m)
            }
            None => {
                self.counting_for = None;
                None
            }
        }
    }

    /// Report a portable entering the room at `now`.
    pub fn on_arrival(&mut self, now: SimTime) {
        if self.sync(now).is_some() {
            self.n_arrived += 1;
        }
    }

    /// Report a portable leaving the room at `now`.
    pub fn on_departure(&mut self, now: SimTime) {
        if self.sync(now).is_some() {
            self.n_left += 1;
        }
    }

    /// Bandwidth (kbps) the room should hold in advance for attendees
    /// still expected at `now` — rule (a).
    pub fn room_demand(&mut self, now: SimTime) -> f64 {
        let Some(m) = self.sync(now) else {
            return 0.0;
        };
        let window_start = m.t_start.saturating_sub(self.timers.delta_s);
        let release_at = m.t_start + self.timers.release_start;
        if now < window_start || now >= release_at {
            return 0.0;
        }
        let outstanding = m.expected.saturating_sub(self.n_arrived);
        f64::from(outstanding) * self.per_user_kbps
    }

    /// Bandwidth (kbps) the room should ask its neighbours to hold for
    /// departing attendees at `now` — rule (b). The caller splits this
    /// across neighbours using the cell profile's transition row.
    pub fn neighbor_demand(&mut self, now: SimTime) -> f64 {
        let Some(m) = self.sync(now) else {
            return 0.0;
        };
        let window_start = m.t_end.saturating_sub(self.timers.delta_a);
        let release_at = m.t_end + self.timers.release_end;
        if now < window_start || now >= release_at {
            return 0.0;
        }
        let present = self.n_arrived.min(m.expected).saturating_sub(self.n_left);
        f64::from(present) * self.per_user_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meeting() -> Meeting {
        Meeting {
            t_start: SimTime::from_mins(60),
            t_end: SimTime::from_mins(110),
            expected: 35,
        }
    }

    fn policy() -> MeetingRoomPolicy {
        let mut cal = BookingCalendar::new();
        cal.book(meeting());
        MeetingRoomPolicy::new(cal, 28.0)
    }

    #[test]
    fn room_demand_window() {
        let mut p = policy();
        // Before T_s − 10 min: nothing.
        assert_eq!(p.room_demand(SimTime::from_mins(49)), 0.0);
        // Inside the window: full expected attendance.
        assert_eq!(p.room_demand(SimTime::from_mins(50)), 35.0 * 28.0);
        // Arrivals shrink the outstanding reservation.
        for _ in 0..20 {
            p.on_arrival(SimTime::from_mins(55));
        }
        assert_eq!(p.room_demand(SimTime::from_mins(56)), 15.0 * 28.0);
        // The 5-minute release timer after T_s clears no-shows.
        assert_eq!(p.room_demand(SimTime::from_mins(64)), 15.0 * 28.0);
        assert_eq!(p.room_demand(SimTime::from_mins(65)), 0.0);
    }

    #[test]
    fn more_arrivals_than_expected_clamp_at_zero() {
        let mut p = policy();
        for _ in 0..40 {
            p.on_arrival(SimTime::from_mins(55));
        }
        assert_eq!(p.room_demand(SimTime::from_mins(56)), 0.0);
    }

    #[test]
    fn neighbor_demand_window() {
        let mut p = policy();
        for _ in 0..30 {
            p.on_arrival(SimTime::from_mins(55));
        }
        // Before T_a − 5 min: nothing.
        assert_eq!(p.neighbor_demand(SimTime::from_mins(104)), 0.0);
        // In the window: everyone still present may leave.
        assert_eq!(p.neighbor_demand(SimTime::from_mins(105)), 30.0 * 28.0);
        // Departures shrink it.
        for _ in 0..10 {
            p.on_departure(SimTime::from_mins(111));
        }
        assert_eq!(p.neighbor_demand(SimTime::from_mins(112)), 20.0 * 28.0);
        // The 15-minute release timer after T_a clears the rest.
        assert_eq!(p.neighbor_demand(SimTime::from_mins(124)), 20.0 * 28.0);
        assert_eq!(p.neighbor_demand(SimTime::from_mins(125)), 0.0);
    }

    #[test]
    fn counters_reset_between_meetings() {
        let mut cal = BookingCalendar::new();
        cal.book(meeting());
        cal.book(Meeting {
            t_start: SimTime::from_mins(200),
            t_end: SimTime::from_mins(250),
            expected: 10,
        });
        let mut p = MeetingRoomPolicy::new(cal, 28.0);
        for _ in 0..35 {
            p.on_arrival(SimTime::from_mins(55));
        }
        assert_eq!(p.n_arrived(), 35);
        // The second meeting's window: counters start fresh.
        assert_eq!(p.room_demand(SimTime::from_mins(195)), 10.0 * 28.0);
        assert_eq!(p.n_arrived(), 0);
    }

    #[test]
    fn arrivals_outside_any_window_are_ignored() {
        let mut p = policy();
        p.on_arrival(SimTime::from_mins(10));
        assert_eq!(p.n_arrived(), 0);
    }

    #[test]
    #[should_panic(expected = "overlapping booking")]
    fn overlapping_bookings_rejected() {
        let mut cal = BookingCalendar::new();
        cal.book(meeting());
        cal.book(Meeting {
            t_start: SimTime::from_mins(100),
            t_end: SimTime::from_mins(130),
            expected: 5,
        });
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_meeting_rejected() {
        let mut cal = BookingCalendar::new();
        cal.book(Meeting {
            t_start: SimTime::from_mins(10),
            t_end: SimTime::from_mins(10),
            expected: 5,
        });
    }
}
