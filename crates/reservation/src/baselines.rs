//! The comparison baselines of §7.
//!
//! * **Brute force** — "reserves resources for an application in all the
//!   neighboring cells of its current cell" \[7\]. Conservative and, as
//!   §7.1 shows, wasteful once load grows.
//! * **Aggregate** — "advance reservation based on aggregation of
//!   previous handoffs from a cell to its neighbors": each portable's
//!   demand is spread over the neighbours proportionally to the cell
//!   profile's transition probabilities.
//! * **Static** — a fixed fraction of every cell's capacity is set aside
//!   for handoffs regardless of state (the strawman the default
//!   algorithm is compared against in \[12\]).
//!
//! All three produce, from the same inputs, a map *cell → bandwidth to
//! advance-reserve*, which the resource manager installs as aggregate
//! claims.

use std::collections::BTreeMap;

use arm_net::ids::CellId;

/// One mobile portable's reservation demand: where it is and the total
/// guaranteed bandwidth (kbps) of its ongoing connections.
#[derive(Clone, Copy, Debug)]
pub struct MobileDemand {
    /// The portable's current cell.
    pub cell: CellId,
    /// Sum of `b_min` over its live connections.
    pub floor_kbps: f64,
}

/// Brute force: every portable's floor is reserved in *every* neighbour
/// of its current cell.
pub fn brute_force(
    demands: &[MobileDemand],
    neighbors: &dyn Fn(CellId) -> Vec<CellId>,
) -> BTreeMap<CellId, f64> {
    let mut out = BTreeMap::new();
    for d in demands {
        for n in neighbors(d.cell) {
            *out.entry(n).or_insert(0.0) += d.floor_kbps;
        }
    }
    out
}

/// Aggregate: every portable's floor is spread over the neighbours
/// proportionally to the current cell's handoff transition row. Cells
/// with an empty row (no history) fall back to an even spread.
pub fn aggregate(
    demands: &[MobileDemand],
    neighbors: &dyn Fn(CellId) -> Vec<CellId>,
    transition_row: &dyn Fn(CellId) -> BTreeMap<CellId, f64>,
) -> BTreeMap<CellId, f64> {
    let mut out = BTreeMap::new();
    for d in demands {
        let ns = neighbors(d.cell);
        if ns.is_empty() {
            continue;
        }
        let row = transition_row(d.cell);
        let known: f64 = ns.iter().filter_map(|n| row.get(n)).sum();
        for n in &ns {
            let p = if known > 0.0 {
                row.get(n).copied().unwrap_or(0.0) / known
            } else {
                1.0 / ns.len() as f64
            };
            if p > 0.0 {
                *out.entry(*n).or_insert(0.0) += d.floor_kbps * p;
            }
        }
    }
    out
}

/// Static: reserve `fraction` of each listed cell's capacity, always.
pub fn static_fraction(cells: &[(CellId, f64)], fraction: f64) -> BTreeMap<CellId, f64> {
    assert!((0.0..=1.0).contains(&fraction));
    cells.iter().map(|(c, cap)| (*c, cap * fraction)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(i: u32) -> CellId {
        CellId(i)
    }

    /// A triangle: 0–1, 0–2, 1–2.
    fn tri_neighbors(c: CellId) -> Vec<CellId> {
        match c.0 {
            0 => vec![cid(1), cid(2)],
            1 => vec![cid(0), cid(2)],
            _ => vec![cid(0), cid(1)],
        }
    }

    #[test]
    fn brute_force_reserves_everywhere() {
        let demands = [
            MobileDemand {
                cell: cid(0),
                floor_kbps: 64.0,
            },
            MobileDemand {
                cell: cid(1),
                floor_kbps: 16.0,
            },
        ];
        let out = brute_force(&demands, &tri_neighbors);
        // Cell 1 gets 64 (from the portable at 0); cell 2 gets 64 + 16;
        // cell 0 gets 16 (from the portable at 1).
        assert_eq!(out[&cid(0)], 16.0);
        assert_eq!(out[&cid(1)], 64.0);
        assert_eq!(out[&cid(2)], 80.0);
        // Total reservation is demand × neighbour count — the waste the
        // paper calls out.
        let total: f64 = out.values().sum();
        assert_eq!(total, (64.0 + 16.0) * 2.0);
    }

    #[test]
    fn aggregate_follows_the_transition_row() {
        let demands = [MobileDemand {
            cell: cid(0),
            floor_kbps: 100.0,
        }];
        let row = |c: CellId| -> BTreeMap<CellId, f64> {
            if c == cid(0) {
                [(cid(1), 0.8), (cid(2), 0.2)].into_iter().collect()
            } else {
                BTreeMap::new()
            }
        };
        let out = aggregate(&demands, &tri_neighbors, &row);
        assert!((out[&cid(1)] - 80.0).abs() < 1e-9);
        assert!((out[&cid(2)] - 20.0).abs() < 1e-9);
        // Aggregate reserves exactly the demand, not neighbour-count
        // times it.
        let total: f64 = out.values().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_without_history_spreads_evenly() {
        let demands = [MobileDemand {
            cell: cid(0),
            floor_kbps: 100.0,
        }];
        let empty = |_c: CellId| BTreeMap::new();
        let out = aggregate(&demands, &tri_neighbors, &empty);
        assert!((out[&cid(1)] - 50.0).abs() < 1e-9);
        assert!((out[&cid(2)] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_renormalises_partial_rows() {
        // The row may mention cells that are not neighbours (stale
        // history); only the neighbour mass counts, renormalised.
        let demands = [MobileDemand {
            cell: cid(0),
            floor_kbps: 60.0,
        }];
        let row = |_c: CellId| -> BTreeMap<CellId, f64> {
            [(cid(1), 0.3), (cid(9), 0.7)].into_iter().collect()
        };
        let out = aggregate(&demands, &tri_neighbors, &row);
        assert!((out[&cid(1)] - 60.0).abs() < 1e-9);
        assert!(!out.contains_key(&cid(9)));
    }

    #[test]
    fn static_fraction_is_state_independent() {
        let out = static_fraction(&[(cid(0), 1600.0), (cid(1), 800.0)], 0.1);
        assert_eq!(out[&cid(0)], 160.0);
        assert_eq!(out[&cid(1)], 80.0);
    }

    #[test]
    #[should_panic]
    fn static_fraction_rejects_bad_fraction() {
        static_fraction(&[(cid(0), 100.0)], 1.5);
    }
}
