//! Property-based tests for the reservation algorithms.

use arm_net::ids::CellId;
use arm_reservation::baselines::{aggregate, brute_force, static_fraction, MobileDemand};
use arm_reservation::cafeteria::{least_squares_params, predict_next, CafeteriaPredictor};
use arm_reservation::meeting::{BookingCalendar, Meeting, MeetingRoomPolicy};
use arm_reservation::probabilistic::{
    binom_pmf, ProbabilisticConfig, ProbabilisticReservation, TypeState,
};
use arm_sim::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Binomial pmfs are distributions with the right mean.
    #[test]
    fn binom_pmf_is_a_distribution(n in 0u32..80, p in 0.0f64..1.0) {
        let pmf = binom_pmf(n, p);
        prop_assert_eq!(pmf.len(), n as usize + 1);
        let sum: f64 = pmf.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let mean: f64 = pmf.iter().enumerate().map(|(k, q)| k as f64 * q).sum();
        prop_assert!((mean - f64::from(n) * p).abs() < 1e-6);
        prop_assert!(pmf.iter().all(|q| *q >= -1e-15));
    }

    /// P_nb is a probability, decreasing in every admitted count and in
    /// the neighbour population.
    #[test]
    fn nonblocking_prob_properties(
        window in 0.01f64..0.5,
        n1 in 0u32..30,
        s1 in 0u32..30,
        n2 in 0u32..6,
        s2 in 0u32..6,
    ) {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(window, 0.01));
        let types = |n1, s1, n2, s2| vec![
            TypeState { b_min: 1.0, mu: 5.0, n_current: n1, s_neighbor: s1 },
            TypeState { b_min: 4.0, mu: 4.0, n_current: n2, s_neighbor: s2 },
        ];
        let t = types(n1, s1, n2, s2);
        let p = solver.nonblocking_prob(&t, &[n1, n2]);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        // One more admitted type-1 connection can only hurt.
        let p_more = solver.nonblocking_prob(&t, &[n1 + 1, n2]);
        prop_assert!(p_more <= p + 1e-12);
        // A larger neighbour population can only hurt.
        let t2 = types(n1, s1 + 5, n2, s2);
        let p_crowded = solver.nonblocking_prob(&t2, &[n1, n2]);
        prop_assert!(p_crowded <= p + 1e-12);
    }

    /// `max_admissible` always meets eqn 6 and is component-maximal.
    #[test]
    fn max_admissible_is_valid_and_maximal(
        window in 0.02f64..0.3,
        p_qos in 0.005f64..0.2,
        n1 in 0u32..20,
        s1 in 0u32..20,
    ) {
        let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(window, p_qos));
        let types = vec![
            TypeState { b_min: 1.0, mu: 5.0, n_current: n1, s_neighbor: s1 },
            TypeState { b_min: 4.0, mu: 4.0, n_current: 1, s_neighbor: 1 },
        ];
        let n = solver.max_admissible(&types);
        prop_assert!(n[0] >= n1 && n[1] >= 1);
        // Current population may already break the target (it is a lower
        // bound); only check eqn 6 when we actually grew.
        if n[0] > n1 || n[1] > 1 {
            prop_assert!(
                solver.nonblocking_prob(&types, &n) >= 1.0 - p_qos - 1e-9
            );
        }
        let resv = solver.reserved_bandwidth(&types, &n);
        prop_assert!(resv >= -1e-9);
        prop_assert!(resv <= solver.cfg.capacity + 1e-9);
    }

    /// The closed-form least squares always matches the textbook fit and
    /// extrapolates any exact line exactly.
    #[test]
    fn least_squares_fits_lines(a in -5.0f64..5.0, m in 0.0f64..50.0, t in 2.0f64..100.0) {
        let n0 = a * (t - 2.0) + m;
        let n1 = a * (t - 1.0) + m;
        let n2 = a * t + m;
        let (ga, gm) = least_squares_params(n0, n1, n2, t);
        prop_assert!((ga - a).abs() < 1e-6, "slope {ga} vs {a}");
        prop_assert!((gm - m).abs() < 1e-5, "intercept {gm} vs {m}");
        let pred = predict_next(n0, n1, n2, t);
        let truth = (a * (t + 1.0) + m).max(0.0);
        prop_assert!((pred - truth).abs() < 1e-5);
    }

    /// The sliding predictor never yields negative handoff counts.
    #[test]
    fn cafeteria_predictor_is_nonnegative(samples in prop::collection::vec(0.0f64..40.0, 0..30)) {
        let mut p = CafeteriaPredictor::new();
        for s in samples {
            p.observe(s);
            prop_assert!(p.predict() >= 0.0);
        }
    }

    /// Brute force reserves exactly demand × neighbour-count; aggregate
    /// conserves exactly the demand.
    #[test]
    fn baseline_conservation(
        demands in prop::collection::vec((0u32..5, 0.1f64..100.0), 1..10),
        n_cells in 2usize..6,
    ) {
        let neighbors = move |c: CellId| -> Vec<CellId> {
            (0..n_cells as u32).filter(|i| *i != c.0).map(CellId).collect()
        };
        let ds: Vec<MobileDemand> = demands
            .iter()
            .map(|(c, f)| MobileDemand {
                cell: CellId(c % n_cells as u32),
                floor_kbps: *f,
            })
            .collect();
        let bf = brute_force(&ds, &neighbors);
        let bf_total: f64 = bf.values().sum();
        let want: f64 = ds.iter().map(|d| d.floor_kbps * (n_cells - 1) as f64).sum();
        prop_assert!((bf_total - want).abs() < 1e-6);

        let rows = |_c: CellId| BTreeMap::new();
        let ag = aggregate(&ds, &neighbors, &rows);
        let ag_total: f64 = ag.values().sum();
        let demand_total: f64 = ds.iter().map(|d| d.floor_kbps).sum();
        prop_assert!((ag_total - demand_total).abs() < 1e-6);

        let cells: Vec<(CellId, f64)> =
            (0..n_cells as u32).map(|i| (CellId(i), 1600.0)).collect();
        let st = static_fraction(&cells, 0.1);
        prop_assert!(st.values().all(|v| (*v - 160.0).abs() < 1e-9));
    }

    /// Meeting-policy demands are always nonnegative and bounded by the
    /// booked attendance, whatever the arrival/departure sequence.
    #[test]
    fn meeting_demands_bounded(
        expected in 1u32..60,
        arrivals in 0u32..80,
        departures in 0u32..80,
        query_min in 0u64..200,
    ) {
        let mut cal = BookingCalendar::new();
        cal.book(Meeting {
            t_start: SimTime::from_mins(60),
            t_end: SimTime::from_mins(110),
            expected,
        });
        let mut p = MeetingRoomPolicy::new(cal, 28.0);
        for _ in 0..arrivals {
            p.on_arrival(SimTime::from_mins(55));
        }
        for _ in 0..departures {
            p.on_departure(SimTime::from_mins(111));
        }
        let q = SimTime::from_mins(query_min);
        let room = p.room_demand(q);
        let neigh = p.neighbor_demand(q);
        prop_assert!(room >= 0.0 && neigh >= 0.0);
        prop_assert!(room <= f64::from(expected) * 28.0 + 1e-9);
        prop_assert!(neigh <= f64::from(expected) * 28.0 + 1e-9);
    }
}
