//! The repo must pass its own domain lints.
//!
//! This is satellite discipline for `cargo xtask check`: every finding
//! the lint pass can produce was fixed (or explicitly audited) when the
//! pass landed, and this test keeps the tree at zero findings so CI
//! failures always point at the offending diff, never at pre-existing
//! noise.

use std::path::Path;

use arm_check::lints::run_lints;

#[test]
fn workspace_is_lint_clean() {
    // crates/check/ -> crates/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check sits two levels below the workspace root");
    let findings = run_lints(root).expect("lint walk succeeds");
    assert!(
        findings.is_empty(),
        "domain lint findings in the tree:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
