//! A small Rust lexer for the domain lints.
//!
//! `arm-check` cannot use `syn` (the workspace builds offline and vendors
//! only what the simulator needs), so the lint rules run over a token
//! stream produced here instead of a full AST. The lexer understands
//! everything that matters for *not lying about source structure* —
//! line/block comments (nested), string/raw-string/byte-string/char
//! literals, lifetimes vs. char literals — and degrades the rest of the
//! language to identifiers, numbers, and single-character punctuation.
//! Every token carries its source line so findings are clickable.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `partial_cmp`, `b_min`, …).
    Ident(String),
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime(String),
    /// String literal, with quotes stripped and escapes left raw.
    Str(String),
    /// Char or byte literal (contents unexamined).
    Char,
    /// Numeric literal (contents kept for sign/zero checks).
    Num(String),
    /// Single punctuation character (`.`, `(`, `#`, `!`, …).
    Punct(char),
    /// Line (`//…`) or block (`/* … */`) comment, full text.
    Comment(String),
}

/// A token plus the 1-indexed line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-indexed source line of the token's first character.
    pub line: u32,
}

impl SpannedTok {
    /// Is this token the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Lex `src` into spanned tokens. Comments are *kept* (rules use them
/// for `arm-check: allow(...)` escapes); whitespace is dropped.
pub fn lex(src: &str) -> Vec<SpannedTok> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let mut j = i;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Comment(b[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if j + 1 < n && b[j] == '/' && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == '*' && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Comment(b[i..j.min(n)].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let (s, j, nl) = scan_string(&b, i + 1);
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (tok, j, nl) = scan_prefixed_string(&b, i);
                out.push(SpannedTok {
                    tok,
                    line: start_line,
                });
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime (`'ident` not followed by a closing quote) or
                // char literal.
                if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        // 'a' — a char literal after all.
                        out.push(SpannedTok {
                            tok: Tok::Char,
                            line: start_line,
                        });
                        i = j + 1;
                    } else {
                        out.push(SpannedTok {
                            tok: Tok::Lifetime(b[i + 1..j].iter().collect()),
                            line: start_line,
                        });
                        i = j;
                    }
                } else {
                    // '\n', '\'', 'x' … scan to the closing quote.
                    let mut j = i + 1;
                    while j < n && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    out.push(SpannedTok {
                        tok: Tok::Char,
                        line: start_line,
                    });
                    i = (j + 1).min(n);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(b[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || b[j] == '.' && {
                            // `1.0` yes, `1.max(…)` no: a digit must follow.
                            j + 1 < n && b[j + 1].is_ascii_digit()
                        })
                {
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Num(b[i..j].iter().collect()),
                    line: start_line,
                });
                i = j;
            }
            c => {
                out.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does `b[i..]` start a raw string (`r"`, `r#"`), byte string (`b"`),
/// or raw byte string (`br"`, `br#"`)? Mere identifiers starting with
/// `r`/`b` must fall through to the ident path.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < n && b[j] == '"' {
            return true;
        }
    }
    if j < n && b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
        return j < n && b[j] == '"';
    }
    false
}

/// Scan a `"`-opened (non-raw) string starting *after* the quote.
/// Returns (contents, index past closing quote, newlines consumed).
fn scan_string(b: &[char], mut j: usize) -> (String, usize, u32) {
    let n = b.len();
    let mut s = String::new();
    let mut nl = 0u32;
    while j < n && b[j] != '"' {
        if b[j] == '\\' && j + 1 < n {
            s.push(b[j]);
            s.push(b[j + 1]);
            if b[j + 1] == '\n' {
                nl += 1;
            }
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            nl += 1;
        }
        s.push(b[j]);
        j += 1;
    }
    (s, (j + 1).min(n), nl)
}

/// Scan a raw/byte/raw-byte string whose prefix starts at `i`.
fn scan_prefixed_string(b: &[char], i: usize) -> (Tok, usize, u32) {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = j < n && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    let start = j;
    let mut nl = 0u32;
    if raw {
        // Scan for `"` followed by `hashes` hash marks; no escapes.
        'outer: while j < n {
            if b[j] == '\n' {
                nl += 1;
            }
            if b[j] == '"' {
                let mut k = 0usize;
                while k < hashes {
                    if j + 1 + k >= n || b[j + 1 + k] != '#' {
                        j += 1;
                        continue 'outer;
                    }
                    k += 1;
                }
                let s: String = b[start..j].iter().collect();
                return (Tok::Str(s), j + 1 + hashes, nl);
            }
            j += 1;
        }
        (Tok::Str(b[start..n.min(j)].iter().collect()), n, nl)
    } else {
        let (s, end, nl) = scan_string(b, start);
        (Tok::Str(s), end, nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // partial_cmp in a comment
            /* unwrap in /* nested */ block */
            let s = "expect(\"inside a string\") .partial_cmp";
            let r = r#"panic! in a raw "string" too"#;
            x.total_cmp(&y);
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"total_cmp".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "a")));
        assert!(toks.iter().any(|t| t.tok == Tok::Char));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nunwrap";
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 6);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let toks = lex("1.0_f64.max(0.0); 2.max(x)");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Num(s) if s == "1.0_f64")));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Num(s) if s == "2")));
    }
}
