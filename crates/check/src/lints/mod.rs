//! The domain lint pass.
//!
//! Machine-checked repo policy: the recurring footgun classes PRs 1–2
//! fixed by hand (NaN-unsafe orderings, panics in library code, rate
//! clamps that lose the `b_min` floor, allocation mutations that forget
//! to invalidate the resident [`IncrementalMaxmin`] cache) are enforced
//! here at `cargo xtask check` time. Rules run over the token stream of
//! every library source file in the six domain crates, with `#[cfg(test)]`
//! regions masked out.
//!
//! Escapes are explicit and audited: an `expect`/`panic!` whose message
//! starts with `invariant:` or `precondition:` is sanctioned (PR 1's
//! panic-audit convention), and any rule can be suppressed for one line
//! with a justified comment:
//!
//! ```text
//! // arm-check: allow(no-panic) — poisoned mutex means a prior panic
//! ```
//!
//! A suppression without a justification text is itself a finding.
//!
//! [`IncrementalMaxmin`]: ../../arm_qos/maxmin/incremental/struct.IncrementalMaxmin.html

mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::lexer::{self, SpannedTok, Tok};

/// The library crates the lint pass covers. Only `bench` is out: the
/// bench harness is not shipped logic. The simulator kernel (`sim`) was
/// originally excluded as owning its own panic discipline (audited in
/// PR 1); that audit is now encoded in `invariant:`/`precondition:`
/// expect prefixes and inline allows, so the lint pass pins it too.
pub const TARGET_CRATES: &[&str] = &[
    "qos",
    "net",
    "core",
    "reservation",
    "profiles",
    "mobility",
    "sim",
    "obs",
    "server",
];

/// Files whose *pub* mutation surface must satisfy the full
/// `marks-dirty` call-graph rule (every public fn that reaches a raw
/// ledger mutator must be annotated `#[arm_attrs::marks_dirty]` and
/// reach an engine invalidation method).
const MARKS_DIRTY_SURFACE: &[&str] = &["crates/core/src/manager.rs"];

/// One lint violation.
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (`no-panic`, `total-cmp`, `clamp-floor`, `marks-dirty`,
    /// `must-use-outcome`, `bad-allow`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// arm-check: allow(rule) — reason` directive.
#[derive(Clone, Debug)]
struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// A function item found by the item scanner.
#[derive(Clone, Debug)]
pub(crate) struct FnInfo {
    pub name: String,
    pub line: u32,
    pub is_pub: bool,
    /// Carries `#[arm_attrs::marks_dirty]` (or bare `#[marks_dirty]`).
    pub marks_dirty: bool,
    /// Token index range of the body, empty for bodyless trait fns.
    pub body: std::ops::Range<usize>,
}

/// A `pub struct`/`pub enum` item (for the `must-use-outcome` rule).
#[derive(Clone, Debug)]
pub(crate) struct TypeInfo {
    pub name: String,
    pub line: u32,
    pub must_use: bool,
}

/// Everything the rules need to know about one source file.
pub(crate) struct FileCtx {
    /// Workspace-relative path string.
    pub rel: String,
    /// Comment-free token stream.
    pub code: Vec<SpannedTok>,
    /// Per-token mask: true inside `#[cfg(test)]` / `#[test]` items.
    pub test_mask: Vec<bool>,
    /// Does the full `marks-dirty` surface rule apply here?
    pub dirty_surface: bool,
    pub fns: Vec<FnInfo>,
    pub types: Vec<TypeInfo>,
    allows: Vec<Allow>,
}

impl FileCtx {
    /// Is a finding of `rule` at `line` suppressed by a justified allow
    /// directive on the same or the immediately preceding line?
    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.has_reason && (a.line == line || a.line + 1 == line))
    }

    /// Iterate allow directives as `(rule, line, has_reason)`.
    pub(crate) fn allows(&self) -> impl Iterator<Item = (String, u32, bool)> + '_ {
        self.allows
            .iter()
            .map(|a| (a.rule.clone(), a.line, a.has_reason))
    }

    /// Emit `finding` into `out` unless suppressed.
    pub fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        if !self.allowed(rule, line) {
            out.push(Finding {
                rule,
                file: self.rel.clone(),
                line,
                message,
            });
        }
    }
}

/// Run every lint rule over the target crates under `root` (the
/// workspace directory). Findings come back sorted by file and line.
pub fn run_lints(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in TARGET_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            if is_test_file(&rel) {
                continue;
            }
            let text = fs::read_to_string(&f)?;
            let ctx = analyze(&rel, &text);
            rules::run_all(&ctx, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Files compiled only under `cfg(test)` (included via `#[cfg(test)]
/// mod …;` in their parent): the scanner cannot see the parent's gate,
/// so they are skipped by name convention.
fn is_test_file(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    name == "tests.rs" || name.ends_with("_tests.rs")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lex and pre-analyze one file: strip comments into allow directives,
/// compute the `cfg(test)` mask, and catalogue items.
pub(crate) fn analyze(rel: &str, text: &str) -> FileCtx {
    let all = lexer::lex(text);
    let mut code = Vec::with_capacity(all.len());
    let mut allows = Vec::new();
    for t in all {
        if let Tok::Comment(c) = &t.tok {
            if let Some(a) = parse_allow(c, t.line) {
                allows.push(a);
            }
        } else {
            code.push(t);
        }
    }
    let test_mask = test_mask(&code);
    let (fns, types) = scan_items(&code);
    FileCtx {
        rel: rel.to_string(),
        code,
        test_mask,
        dirty_surface: MARKS_DIRTY_SURFACE.contains(&rel),
        fns,
        types,
        allows,
    }
}

fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find("arm-check: allow(")?;
    let rest = &comment[at + "arm-check: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '—', '-', ':', '–'])
        .trim();
    Some(Allow {
        line,
        rule,
        has_reason: !reason.is_empty(),
    })
}

/// Mark every token belonging to a `#[cfg(test)]`- or `#[test]`-gated
/// item (attributes included, through the item's closing brace or
/// semicolon).
fn test_mask(code: &[SpannedTok]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (idents, attr_end) = attr_idents(code, i + 1);
            let is_test = (idents.iter().any(|s| s == "cfg") && idents.iter().any(|s| s == "test"))
                || idents == ["test"];
            if is_test {
                // Skip any further attributes, then the item itself.
                let mut j = attr_end;
                while j < code.len()
                    && code[j].is_punct('#')
                    && code.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = attr_idents(code, j + 1).1;
                }
                let end = item_end(code, j);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Collect the identifiers of an attribute whose `[` is at `open`;
/// returns (idents, index past the closing `]`).
fn attr_idents(code: &[SpannedTok], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j + 1);
                }
            }
            Tok::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, code.len())
}

/// Index one past the end of the item starting at `i`: the first
/// top-level `;`, or the matching brace of the first top-level `{`.
fn item_end(code: &[SpannedTok], i: usize) -> usize {
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut j = i;
    while j < code.len() {
        match code[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => brack += 1,
            Tok::Punct(']') => brack -= 1,
            Tok::Punct(';') if paren == 0 && brack == 0 => return j + 1,
            Tok::Punct('{') if paren == 0 && brack == 0 => {
                return match_brace(code, j) + 1;
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(code: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < code.len() {
        match code[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Linear item scanner: catalogues fns (with bodies skipped over) and
/// pub types, descending into `mod`/`impl`/`trait` bodies.
fn scan_items(code: &[SpannedTok]) -> (Vec<FnInfo>, Vec<TypeInfo>) {
    let mut fns = Vec::new();
    let mut types = Vec::new();
    let mut pending_attr_idents: Vec<String> = Vec::new();
    let mut saw_pub = false;
    let mut i = 0usize;
    while i < code.len() {
        match &code[i].tok {
            Tok::Punct('#') if code.get(i + 1).is_some_and(|t| t.is_punct('[')) => {
                let (idents, end) = attr_idents(code, i + 1);
                pending_attr_idents.extend(idents);
                i = end;
            }
            Tok::Ident(s) if s == "pub" => {
                saw_pub = true;
                i += 1;
                // Skip a `(crate)`-style visibility qualifier.
                if code.get(i).is_some_and(|t| t.is_punct('(')) {
                    let mut depth = 0i32;
                    while i < code.len() {
                        match code[i].tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(s) if s == "fn" => {
                let name = match code.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => String::new(),
                };
                let line = code[i].line;
                let end = item_end(code, i);
                // The body is the brace block, if any, inside [i, end).
                let body = body_range(code, i, end);
                fns.push(FnInfo {
                    name,
                    line,
                    is_pub: saw_pub,
                    marks_dirty: pending_attr_idents.iter().any(|a| a == "marks_dirty"),
                    body,
                });
                pending_attr_idents.clear();
                saw_pub = false;
                i = end;
            }
            Tok::Ident(s) if s == "struct" || s == "enum" || s == "union" => {
                let name = match code.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => String::new(),
                };
                if saw_pub {
                    types.push(TypeInfo {
                        name,
                        line: code[i].line,
                        must_use: pending_attr_idents.iter().any(|a| a == "must_use"),
                    });
                }
                pending_attr_idents.clear();
                saw_pub = false;
                i = item_end(code, i);
            }
            Tok::Ident(s) if s == "impl" || s == "mod" || s == "trait" => {
                // Descend into the body: advance just past its `{`.
                pending_attr_idents.clear();
                saw_pub = false;
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < code.len() {
                    match code[j].tok {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct(';') if paren == 0 => break,
                        Tok::Punct('{') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            }
            Tok::Punct(';') | Tok::Punct('}') | Tok::Punct('{') => {
                pending_attr_idents.clear();
                saw_pub = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (fns, types)
}

/// The token range of the brace-delimited body of the item spanning
/// `[start, end)`, or an empty range for bodyless items.
fn body_range(code: &[SpannedTok], start: usize, end: usize) -> std::ops::Range<usize> {
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut j = start;
    while j < end {
        match code[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => brack += 1,
            Tok::Punct(']') => brack -= 1,
            Tok::Punct(';') if paren == 0 && brack == 0 => return 0..0,
            Tok::Punct('{') if paren == 0 && brack == 0 => return j..end,
            _ => {}
        }
        j += 1;
    }
    0..0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let ctx = analyze("crates/qos/src/x.rs", src);
        let mut out = Vec::new();
        rules::run_all(&ctx, &mut out);
        out
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r#"
            pub fn lib_code(x: f64) -> f64 { x.max(0.0) }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let v: Option<u32> = None; v.unwrap(); }
            }
        "#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let f = findings("pub fn f(v: Option<u32>) -> u32 { v.unwrap() }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
    }

    #[test]
    fn invariant_expect_is_sanctioned() {
        let src = r#"pub fn f(v: Option<u32>) -> u32 {
            v.expect("invariant: caller registered the id")
        }"#;
        assert!(findings(src).is_empty());
        let src = r#"pub fn f(v: Option<u32>) -> u32 { v.expect("oops") }"#;
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn justified_allow_suppresses_unjustified_does_not() {
        let ok = r#"pub fn f(v: Option<u32>) -> u32 {
            // arm-check: allow(no-panic) — poisoned lock implies prior panic
            v.unwrap()
        }"#;
        assert!(findings(ok).is_empty());
        let bad = r#"pub fn f(v: Option<u32>) -> u32 {
            // arm-check: allow(no-panic)
            v.unwrap()
        }"#;
        let f = findings(bad);
        assert!(f.iter().any(|x| x.rule == "no-panic"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "bad-allow"), "{f:?}");
    }

    #[test]
    fn partial_cmp_call_flagged_definition_not() {
        let f = findings("fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert!(f.iter().any(|x| x.rule == "total-cmp"), "{f:?}");
        let def = r#"
            impl PartialOrd for K {
                fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                    Some(self.cmp(other))
                }
            }
        "#;
        assert!(findings(def).is_empty(), "{:?}", findings(def));
    }

    #[test]
    fn naked_rate_clamp_flagged_floored_not() {
        let f = findings("pub fn f(rate: f64, hi: f64) -> f64 { rate.clamp(0.0, hi) }");
        assert!(f.iter().any(|x| x.rule == "clamp-floor"), "{f:?}");
        let ok = "pub fn f(rate: f64, b_min: f64, hi: f64) -> f64 { rate.clamp(b_min, hi) }";
        assert!(findings(ok).is_empty());
        // Non-rate receivers (probabilities etc.) are out of scope.
        let prob = "pub fn f(loss: f64) -> f64 { loss.clamp(0.0, 0.999) }";
        assert!(findings(prob).is_empty());
    }

    #[test]
    fn set_conn_rate_expression_needs_floor() {
        let f = findings("fn f(net: &mut N) { net.set_conn_rate(id, x * 0.5).ok(); }");
        assert!(f.iter().any(|x| x.rule == "clamp-floor"), "{f:?}");
        let ok = "fn f(net: &mut N) { net.set_conn_rate(id, grant.max(b_min)).ok(); }";
        assert!(findings(ok).is_empty());
        // A lone identifier is a trusted pre-clamped binding.
        let lone = "fn f(net: &mut N) { net.set_conn_rate(id, target).ok(); }";
        assert!(findings(lone).is_empty());
    }

    #[test]
    fn annotated_fn_must_reach_a_mark() {
        let bad = r#"
            impl M {
                #[arm_attrs::marks_dirty]
                pub fn admit(&mut self) { self.net.reserve(); }
            }
        "#;
        let f = findings(bad);
        assert!(f.iter().any(|x| x.rule == "marks-dirty"), "{f:?}");
        let ok = r#"
            impl M {
                #[arm_attrs::marks_dirty]
                pub fn admit(&mut self) { self.net.reserve(); self.mark_conn_dirty(id); }
            }
        "#;
        assert!(findings(ok).is_empty(), "{:?}", findings(ok));
        // Indirect via another annotated fn is fine too.
        let via = r#"
            impl M {
                #[arm_attrs::marks_dirty]
                pub fn admit(&mut self) { self.inner(); }
                #[arm_attrs::marks_dirty]
                fn inner(&mut self) { self.mark_link_dirty(l); }
            }
        "#;
        assert!(findings(via).is_empty(), "{:?}", findings(via));
    }

    #[test]
    fn pub_outcome_type_needs_must_use() {
        let f = findings("pub struct FooOutcome { pub x: f64 }");
        assert!(f.iter().any(|x| x.rule == "must-use-outcome"), "{f:?}");
        let ok = "#[must_use]\npub struct FooOutcome { pub x: f64 }";
        assert!(findings(ok).is_empty());
    }

    #[test]
    fn manager_surface_rule_requires_annotation() {
        let src = r#"
            impl M {
                pub fn mutate(&mut self) { self.net.set_conn_rate(id, b_min).ok(); }
            }
        "#;
        let ctx = analyze("crates/core/src/manager.rs", src);
        let mut out = Vec::new();
        rules::run_all(&ctx, &mut out);
        assert!(out.iter().any(|x| x.rule == "marks-dirty"), "{out:?}");
    }
}
