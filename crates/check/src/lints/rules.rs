//! The individual lint rules.
//!
//! Each rule is a function over a [`FileCtx`]; `run_all` is the entry
//! point. To add a rule: write the `fn`, call it from `run_all`, name it
//! in `RULES`, document it in `DESIGN.md` §8, and seed a known-bad
//! source snippet in `lints::tests` proving the rule fires.

use std::collections::{BTreeMap, BTreeSet};

use super::{FileCtx, Finding};
use crate::lexer::{SpannedTok, Tok};

/// Every rule slug, for `--list` style output and allow validation.
pub const RULES: &[&str] = &[
    "no-panic",
    "total-cmp",
    "clamp-floor",
    "marks-dirty",
    "must-use-outcome",
    "bad-allow",
];

/// The `IncrementalMaxmin` invalidation methods (and the manager's
/// wrappers around them) that satisfy the `marks-dirty` rule.
const MARK_METHODS: &[&str] = &[
    "mark_conn_dirty",
    "mark_link_dirty",
    "touch_link",
    "sync_network",
    "upsert_conn",
    "remove_conn",
    "set_link_excess",
    "remove_link",
];

/// Raw ledger mutators: reaching one of these from a public fn on the
/// marks-dirty surface requires the `#[arm_attrs::marks_dirty]`
/// annotation plus a reachable mark method.
const RAW_MUTATORS: &[&str] = &["reserve_route", "release_route", "set_conn_rate"];

/// Identifier fragments that classify a receiver as allocation/rate
/// typed for the `clamp-floor` rule.
const RATE_WORDS: &[&str] = &[
    "rate",
    "alloc",
    "grant",
    "b_current",
    "b_granted",
    "kbps",
    "bandwidth",
];

/// Run every rule on one analyzed file.
pub fn run_all(ctx: &FileCtx, out: &mut Vec<Finding>) {
    no_panic(ctx, out);
    total_cmp(ctx, out);
    clamp_floor(ctx, out);
    marks_dirty(ctx, out);
    must_use_outcome(ctx, out);
    bad_allow(ctx, out);
}

fn ident_at(code: &[SpannedTok], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn str_at(code: &[SpannedTok], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s),
        _ => None,
    }
}

fn sanctioned(msg: &str) -> bool {
    msg.starts_with("invariant:") || msg.starts_with("precondition:")
}

/// `no-panic`: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test library code, except panics documenting
/// an `invariant:`/`precondition:` (PR 1's audited convention).
fn no_panic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let line = code[i].line;
        match ident_at(code, i) {
            Some(m @ ("unwrap" | "expect"))
                if i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                if m == "expect" && str_at(code, i + 2).is_some_and(sanctioned) {
                    continue;
                }
                ctx.push(
                    out,
                    "no-panic",
                    line,
                    format!(
                        ".{m}() in library code — return a typed error \
                         (ControlError/BadParameter), or document the panic \
                         as `invariant:`/`precondition:` in the expect message"
                    ),
                );
            }
            Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if code.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                if matches!(m, "panic" | "unreachable")
                    && str_at(code, i + 3).is_some_and(sanctioned)
                {
                    continue;
                }
                ctx.push(
                    out,
                    "no-panic",
                    line,
                    format!(
                        "{m}! in library code — return a typed error, or start \
                         the message with `invariant:`/`precondition:`"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// `total-cmp`: rate-typed `f64` ordering must use `total_cmp` (PR 2's
/// NaN-ordering sweep, kept from regressing). Any `.partial_cmp(` or
/// `::partial_cmp(` call in non-test code is flagged; `fn partial_cmp`
/// *definitions* (PartialOrd impls) are not.
fn total_cmp(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        if ident_at(code, i) == Some("partial_cmp")
            && i > 0
            && (code[i - 1].is_punct('.') || code[i - 1].is_punct(':'))
        {
            ctx.push(
                out,
                "total-cmp",
                code[i].line,
                "partial_cmp on f64 is NaN-unsound — use total_cmp \
                 (or sort on an integer key)"
                    .to_string(),
            );
        }
    }
}

/// `clamp-floor`: allocation-typed values must be floored at `b_min`
/// (or an explicit named floor), never at a bare zero/negative literal,
/// and rate expressions fed to `set_conn_rate` must carry their floor
/// visibly.
fn clamp_floor(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let line = code[i].line;
        // Prong 1: `<rate-ish>.clamp(0.0, …)` / `.clamp(-x, …)`.
        if ident_at(code, i) == Some("clamp")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let first_arg_zero = match code.get(i + 2).map(|t| &t.tok) {
                Some(Tok::Num(n)) => n.starts_with('0'),
                Some(Tok::Punct('-')) => true,
                _ => false,
            };
            if first_arg_zero && receiver_is_rate(code, i - 1) {
                ctx.push(
                    out,
                    "clamp-floor",
                    line,
                    "rate-typed clamp with a zero/negative floor — allocation \
                     boundaries must floor at b_min"
                        .to_string(),
                );
            }
        }
        // Prong 2: `set_conn_rate(conn, <expr>)` where `<expr>` is a
        // compound expression with no visible floor. A lone identifier
        // is accepted as a pre-clamped binding.
        if ident_at(code, i) == Some("set_conn_rate")
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            // A `fn set_conn_rate(...)` definition is not a call site.
            && !(i > 0 && code[i - 1].is_ident("fn"))
        {
            if let Some(arg) = second_arg(code, i + 1) {
                let compound = arg.len() > 1;
                let floored = arg.iter().any(|t| {
                    matches!(&t.tok, Tok::Ident(s)
                        if s == "b_min" || s == "max" || s == "clamp" || s == "floor")
                });
                if compound && !floored {
                    ctx.push(
                        out,
                        "clamp-floor",
                        line,
                        "set_conn_rate with a compound rate expression and no \
                         visible b_min floor — clamp the rate (e.g. \
                         `.max(b_min)`) or bind it to a named, pre-clamped \
                         local first"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Does the expression ending just before the `.` at `dot` read like an
/// allocation/rate value? Checks the receiver identifier, or for a
/// parenthesised receiver, every identifier inside it.
fn receiver_is_rate(code: &[SpannedTok], dot: usize) -> bool {
    let is_rate = |s: &str| {
        let ls = s.to_ascii_lowercase();
        RATE_WORDS.iter().any(|w| ls.contains(w))
    };
    if dot == 0 {
        return false;
    }
    match &code[dot - 1].tok {
        Tok::Ident(s) => is_rate(s),
        Tok::Punct(')') => {
            // Scan back to the matching `(` and look at the idents inside.
            let mut depth = 0i32;
            let mut j = dot - 1;
            loop {
                match code[j].tok {
                    Tok::Punct(')') => depth += 1,
                    Tok::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            code[j..dot]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if is_rate(s)))
        }
        _ => false,
    }
}

/// The token slice of the second top-level argument of the call whose
/// `(` is at `open`.
fn second_arg(code: &[SpannedTok], open: usize) -> Option<&[SpannedTok]> {
    let mut depth = 0i32;
    let mut j = open;
    let mut comma_at: Option<usize> = None;
    while j < code.len() {
        match code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return comma_at.map(|c| &code[c + 1..j]);
                }
            }
            Tok::Punct(',') if depth == 1 && comma_at.is_none() => comma_at = Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// `marks-dirty`: the cache-invalidation discipline of the resident
/// incremental maxmin engine, as a call-graph rule.
///
/// (a) Every fn annotated `#[arm_attrs::marks_dirty]` must reach an
///     engine mark method through local calls.
/// (b) On the declared mutation surface (`manager.rs`), every public fn
///     that reaches a raw ledger mutator must carry the annotation —
///     so new mutation entry points cannot silently skip invalidation.
fn marks_dirty(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let fns = &ctx.fns;
    if fns.is_empty() {
        return;
    }
    let names: BTreeSet<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    // Per-fn: idents in body, restricted to interesting sets.
    let mut calls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut direct_mark: BTreeMap<&str, bool> = BTreeMap::new();
    let mut direct_mut: BTreeMap<&str, bool> = BTreeMap::new();
    for f in fns {
        let body = &ctx.code[f.body.clone()];
        let mut local: BTreeSet<&str> = BTreeSet::new();
        let mut dm = false;
        let mut dmu = false;
        for t in body {
            if let Tok::Ident(s) = &t.tok {
                if MARK_METHODS.contains(&s.as_str()) {
                    dm = true;
                }
                if RAW_MUTATORS.contains(&s.as_str()) {
                    dmu = true;
                }
                if let Some(n) = names.get(s.as_str()) {
                    local.insert(n);
                }
            }
        }
        calls.entry(f.name.as_str()).or_default().extend(local);
        *direct_mark.entry(f.name.as_str()).or_default() |= dm;
        *direct_mut.entry(f.name.as_str()).or_default() |= dmu;
    }
    let reaches = |start: &str, direct: &BTreeMap<&str, bool>| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            if direct.get(f).copied().unwrap_or(false) {
                return true;
            }
            if let Some(cs) = calls.get(f) {
                stack.extend(cs.iter().copied());
            }
        }
        false
    };
    for f in fns {
        if f.body.is_empty() {
            continue;
        }
        if f.marks_dirty && !reaches(&f.name, &direct_mark) {
            ctx.push(
                out,
                "marks-dirty",
                f.line,
                format!(
                    "`{}` is annotated #[arm_attrs::marks_dirty] but no mark \
                     method (mark_conn_dirty/mark_link_dirty/…) is reachable \
                     from its body",
                    f.name
                ),
            );
        }
        if ctx.dirty_surface && f.is_pub && !f.marks_dirty && reaches(&f.name, &direct_mut) {
            ctx.push(
                out,
                "marks-dirty",
                f.line,
                format!(
                    "public fn `{}` reaches a raw ledger mutator \
                     (reserve_route/release_route/set_conn_rate) without \
                     #[arm_attrs::marks_dirty] — annotate it and invalidate \
                     the incremental engine",
                    f.name
                ),
            );
        }
    }
}

/// `must-use-outcome`: public result-like types (`…Outcome`,
/// `…Rejection`) must be `#[must_use]` so admission verdicts are never
/// silently dropped.
fn must_use_outcome(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &ctx.types {
        if (t.name.ends_with("Outcome") || t.name.ends_with("Rejection")) && !t.must_use {
            ctx.push(
                out,
                "must-use-outcome",
                t.line,
                format!("pub type `{}` is a verdict — mark it #[must_use]", t.name),
            );
        }
    }
}

/// `bad-allow`: every `arm-check: allow(...)` must name a real rule and
/// carry a justification after the closing parenthesis.
fn bad_allow(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for a in ctx.allows() {
        if !RULES.contains(&a.0.as_str()) {
            out.push(Finding {
                rule: "bad-allow",
                file: ctx.rel.clone(),
                line: a.1,
                message: format!("allow names unknown rule `{}`", a.0),
            });
        } else if !a.2 {
            out.push(Finding {
                rule: "bad-allow",
                file: ctx.rel.clone(),
                line: a.1,
                message: "allow directive without a justification — add a \
                          reason after the closing parenthesis"
                    .to_string(),
            });
        }
    }
}
