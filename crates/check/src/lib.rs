//! `arm-check`: the workspace's static verification layer.
//!
//! Three prongs, driven by `cargo xtask check`:
//!
//! 1. **Domain lints** ([`lints`]) — a token-stream walker (the
//!    workspace vendors no `syn`, so [`lexer`] provides a purpose-built
//!    Rust lexer) over every library crate, enforcing the invariants
//!    that generic tooling cannot know: `total_cmp` on rate-typed
//!    floats, no unsanctioned panics in protocol code, the `b_min`
//!    floor at allocation clamps, and the dirty-mark discipline of the
//!    incremental maxmin engine via `#[arm_attrs::marks_dirty]`.
//! 2. **Bounded model checking** ([`model`]) — the distributed maxmin
//!    and round-trip admission protocols as explicit transition
//!    systems, exhaustively explored over all interleavings on small
//!    topologies, with minimal counterexample traces on failure.
//! 3. **CI gates** — miri, sanitizers, `cargo-deny`, clippy: wired in
//!    `.github/workflows/ci.yml`, not here.
//!
//! See `DESIGN.md` §8 for the rule catalogue and how to add a rule.

pub mod lexer;
pub mod lints;
pub mod model;
