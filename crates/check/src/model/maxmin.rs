//! Explicit transition system of the distributed maxmin protocol.
//!
//! A faithful re-statement of `arm_qos::maxmin::distributed` — the
//! serialized ADVERTISE/UPDATE explicit-rate protocol (§5.3.1, after
//! Charny's ABR allocation scheme) — with its nondeterminism reified as
//! checker actions:
//!
//! * the interleaving of the two ADVERTISE packets' hop deliveries
//!   within a phase,
//! * the arrival order of the initial `ChangeExcess` events,
//! * bounded control-plane loss (PR 1's fault hooks): any in-flight
//!   ADVERTISE may be dropped while the loss budget lasts, recovered by
//!   the phase-retransmission timer.
//!
//! Deterministic protocol machinery — phase advancement after both
//! packets return, session completion, the refined wake policy, FIFO
//! activation — is folded into action application ([`settle`]), so the
//! state space contains exactly the schedules a real deployment could
//! exhibit.
//!
//! The advertised-rate quote reuses the *production* fixed-point kernel
//! [`advertised_rate_for_iter`], and convergence is judged against the
//! *production* centralized solver [`MaxminProblem::solve`] — the model
//! abstracts time, not arithmetic.
//!
//! Properties:
//! * **invariant** — sessions never exceed 4 phases (Theorem 1's
//!   four-round-trip argument, structurally), rates stay finite and
//!   non-negative (the `b_min` floor in excess-rate space), and the
//!   session count stays bounded (livelock detection);
//! * **at quiescence** — the converged rates equal the centralized
//!   maxmin optimum, and every link's recorded rates sum to at most its
//!   excess capacity (ledger conservation).
//!
//! [`advertised_rate_for_iter`]: arm_qos::maxmin::advertised::advertised_rate_for_iter
//! [`MaxminProblem::solve`]: arm_qos::maxmin::centralized::MaxminProblem

use std::collections::BTreeMap;

use arm_net::ids::{ConnId, LinkId};
use arm_qos::maxmin::advertised::advertised_rate_for_iter;
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};

use super::TransitionSystem;

/// Rate agreement tolerance, mirroring the production protocol.
const TOL: f64 = 1e-7;

/// Known-bad protocol variants the checker must catch (see module docs
/// of [`super`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaxminMutant {
    /// The correct protocol.
    #[default]
    None,
    /// The UPDATE handler skips the recorded-rate/bottleneck-set
    /// recomputation on every link except the initiator's: downstream
    /// switches keep quoting from stale recorded rates, so the network
    /// either converges to a non-maxmin allocation, overcommits a link,
    /// or livelocks re-adapting. Theorem 1's proof leans exactly on
    /// this recomputation.
    SkipUpdateRecompute,
}

/// An f64 rate with total order and exact equality, so protocol states
/// are `Ord` keys. All rates here are finite and non-negative, where
/// bit order equals numeric order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct R(u64);

impl R {
    fn new(x: f64) -> Self {
        debug_assert!(
            x.is_finite() && x >= 0.0,
            "precondition: rate {x} must be finite and non-negative"
        );
        R(x.to_bits())
    }
    fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl std::fmt::Debug for R {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Which way a packet travels along the route (index order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Dir {
    /// Toward route index 0.
    Up,
    /// Toward the last route index.
    Down,
}

/// Outbound toward the route end, or bouncing back to the initiator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Leg {
    Out,
    Back,
}

/// One of the session's two ADVERTISE packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Pkt {
    /// In flight: next delivery at route position `pos`.
    Flight { pos: u8, leg: Leg, stamped: R },
    /// Returned to the initiator carrying its final stamp.
    Returned(R),
    /// Killed by fault injection; awaits the retransmission timer.
    Dropped,
}

/// The active four-round-trip adaptation process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Sess {
    origin: u8,
    conn: u8,
    phase: u8,
    up: Pkt,
    down: Pkt,
}

/// Full protocol state (everything mutable; topology lives in
/// [`MaxminSystem`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct St {
    /// Current excess per link (0 until its `ChangeExcess` fires).
    excess: Vec<R>,
    /// Initial `ChangeExcess` events not yet delivered.
    unfired: Vec<bool>,
    /// Recorded (last UPDATEd) rate per `[link][conn]`.
    recorded: Vec<Vec<R>>,
    /// Bottleneck set `M(l)` per link, as a conn bitmask.
    bottleneck: Vec<u8>,
    /// Source-visible converged excess rate per connection.
    rates: Vec<R>,
    active: Option<Sess>,
    /// FIFO of queued (origin, conn) processes, deduplicated.
    pending: Vec<(u8, u8)>,
    /// A wake-up arrived for the active session; rerun on completion.
    active_restart: bool,
    /// Adaptation processes run so far (livelock bound).
    sessions: u16,
    /// Remaining fault-injection drops.
    losses_left: u8,
}

/// A ≤3-link / ≤4-connection instance of the distributed maxmin
/// protocol plus checker configuration.
#[derive(Clone, Debug)]
pub struct MaxminSystem {
    /// Final excess capacity per link (delivered by `ChangeExcess`).
    pub link_excess: Vec<f64>,
    /// Route (link indices) per connection.
    pub routes: Vec<Vec<u8>>,
    /// Excess demand `b_max − b_min` per connection.
    pub demands: Vec<f64>,
    /// Total ADVERTISE drops the checker may inject.
    pub loss_budget: u8,
    /// Sessions allowed before declaring livelock.
    pub max_sessions: u16,
    /// Seeded fault, if any.
    pub mutant: MaxminMutant,
}

impl MaxminSystem {
    /// A well-formed instance with sane defaults (no loss, no mutant).
    pub fn new(link_excess: Vec<f64>, routes: Vec<Vec<u8>>, demands: Vec<f64>) -> Self {
        assert!(link_excess.len() <= 3, "precondition: at most 3 links");
        assert!(routes.len() <= 4, "precondition: at most 4 connections");
        assert_eq!(routes.len(), demands.len());
        for r in &routes {
            assert!(!r.is_empty(), "precondition: routes must be non-empty");
            for l in r {
                assert!((*l as usize) < link_excess.len());
            }
        }
        MaxminSystem {
            link_excess,
            routes,
            demands,
            loss_budget: 0,
            max_sessions: 200,
            mutant: MaxminMutant::None,
        }
    }

    /// Checker-injected control-plane loss (bounded).
    pub fn with_loss_budget(mut self, drops: u8) -> Self {
        self.loss_budget = drops;
        self
    }

    /// Install a known-bad handler variant.
    pub fn with_mutant(mut self, m: MaxminMutant) -> Self {
        self.mutant = m;
        self
    }

    fn n_links(&self) -> usize {
        self.link_excess.len()
    }

    fn n_conns(&self) -> usize {
        self.routes.len()
    }

    /// Connections traversing link `l`.
    fn conns_on(&self, l: u8) -> impl Iterator<Item = u8> + '_ {
        (0..self.n_conns() as u8).filter(move |c| self.routes[*c as usize].contains(&l))
    }

    /// The rate link `l` quotes to `subject` — the production
    /// advertised-rate kernel over the model's recorded rates, with the
    /// subject never classified restricted.
    fn mu_for(&self, st: &St, l: u8, subject: u8) -> f64 {
        let others = || {
            self.conns_on(l)
                .filter(move |c| *c != subject)
                .map(|c| st.recorded[l as usize][c as usize].get())
        };
        advertised_rate_for_iter(st.excess[l as usize].get(), others().count(), others)
    }

    /// Queue an adaptation process (origin, conn), as
    /// `DistributedMaxmin::request_session`.
    fn request_session(&self, st: &mut St, origin: u8, conn: u8) {
        if let Some(s) = &st.active {
            if (s.origin, s.conn) == (origin, conn) {
                st.active_restart = true;
                return;
            }
        }
        if !st.pending.contains(&(origin, conn)) {
            st.pending.push((origin, conn));
        }
    }

    /// The refined variant's wake policy at link `l`: only connections
    /// whose rate can actually change.
    fn wake_inconsistent(&self, st: &mut St, l: u8, exclude: Option<u8>) {
        let candidates: Vec<u8> = self
            .conns_on(l)
            .filter(|c| {
                let r = st.recorded[l as usize][*c as usize].get();
                let demand = self.demands[*c as usize];
                let mu = self.mu_for(st, l, *c);
                (r < mu - TOL && r < demand - TOL) || r > mu + TOL
            })
            .collect();
        for c in candidates {
            if Some(c) != exclude {
                self.request_session(st, l, c);
            }
        }
    }

    /// Launch (or relaunch) the active session's current phase: stamp
    /// the initiator's quote and put both packets in flight.
    fn launch_phase(&self, st: &mut St) {
        let s = st
            .active
            .clone()
            .expect("invariant: launch with active session");
        let route = &self.routes[s.conn as usize];
        let pos = route
            .iter()
            .position(|l| *l == s.origin)
            .expect("invariant: origin on route") as u8;
        let n = route.len() as u8;
        let stamped = R::new(
            self.mu_for(st, s.origin, s.conn)
                .min(self.demands[s.conn as usize])
                .max(0.0),
        );
        let up = Pkt::Flight {
            pos,
            leg: if pos == 0 { Leg::Back } else { Leg::Out },
            stamped,
        };
        let down = Pkt::Flight {
            pos,
            leg: if pos + 1 == n { Leg::Back } else { Leg::Out },
            stamped,
        };
        let s = st.active.as_mut().expect("invariant: checked above");
        s.up = up;
        s.down = down;
    }

    /// Deliver one hop of the active session's `dir` packet: `M(l)`
    /// maintenance, stamp clamping, and movement (mirrors
    /// `process_advertise` + `forward`).
    fn deliver(&self, st: &mut St, dir: Dir) {
        let s = st
            .active
            .clone()
            .expect("invariant: deliver needs a session");
        let (mut pos, leg, mut stamped) = match (dir, &s.up, &s.down) {
            (Dir::Up, Pkt::Flight { pos, leg, stamped }, _)
            | (Dir::Down, _, Pkt::Flight { pos, leg, stamped }) => (*pos, *leg, *stamped),
            _ => return,
        };
        let route = &self.routes[s.conn as usize];
        let n = route.len() as u8;
        let origin_pos = route
            .iter()
            .position(|l| *l == s.origin)
            .expect("invariant: origin on route") as u8;
        let lid = route[pos as usize];
        // M(l) maintenance + clamp.
        let mu = self.mu_for(st, lid, s.conn);
        if mu <= stamped.get() + TOL {
            st.bottleneck[lid as usize] |= 1 << s.conn;
        } else {
            st.bottleneck[lid as usize] &= !(1 << s.conn);
        }
        if stamped.get() >= mu {
            stamped = R::new(mu.max(0.0));
        }
        // Movement.
        let mut leg = leg;
        let mut arrived = false;
        match (leg, dir) {
            (Leg::Out, Dir::Up) => {
                if pos == 0 {
                    leg = Leg::Back;
                    if pos == origin_pos {
                        arrived = true;
                    } else {
                        pos += 1;
                    }
                } else {
                    pos -= 1;
                }
            }
            (Leg::Out, Dir::Down) => {
                if pos + 1 == n {
                    leg = Leg::Back;
                    if pos == origin_pos {
                        arrived = true;
                    } else {
                        pos -= 1;
                    }
                } else {
                    pos += 1;
                }
            }
            (Leg::Back, Dir::Up) => {
                if pos >= origin_pos {
                    arrived = true;
                } else {
                    pos += 1;
                }
            }
            (Leg::Back, Dir::Down) => {
                if pos <= origin_pos {
                    arrived = true;
                } else {
                    pos -= 1;
                }
            }
        }
        let pkt = if arrived {
            Pkt::Returned(stamped)
        } else {
            Pkt::Flight { pos, leg, stamped }
        };
        let s = st.active.as_mut().expect("invariant: still active");
        match dir {
            Dir::Up => s.up = pkt,
            Dir::Down => s.down = pkt,
        }
        self.settle(st);
    }

    /// Run every deterministic step to exhaustion: phase advances,
    /// session completion (with the UPDATE recompute — or the mutant's
    /// broken version), wake-ups, FIFO activation.
    fn settle(&self, st: &mut St) {
        loop {
            if let Some(s) = st.active.clone() {
                // In flight or dropped: nondeterminism pending.
                let (Pkt::Returned(u), Pkt::Returned(d)) = (s.up, s.down) else {
                    return;
                };
                if s.phase < 4 {
                    let sm = st.active.as_mut().expect("invariant: checked above");
                    sm.phase += 1;
                    self.launch_phase(st);
                    continue;
                }
                // Completion: fix the rate, recompute recorded rates
                // along the route, wake affected connections.
                let rate = u.min(d);
                let old = st.rates[s.conn as usize];
                st.rates[s.conn as usize] = rate;
                st.active = None;
                let changed = (rate.get() - old.get()).abs() > TOL;
                let route = &self.routes[s.conn as usize];
                for l in route {
                    let skip = self.mutant == MaxminMutant::SkipUpdateRecompute && *l != s.origin;
                    if !skip {
                        st.recorded[*l as usize][s.conn as usize] = rate;
                    }
                }
                if changed {
                    for l in route.clone() {
                        self.wake_inconsistent(st, l, Some(s.conn));
                    }
                }
                if st.active_restart {
                    st.active_restart = false;
                    let want = self
                        .mu_for(st, s.origin, s.conn)
                        .min(self.demands[s.conn as usize]);
                    if (rate.get() - want).abs() > TOL {
                        self.request_session(st, s.origin, s.conn);
                    }
                }
                continue;
            }
            // Activate the next queued process, if any.
            if st.pending.is_empty() {
                return;
            }
            let (origin, conn) = st.pending.remove(0);
            st.sessions = st.sessions.saturating_add(1);
            st.active = Some(Sess {
                origin,
                conn,
                phase: 1,
                up: Pkt::Dropped,
                down: Pkt::Dropped,
            });
            st.active_restart = false;
            if st.sessions > self.max_sessions {
                // Leave the over-budget marker for the invariant; no
                // point launching more packets.
                return;
            }
            self.launch_phase(st);
        }
    }

    /// Production-solver oracle over the final capacities.
    fn oracle(&self) -> BTreeMap<ConnId, f64> {
        let mut p = MaxminProblem::default();
        for (i, x) in self.link_excess.iter().enumerate() {
            p.link_excess.insert(LinkId(i as u32), *x);
        }
        for (i, r) in self.routes.iter().enumerate() {
            p.conns.insert(
                ConnId(i as u32),
                ConnDemand {
                    demand: self.demands[i],
                    links: r.iter().map(|l| LinkId(*l as u32)).collect(),
                },
            );
        }
        p.solve()
    }
}

impl TransitionSystem for MaxminSystem {
    type State = St;

    fn initial(&self) -> St {
        St {
            excess: vec![R::new(0.0); self.n_links()],
            unfired: vec![true; self.n_links()],
            recorded: vec![vec![R::new(0.0); self.n_conns()]; self.n_links()],
            bottleneck: vec![0; self.n_links()],
            rates: vec![R::new(0.0); self.n_conns()],
            active: None,
            pending: Vec::new(),
            active_restart: false,
            sessions: 0,
            losses_left: self.loss_budget,
        }
    }

    fn successors(&self, st: &St) -> Vec<(String, St)> {
        let mut out = Vec::new();
        if st.sessions > self.max_sessions {
            // Frozen: the invariant reports the livelock.
            return out;
        }
        // Initial capacity events, in any order.
        for l in 0..self.n_links() {
            if st.unfired[l] {
                let mut next = st.clone();
                next.unfired[l] = false;
                next.excess[l] = R::new(self.link_excess[l].max(0.0));
                self.wake_inconsistent(&mut next, l as u8, None);
                self.settle(&mut next);
                out.push((format!("change-excess L{l}={}", self.link_excess[l]), next));
            }
        }
        if let Some(s) = &st.active {
            // Partial-order reduction: within one session the two
            // ADVERTISE deliveries commute — each writes only its own
            // packet, both read the same (unchanged) recorded rates,
            // and the M(l) bit they set is identical — so their
            // interleaving is unobservable by any property. Once every
            // ChangeExcess has fired and the loss budget is spent there
            // is no event left for a delivery to race against, and one
            // representative order (up first) suffices.
            let reduced = st.unfired.iter().all(|u| !u) && st.losses_left == 0;
            // Hop deliveries, either packet first.
            for (dir, pkt) in [(Dir::Up, &s.up), (Dir::Down, &s.down)] {
                if let Pkt::Flight { pos, .. } = pkt {
                    let lid = self.routes[s.conn as usize][*pos as usize];
                    let mut next = st.clone();
                    self.deliver(&mut next, dir);
                    out.push((
                        format!(
                            "deliver {dir:?} ADVERTISE(C{},phase {}) at L{lid}",
                            s.conn, s.phase
                        ),
                        next,
                    ));
                    if reduced {
                        break;
                    }
                    // Bounded loss: kill this packet instead.
                    if st.losses_left > 0 {
                        let mut next = st.clone();
                        next.losses_left -= 1;
                        let sm = next.active.as_mut().expect("invariant: active cloned");
                        match dir {
                            Dir::Up => sm.up = Pkt::Dropped,
                            Dir::Down => sm.down = Pkt::Dropped,
                        }
                        out.push((
                            format!("DROP {dir:?} ADVERTISE(C{},phase {})", s.conn, s.phase),
                            next,
                        ));
                    }
                }
            }
            // Retransmission timer: fires once the phase is stalled
            // (no packet in flight, at least one dropped).
            let stalled = !matches!(s.up, Pkt::Flight { .. })
                && !matches!(s.down, Pkt::Flight { .. })
                && (s.up == Pkt::Dropped || s.down == Pkt::Dropped);
            if stalled {
                let mut next = st.clone();
                self.launch_phase(&mut next);
                out.push((format!("retransmit phase {} of C{}", s.phase, s.conn), next));
            }
        }
        out
    }

    fn invariant(&self, st: &St) -> Result<(), String> {
        if let Some(s) = &st.active {
            if s.phase > 4 {
                return Err(format!(
                    "session for C{} exceeded 4 round trips (phase {})",
                    s.conn, s.phase
                ));
            }
        }
        if st.sessions > self.max_sessions {
            return Err(format!(
                "protocol did not converge within {} adaptation sessions — livelock",
                self.max_sessions
            ));
        }
        for (i, r) in st.rates.iter().enumerate() {
            let x = r.get();
            if !x.is_finite() || x < -TOL {
                return Err(format!(
                    "C{i} rate {x} escapes [0, demand] — b_min floor violated in excess space"
                ));
            }
            if x > self.demands[i] + TOL {
                return Err(format!("C{i} rate {x} exceeds demand {}", self.demands[i]));
            }
        }
        Ok(())
    }

    fn on_quiescent(&self, st: &St) -> Result<(), String> {
        // Ledger conservation: recorded rates fit the excess capacity.
        for l in 0..self.n_links() {
            let sum: f64 = self
                .conns_on(l as u8)
                .map(|c| st.recorded[l][c as usize].get())
                .sum();
            if sum > st.excess[l].get() + 1e-6 {
                return Err(format!(
                    "ledger conservation violated at L{l}: recorded sum {sum} > excess {}",
                    st.excess[l].get()
                ));
            }
        }
        // Theorem 1: the protocol's fixed point is the maxmin optimum.
        for (c, want) in self.oracle() {
            let got = st.rates[c.0 as usize].get();
            if (got - want).abs() > 1e-6 {
                return Err(format!(
                    "converged rate for C{} is {got}, maxmin optimum is {want}",
                    c.0
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Checker;

    #[test]
    fn single_link_two_conns_verifies() {
        let sys = MaxminSystem::new(vec![10.0], vec![vec![0], vec![0]], vec![100.0, 100.0]);
        let stats = Checker::default().run("maxmin", &sys).expect("verified");
        assert!(stats.quiescent >= 1);
    }

    #[test]
    fn chain_with_cross_traffic_verifies() {
        let sys = MaxminSystem::new(
            vec![10.0, 4.0],
            vec![vec![0, 1], vec![0], vec![1]],
            vec![100.0, 100.0, 100.0],
        );
        Checker::default().run("maxmin", &sys).expect("verified");
    }

    #[test]
    fn loss_budget_still_converges() {
        let sys = MaxminSystem::new(vec![9.0], vec![vec![0], vec![0]], vec![100.0, 100.0])
            .with_loss_budget(2);
        Checker::default().run("maxmin", &sys).expect("verified");
    }

    #[test]
    fn finite_demand_respected() {
        let sys = MaxminSystem::new(vec![12.0], vec![vec![0], vec![0]], vec![2.0, 100.0]);
        Checker::default().run("maxmin", &sys).expect("verified");
    }

    #[test]
    fn update_recompute_mutant_is_caught() {
        let sys = MaxminSystem::new(
            vec![10.0, 4.0],
            vec![vec![0, 1], vec![0], vec![1]],
            vec![100.0, 100.0, 100.0],
        )
        .with_mutant(MaxminMutant::SkipUpdateRecompute);
        let cx = Checker::default()
            .run("maxmin", &sys)
            .expect_err("mutant must fail");
        assert!(
            cx.property.contains("maxmin optimum")
                || cx.property.contains("ledger conservation")
                || cx.property.contains("livelock"),
            "unexpected property: {}",
            cx.property
        );
        assert!(!cx.steps.is_empty(), "trace must replay the schedule");
    }
}
