//! Bounded model checking of the paper's two control protocols.
//!
//! The distributed maxmin ADVERTISE/UPDATE protocol (§5.3.1, Theorem 1)
//! and the Table 2 round-trip admission test are re-stated here as
//! explicit `enum`-typed transition systems ([`maxmin`], [`admission`])
//! and exhaustively explored over *all interleavings* on small
//! topologies (≤3 links, ≤4 connections, bounded control-plane loss).
//! Dynamic tests sample schedules; the checker enumerates them, so a
//! race that a chaos seed would need luck to hit is found (or proven
//! absent) at PR time. Failures come back as minimal counterexample
//! traces ([`Counterexample`]), replayable by reading the step labels.
//!
//! Both models carry *mutant hooks* ([`maxmin::MaxminMutant`],
//! [`admission::AdmissionMutant`]): known-bad variants of the handlers
//! that the checker must catch. They exist to test the checker itself —
//! a verifier that cannot fail its seeded mutants proves nothing.

pub mod admission;
pub mod maxmin;
pub mod sweep;

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use serde::Serialize;

/// A fast non-cryptographic hasher (FxHash-style multiply-rotate) for
/// the visited set. Protocol states are trusted input; SipHash's DoS
/// resistance would only cost time on these `Vec`-heavy keys.
#[derive(Default)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }
    fn write_u16(&mut self, x: u16) {
        self.write_u64(u64::from(x));
    }
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(5) ^ x).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// An explicit-state transition system the checker can explore.
///
/// Implementations fold deterministic protocol steps (phase advances,
/// FIFO activations) into action application, so `successors` yields
/// only genuine nondeterminism: event interleavings and fault choices.
pub trait TransitionSystem {
    /// Explicit state; `Hash + Eq` keys the visited set (`Ord` keeps
    /// successor generation order-insensitive for deterministic runs).
    type State: Clone + Ord + Hash + fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every enabled action as `(label, successor)`. An empty vector
    /// means the state is quiescent.
    fn successors(&self, s: &Self::State) -> Vec<(String, Self::State)>;

    /// Safety property checked on every reached state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Property checked on quiescent states only (convergence /
    /// conservation at fixed point).
    fn on_quiescent(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration statistics for a verified run.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Quiescent (deadlock-free terminal) states reached.
    pub quiescent: usize,
    /// Longest action sequence explored.
    pub depth: usize,
}

/// A minimal (BFS-shortest) trace to a property violation.
#[derive(Clone, Debug, Serialize)]
#[must_use]
pub struct Counterexample {
    /// Which model produced it.
    pub model: String,
    /// The violated property.
    pub property: String,
    /// Action labels from the initial state to the bad state.
    pub steps: Vec<String>,
    /// Debug dump of the violating state.
    pub state: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample [{}]: {}", self.model, self.property)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        write!(f, "  => {}", self.state)
    }
}

/// Breadth-first exhaustive exploration with a state budget.
pub struct Checker {
    /// Abort (as a violation) beyond this many distinct states — the
    /// *bounded* in bounded model checking, and the livelock detector.
    pub max_states: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_states: 2_000_000,
        }
    }
}

impl Checker {
    /// Explore `sys` exhaustively. Returns statistics if every reached
    /// state satisfies the invariant and every quiescent state the
    /// convergence property; otherwise the shortest counterexample.
    pub fn run<T: TransitionSystem>(&self, name: &str, sys: &T) -> Result<Stats, Counterexample> {
        let mut stats = Stats::default();
        // Parallel arrays: state + (parent index, action label).
        let mut arena: Vec<(T::State, usize, String)> = Vec::new();
        let mut index: HashMap<T::State, usize, BuildHasherDefault<FxHasher>> = HashMap::default();
        let mut depth_of: Vec<usize> = Vec::new();

        let init = sys.initial();
        arena.push((init.clone(), usize::MAX, String::new()));
        index.insert(init, 0);
        depth_of.push(0);

        let trace = |arena: &Vec<(T::State, usize, String)>, mut at: usize| -> Vec<String> {
            let mut steps = Vec::new();
            while at != 0 {
                let (_, parent, label) = &arena[at];
                steps.push(label.clone());
                at = *parent;
            }
            steps.reverse();
            steps
        };

        let mut cursor = 0usize;
        while cursor < arena.len() {
            let state = arena[cursor].0.clone();
            let d = depth_of[cursor];
            stats.states += 1;
            stats.depth = stats.depth.max(d);
            if let Err(property) = sys.invariant(&state) {
                return Err(Counterexample {
                    model: name.to_string(),
                    property,
                    steps: trace(&arena, cursor),
                    state: format!("{state:?}"),
                });
            }
            let succs = sys.successors(&state);
            if succs.is_empty() {
                stats.quiescent += 1;
                if let Err(property) = sys.on_quiescent(&state) {
                    return Err(Counterexample {
                        model: name.to_string(),
                        property,
                        steps: trace(&arena, cursor),
                        state: format!("{state:?}"),
                    });
                }
            }
            for (label, next) in succs {
                stats.transitions += 1;
                if !index.contains_key(&next) {
                    if arena.len() >= self.max_states {
                        return Err(Counterexample {
                            model: name.to_string(),
                            property: format!(
                                "state-space budget of {} exceeded — livelock \
                                 or unbounded protocol divergence",
                                self.max_states
                            ),
                            steps: trace(&arena, cursor),
                            state: format!("{state:?}"),
                        });
                    }
                    index.insert(next.clone(), arena.len());
                    arena.push((next, cursor, label));
                    depth_of.push(d + 1);
                }
            }
            cursor += 1;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy counter system: increments up to `top`, invariant `< bad`.
    struct Count {
        top: u32,
        bad: u32,
    }

    impl TransitionSystem for Count {
        type State = u32;
        fn initial(&self) -> u32 {
            0
        }
        fn successors(&self, s: &u32) -> Vec<(String, u32)> {
            if *s < self.top {
                vec![(format!("inc->{}", s + 1), s + 1)]
            } else {
                Vec::new()
            }
        }
        fn invariant(&self, s: &u32) -> Result<(), String> {
            if *s >= self.bad {
                Err(format!("counter reached {s}"))
            } else {
                Ok(())
            }
        }
        fn on_quiescent(&self, s: &u32) -> Result<(), String> {
            if *s == self.top {
                Ok(())
            } else {
                Err("stopped early".to_string())
            }
        }
    }

    #[test]
    fn verifies_safe_system() {
        let stats = Checker::default()
            .run("count", &Count { top: 5, bad: 100 })
            .expect("safe");
        assert_eq!(stats.states, 6);
        assert_eq!(stats.quiescent, 1);
        assert_eq!(stats.depth, 5);
    }

    #[test]
    fn shortest_trace_to_violation() {
        let cx = Checker::default()
            .run("count", &Count { top: 10, bad: 3 })
            .expect_err("must violate");
        assert_eq!(cx.steps, vec!["inc->1", "inc->2", "inc->3"]);
        assert!(cx.property.contains("counter reached 3"));
    }

    #[test]
    fn state_budget_reports_divergence() {
        let cx = Checker { max_states: 4 }
            .run(
                "count",
                &Count {
                    top: 1000,
                    bad: 2000,
                },
            )
            .expect_err("budget");
        assert!(cx.property.contains("budget"), "{}", cx.property);
    }
}
