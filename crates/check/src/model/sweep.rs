//! Exhaustive small-topology sweep for both protocol models.
//!
//! Enumerates *every* topology in the bounded family — 1..=3 links,
//! 1..=4 connections, each connection routed over any non-empty link
//! subset (multisets of routes, since two connections may share a
//! route) — and model-checks the maxmin and admission transition
//! systems on each. Capacities, demands, floors and delays come from
//! fixed palettes chosen to exercise bottlenecks, contention, and
//! destination-test rejections. A handful of canonical topologies are
//! additionally swept with a control-plane loss budget (the loss
//! dimension multiplies the state space, so it is bounded to the
//! canonical set to stay inside the time budget).
//!
//! The whole sweep is the static proof obligation from the roadmap:
//! 4-RTT convergence to the maxmin optimum and `b_min` preservation on
//! all small topologies, in bounded wall time.

use serde::Serialize;

use super::admission::AdmissionSystem;
use super::maxmin::MaxminSystem;
use super::{Checker, Counterexample, TransitionSystem};

/// Aggregate results of a full sweep.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SweepReport {
    /// Model-check runs performed.
    pub runs: usize,
    /// Total distinct states across runs.
    pub states: usize,
    /// Total transitions across runs.
    pub transitions: usize,
    /// Wall time of the sweep in milliseconds.
    pub elapsed_ms: u64,
}

/// Capacity palette (cycled per link index): a wide link, a tight
/// bottleneck, a middling link.
const CAPS: [f64; 3] = [10.0, 4.0, 6.0];
/// Demand palette (cycled per connection): mostly unbounded, one small.
const DEMANDS: [f64; 4] = [100.0, 100.0, 2.0, 100.0];
/// Admission floor palette (cycled per request).
const FLOORS: [u16; 4] = [7, 4, 3, 5];
/// Admission capacity palette.
const ACAPS: [u16; 3] = [10, 6, 8];

/// Every non-empty subset of `0..n_links` as an ordered route.
fn all_routes(n_links: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for mask in 1u8..(1 << n_links) {
        out.push((0..n_links).filter(|l| mask & (1 << l) != 0).collect());
    }
    out
}

/// Every multiset of `k` route indices drawn from `n` routes
/// (non-decreasing index vectors).
fn route_multisets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = vec![0usize; k];
    loop {
        out.push(cur.clone());
        // Next non-decreasing vector.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] + 1 < n {
                cur[i] += 1;
                let v = cur[i];
                for c in cur.iter_mut().skip(i + 1) {
                    *c = v;
                }
                break;
            }
        }
    }
}

/// Visit every bounded topology as `(link_count, routes-per-conn)`.
fn for_each_topology(
    mut f: impl FnMut(u8, &[Vec<u8>]) -> Result<(), Counterexample>,
) -> Result<(), Counterexample> {
    for n_links in 1u8..=3 {
        let routes = all_routes(n_links);
        for n_conns in 1usize..=4 {
            for pick in route_multisets(routes.len(), n_conns) {
                let conn_routes: Vec<Vec<u8>> = pick.iter().map(|i| routes[*i].clone()).collect();
                f(n_links, &conn_routes)?;
            }
        }
    }
    Ok(())
}

fn check_into(
    report: &mut SweepReport,
    checker: &Checker,
    name: &str,
    sys: &impl TransitionSystem,
) -> Result<(), Counterexample> {
    let t = std::time::Instant::now();
    let stats = checker.run(name, sys)?;
    if std::env::var_os("ARM_CHECK_SWEEP_DEBUG").is_some() && stats.states > 20_000 {
        eprintln!(
            "[sweep] {name} run {}: {} states, {} transitions, {} ms",
            report.runs,
            stats.states,
            stats.transitions,
            t.elapsed().as_millis()
        );
    }
    report.runs += 1;
    report.states += stats.states;
    report.transitions += stats.transitions;
    Ok(())
}

/// Model-check the distributed maxmin protocol on every bounded
/// topology, plus the canonical set under control-plane loss.
pub fn sweep_maxmin(report: &mut SweepReport) -> Result<(), Counterexample> {
    let checker = Checker::default();
    for_each_topology(|n_links, conn_routes| {
        let excess: Vec<f64> = (0..n_links as usize)
            .map(|l| CAPS[l % CAPS.len()])
            .collect();
        let demands: Vec<f64> = (0..conn_routes.len())
            .map(|c| DEMANDS[c % DEMANDS.len()])
            .collect();
        let sys = MaxminSystem::new(excess, conn_routes.to_vec(), demands);
        check_into(report, &checker, "maxmin", &sys)
    })?;
    // Loss dimension on canonical contended topologies only.
    let canonical: [(Vec<f64>, Vec<Vec<u8>>); 3] = [
        (vec![10.0], vec![vec![0], vec![0]]),
        (vec![10.0, 4.0], vec![vec![0, 1], vec![0], vec![1]]),
        (vec![10.0, 4.0, 6.0], vec![vec![0, 1, 2], vec![1]]),
    ];
    for (excess, routes) in canonical {
        let demands = vec![100.0; routes.len()];
        let sys = MaxminSystem::new(excess, routes, demands).with_loss_budget(2);
        check_into(report, &checker, "maxmin+loss", &sys)?;
    }
    Ok(())
}

/// Model-check round-trip admission on every bounded topology, with a
/// delay-bounded variant on multi-hop routes.
pub fn sweep_admission(report: &mut SweepReport) -> Result<(), Counterexample> {
    let checker = Checker::default();
    for_each_topology(|n_links, conn_routes| {
        let cap: Vec<u16> = (0..n_links as usize)
            .map(|l| ACAPS[l % ACAPS.len()])
            .collect();
        let floors: Vec<u16> = (0..conn_routes.len())
            .map(|r| FLOORS[r % FLOORS.len()])
            .collect();
        let sys = AdmissionSystem::new(cap.clone(), conn_routes.to_vec(), floors.clone());
        check_into(report, &checker, "admission", &sys)?;
        // Delay-bounded variant: per-hop delay 5, one tight budget.
        let d_max: Vec<u16> = (0..conn_routes.len())
            .map(|r| if r == 0 { 8 } else { 100 })
            .collect();
        let sys = AdmissionSystem::new(cap, conn_routes.to_vec(), floors)
            .with_delays(vec![5; n_links as usize], d_max);
        check_into(report, &checker, "admission+delay", &sys)
    })
}

/// The full proof obligation: both protocol sweeps. Returns the
/// aggregate report, or the first counterexample found.
pub fn sweep_all() -> Result<SweepReport, Box<Counterexample>> {
    let start = std::time::Instant::now();
    let mut report = SweepReport::default();
    sweep_maxmin(&mut report).map_err(Box::new)?;
    sweep_admission(&mut report).map_err(Box::new)?;
    report.elapsed_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_enumeration_counts() {
        assert_eq!(all_routes(1).len(), 1);
        assert_eq!(all_routes(2).len(), 3);
        assert_eq!(all_routes(3).len(), 7);
        // Multisets of size 4 from 7 routes: C(10, 4) = 210.
        assert_eq!(route_multisets(7, 4).len(), 210);
        assert_eq!(route_multisets(3, 2).len(), 6);
    }

    #[test]
    fn topology_family_size() {
        let mut n = 0usize;
        for_each_topology(|_, _| {
            n += 1;
            Ok(())
        })
        .expect("no checking here");
        // Σ over links L of Σ over conns k of C(routes(L)+k-1, k):
        // L=1: 4, L=2: 34, L=3: 329.
        assert_eq!(n, 4 + 34 + 329);
    }

    #[test]
    fn admission_sweep_verifies() {
        let mut report = SweepReport::default();
        sweep_admission(&mut report).expect("admission family verified");
        assert!(report.runs > 700);
    }

    // The maxmin half of the sweep is the expensive one; `cargo xtask
    // check` runs it (with the wall-time budget asserted) so the plain
    // test suite stays fast.
    #[test]
    #[ignore = "run via `cargo xtask check` or `cargo test -- --ignored`"]
    fn full_sweep_verifies_under_budget() {
        let report = sweep_all().expect("bounded family verified");
        assert!(
            report.elapsed_ms < 60_000,
            "sweep took {} ms, budget is 60s",
            report.elapsed_ms
        );
    }
}
