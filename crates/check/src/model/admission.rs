//! Explicit transition system of the Table 2 round-trip admission test.
//!
//! A re-statement of `arm_qos::admission::admit` — forward per-hop
//! tests, destination checks, then a reverse pass that *re-validates
//! and firmly reserves* hop by hop (the model-level analogue of the
//! reverse relaxation pass ending in `Network::reserve_route`, whose
//! whole point is that forward-pass results are stale by the time the
//! reservation returns). The nondeterminism explored by the checker is
//! the interleaving of several concurrent admission requests' hop
//! steps — exactly the race window between a forward test and the firm
//! reservation.
//!
//! Bandwidth floors and delays are small integers so states are exact
//! `Ord` keys and the space stays finite.
//!
//! Properties:
//! * **invariant** — per-link committed floors never exceed capacity
//!   (`b_min` is never violated: every admitted connection's floor is
//!   backed by real capacity);
//! * **at quiescence** — every request is decided, and each link's
//!   committed total equals the sum of floors of admitted requests
//!   routed over it (no leaked reservations from rejected requests).

use super::TransitionSystem;

/// Known-bad admission variants the checker must catch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionMutant {
    /// The correct protocol.
    #[default]
    None,
    /// The reverse pass skips hop re-validation and commits
    /// unconditionally, trusting the (stale) forward-pass test. Two
    /// interleaved requests can then both pass forward over the same
    /// bottleneck and both commit — overcommitting the link's floor
    /// capacity and violating some connection's `b_min`.
    SkipReverseRevalidation,
}

/// Where one admission request stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReqPhase {
    /// Forward pass: next test at route hop `h` (accumulated delay so
    /// far rides along).
    Forward { hop: u8, delay: u16 },
    /// All hops passed; destination tests pending.
    DestCheck { delay: u16 },
    /// Reverse pass: next re-validate-and-reserve at route hop `h`
    /// (walking back from the destination).
    Reverse { hop: u8 },
    /// Firm reservation in place on every hop.
    Admitted,
    /// Rejected (any committed hops rolled back).
    Rejected,
}

/// Full admission state: each request's phase plus the per-link ledger
/// of committed floors.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct St {
    phases: Vec<ReqPhase>,
    committed: Vec<u16>,
}

/// A ≤3-link / ≤4-request admission instance plus checker config.
#[derive(Clone, Debug)]
pub struct AdmissionSystem {
    /// Floor capacity per link (units of `b_min` bandwidth).
    pub cap: Vec<u16>,
    /// Per-hop delay contribution per link.
    pub hop_delay: Vec<u16>,
    /// Route (link indices) per request.
    pub routes: Vec<Vec<u8>>,
    /// Requested floor `b_min` per request.
    pub b_min: Vec<u16>,
    /// End-to-end delay bound per request (destination test).
    pub d_max: Vec<u16>,
    /// Seeded fault, if any.
    pub mutant: AdmissionMutant,
}

impl AdmissionSystem {
    /// A well-formed instance with permissive delay bounds.
    pub fn new(cap: Vec<u16>, routes: Vec<Vec<u8>>, b_min: Vec<u16>) -> Self {
        assert!(cap.len() <= 3, "precondition: at most 3 links");
        assert!(routes.len() <= 4, "precondition: at most 4 requests");
        assert_eq!(routes.len(), b_min.len());
        for r in &routes {
            assert!(!r.is_empty(), "precondition: routes must be non-empty");
            for l in r {
                assert!((*l as usize) < cap.len());
            }
        }
        let n = routes.len();
        AdmissionSystem {
            hop_delay: vec![0; cap.len()],
            d_max: vec![u16::MAX; n],
            cap,
            routes,
            b_min,
            mutant: AdmissionMutant::None,
        }
    }

    /// Set per-link hop delays and per-request delay bounds (the
    /// destination test becomes meaningful).
    pub fn with_delays(mut self, hop_delay: Vec<u16>, d_max: Vec<u16>) -> Self {
        assert_eq!(hop_delay.len(), self.cap.len());
        assert_eq!(d_max.len(), self.routes.len());
        self.hop_delay = hop_delay;
        self.d_max = d_max;
        self
    }

    /// Install a known-bad handler variant.
    pub fn with_mutant(mut self, m: AdmissionMutant) -> Self {
        self.mutant = m;
        self
    }

    /// Advance request `r` by one protocol step.
    fn step(&self, st: &St, r: usize) -> Option<(String, St)> {
        let route = &self.routes[r];
        let floor = self.b_min[r];
        match st.phases[r] {
            ReqPhase::Forward { hop, delay } => {
                let l = route[hop as usize] as usize;
                let mut next = st.clone();
                // Table 2 forward test: does the hop have floor room?
                if st.committed[l] + floor > self.cap[l] {
                    next.phases[r] = ReqPhase::Rejected;
                    return Some((format!("R{r}: forward test FAILS at L{l}"), next));
                }
                let delay = delay + self.hop_delay[l];
                if hop as usize + 1 == route.len() {
                    next.phases[r] = ReqPhase::DestCheck { delay };
                    Some((
                        format!("R{r}: forward test passes at L{l}, reaches destination"),
                        next,
                    ))
                } else {
                    next.phases[r] = ReqPhase::Forward {
                        hop: hop + 1,
                        delay,
                    };
                    Some((format!("R{r}: forward test passes at L{l}"), next))
                }
            }
            ReqPhase::DestCheck { delay } => {
                let mut next = st.clone();
                if delay > self.d_max[r] {
                    next.phases[r] = ReqPhase::Rejected;
                    Some((
                        format!(
                            "R{r}: destination test FAILS ({delay} > D_max {})",
                            self.d_max[r]
                        ),
                        next,
                    ))
                } else {
                    next.phases[r] = ReqPhase::Reverse {
                        hop: route.len() as u8 - 1,
                    };
                    Some((
                        format!("R{r}: destination tests pass, reverse pass begins"),
                        next,
                    ))
                }
            }
            ReqPhase::Reverse { hop } => {
                let l = route[hop as usize] as usize;
                let mut next = st.clone();
                let revalidate = self.mutant != AdmissionMutant::SkipReverseRevalidation;
                if revalidate && st.committed[l] + floor > self.cap[l] {
                    // Stale forward result: roll back hops already
                    // committed on the way back and reject.
                    for rolled in &route[hop as usize + 1..] {
                        next.committed[*rolled as usize] -= floor;
                    }
                    next.phases[r] = ReqPhase::Rejected;
                    return Some((
                        format!("R{r}: reverse re-validation FAILS at L{l}, rolls back"),
                        next,
                    ));
                }
                next.committed[l] += floor;
                if hop == 0 {
                    next.phases[r] = ReqPhase::Admitted;
                    Some((format!("R{r}: reserves b_min at L{l}; ADMITTED"), next))
                } else {
                    next.phases[r] = ReqPhase::Reverse { hop: hop - 1 };
                    Some((format!("R{r}: reserves b_min at L{l}"), next))
                }
            }
            ReqPhase::Admitted | ReqPhase::Rejected => None,
        }
    }
}

impl TransitionSystem for AdmissionSystem {
    type State = St;

    fn initial(&self) -> St {
        St {
            phases: vec![ReqPhase::Forward { hop: 0, delay: 0 }; self.routes.len()],
            committed: vec![0; self.cap.len()],
        }
    }

    fn successors(&self, st: &St) -> Vec<(String, St)> {
        (0..self.routes.len())
            .filter_map(|r| self.step(st, r))
            .collect()
    }

    fn invariant(&self, st: &St) -> Result<(), String> {
        for (l, c) in st.committed.iter().enumerate() {
            if *c > self.cap[l] {
                return Err(format!(
                    "b_min violated at L{l}: committed floors {c} exceed capacity {}",
                    self.cap[l]
                ));
            }
        }
        Ok(())
    }

    fn on_quiescent(&self, st: &St) -> Result<(), String> {
        for (r, p) in st.phases.iter().enumerate() {
            if !matches!(p, ReqPhase::Admitted | ReqPhase::Rejected) {
                return Err(format!("R{r} stuck in {p:?} at quiescence"));
            }
        }
        for l in 0..self.cap.len() {
            let want: u16 = self
                .routes
                .iter()
                .enumerate()
                .filter(|(r, route)| {
                    st.phases[*r] == ReqPhase::Admitted && route.contains(&(l as u8))
                })
                .map(|(r, _)| self.b_min[r])
                .sum();
            if st.committed[l] != want {
                return Err(format!(
                    "reservation leak at L{l}: ledger holds {}, admitted floors sum to {want}",
                    st.committed[l]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Checker;

    #[test]
    fn contended_bottleneck_never_overcommits() {
        // Two requests race for one link that fits only one of them.
        let sys = AdmissionSystem::new(vec![10], vec![vec![0], vec![0]], vec![7, 7]);
        let stats = Checker::default().run("admission", &sys).expect("verified");
        assert!(stats.quiescent >= 2, "both orders must be reachable");
    }

    #[test]
    fn shared_path_three_links_verifies() {
        let sys = AdmissionSystem::new(
            vec![10, 6, 10],
            vec![vec![0, 1, 2], vec![1], vec![2, 1, 0]],
            vec![4, 4, 4],
        );
        Checker::default().run("admission", &sys).expect("verified");
    }

    #[test]
    fn destination_delay_test_rejects_cleanly() {
        let sys = AdmissionSystem::new(vec![10, 10], vec![vec![0, 1], vec![1]], vec![3, 3])
            .with_delays(vec![5, 5], vec![8, 100]);
        Checker::default().run("admission", &sys).expect("verified");
    }

    #[test]
    fn reverse_revalidation_mutant_is_caught() {
        let sys = AdmissionSystem::new(vec![10], vec![vec![0], vec![0]], vec![7, 7])
            .with_mutant(AdmissionMutant::SkipReverseRevalidation);
        let cx = Checker::default()
            .run("admission", &sys)
            .expect_err("mutant must overcommit");
        assert!(cx.property.contains("b_min violated"), "{}", cx.property);
        assert!(!cx.steps.is_empty());
    }
}
