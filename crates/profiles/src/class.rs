//! The cell taxonomy (§3.4.1, Table 1).
//!
//! For an indoor environment, cells divide into three classes by
//! location — **office**, **corridor**, **lounge** — and lounges divide
//! further by activity into **meeting room** (handoff spikes at meeting
//! start/end), **cafeteria** (slow time-varying activity) and **default**
//! (uniformly/randomly distributed activity).

use serde::{Deserialize, Serialize};

/// Lounge activity subclass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoungeKind {
    /// Bursts of handoffs at the start and conclusion of meetings; a
    /// booking calendar drives deterministic advance reservation.
    MeetingRoom,
    /// Slow time-varying handoff profile; a least-squares linear
    /// predictor estimates the next slot's handoffs.
    Cafeteria,
    /// Random time-varying profile; one-step-memory prediction plus the
    /// probabilistic reservation algorithm of §6.3.
    Default,
}

/// Location-dependent cell class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// A cell with a small set of 'regular' occupants; reserves in
    /// advance only for its occupants.
    Office,
    /// Users move linearly through; next cell is predictable from the
    /// previous cell.
    Corridor,
    /// Many non-regular users; behaviour aggregated, not per-user.
    Lounge(LoungeKind),
}

impl CellClass {
    /// Table 1's characterisation of the class's handoff activity.
    pub fn handoff_activity(&self) -> &'static str {
        match self {
            CellClass::Office => "predictable",
            CellClass::Corridor => "predictable linear movement",
            CellClass::Lounge(LoungeKind::MeetingRoom) => "spikes",
            CellClass::Lounge(LoungeKind::Cafeteria) => "slow time-varying",
            CellClass::Lounge(LoungeKind::Default) => "uniformly distributed",
        }
    }

    /// Does this class track individual regular occupants?
    pub fn tracks_occupants(&self) -> bool {
        matches!(self, CellClass::Office)
    }

    /// Does this class carry a booking calendar?
    pub fn has_calendar(&self) -> bool {
        matches!(self, CellClass::Lounge(LoungeKind::MeetingRoom))
    }
}

impl std::fmt::Display for CellClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellClass::Office => write!(f, "office"),
            CellClass::Corridor => write!(f, "corridor"),
            CellClass::Lounge(LoungeKind::MeetingRoom) => write!(f, "lounge/meeting-room"),
            CellClass::Lounge(LoungeKind::Cafeteria) => write!(f, "lounge/cafeteria"),
            CellClass::Lounge(LoungeKind::Default) => write!(f, "lounge/default"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_properties() {
        assert!(CellClass::Office.tracks_occupants());
        assert!(!CellClass::Corridor.tracks_occupants());
        assert!(CellClass::Lounge(LoungeKind::MeetingRoom).has_calendar());
        assert!(!CellClass::Lounge(LoungeKind::Cafeteria).has_calendar());
        assert_eq!(CellClass::Office.handoff_activity(), "predictable");
        assert_eq!(
            CellClass::Lounge(LoungeKind::MeetingRoom).handoff_activity(),
            "spikes"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(CellClass::Office.to_string(), "office");
        assert_eq!(
            CellClass::Lounge(LoungeKind::Default).to_string(),
            "lounge/default"
        );
    }
}
