//! Bounded handoff history.
//!
//! The profile server "maintains the following information about the last
//! `N_pP` handoffs from each cell … for that portable" and "the last
//! `N_pC` handoffs of the cell" (§3.4.3). [`HandoffHistory`] is the
//! bounded FIFO both profile kinds aggregate from.

use std::collections::VecDeque;

use arm_net::ids::{CellId, PortableId};
use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One observed handoff: the portable moved `prev → cur → next` (where
/// `prev` may be unknown for a portable's first movement).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HandoffEvent {
    /// Who moved.
    pub portable: PortableId,
    /// The cell before the cell being left (None on first movement).
    pub prev: Option<CellId>,
    /// The cell being left.
    pub cur: CellId,
    /// The cell being entered.
    pub next: CellId,
    /// When.
    pub time: SimTime,
}

/// A FIFO of the most recent `cap` handoff events.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HandoffHistory {
    cap: usize,
    events: VecDeque<HandoffEvent>,
    total_recorded: u64,
}

impl HandoffHistory {
    /// History bounded to `cap` events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        HandoffHistory {
            cap,
            events: VecDeque::with_capacity(cap.min(1024)),
            total_recorded: 0,
        }
    }

    /// Record an event, evicting the oldest when full.
    pub fn record(&mut self, ev: HandoffEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total_recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &HandoffEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lifetime count of recorded events (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Most common `next` cell among events matching the filter, with its
    /// frequency (count, total-matching).
    pub fn most_common_next<F>(&self, filter: F) -> Option<(CellId, usize, usize)>
    where
        F: Fn(&HandoffEvent) -> bool,
    {
        let mut counts: std::collections::BTreeMap<CellId, usize> = Default::default();
        let mut total = 0;
        for ev in self.events.iter().filter(|e| filter(e)) {
            *counts.entry(ev.next).or_insert(0) += 1;
            total += 1;
        }
        counts
            .into_iter()
            .max_by_key(|(c, n)| (*n, std::cmp::Reverse(*c)))
            .map(|(c, n)| (c, n, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: u32, prev: Option<u32>, cur: u32, next: u32) -> HandoffEvent {
        HandoffEvent {
            portable: PortableId(p),
            prev: prev.map(CellId),
            cur: CellId(cur),
            next: CellId(next),
            time: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut h = HandoffHistory::new(3);
        for i in 0..5 {
            h.record(ev(0, None, i, i + 1));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_recorded(), 5);
        let curs: Vec<u32> = h.events().map(|e| e.cur.0).collect();
        assert_eq!(curs, vec![2, 3, 4]);
        assert_eq!(h.capacity(), 3);
    }

    #[test]
    fn most_common_next_with_filter() {
        let mut h = HandoffHistory::new(10);
        h.record(ev(1, Some(0), 1, 2));
        h.record(ev(1, Some(0), 1, 2));
        h.record(ev(1, Some(0), 1, 3));
        h.record(ev(2, Some(0), 1, 3)); // different portable
        let (next, n, total) = h.most_common_next(|e| e.portable == PortableId(1)).unwrap();
        assert_eq!(next, CellId(2));
        assert_eq!(n, 2);
        assert_eq!(total, 3);
        assert!(h
            .most_common_next(|e| e.portable == PortableId(9))
            .is_none());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut h = HandoffHistory::new(10);
        h.record(ev(1, None, 1, 5));
        h.record(ev(1, None, 1, 3));
        // Equal counts: the smaller cell id wins (reverse-id tiebreak).
        let (next, _, _) = h.most_common_next(|_| true).unwrap();
        assert_eq!(next, CellId(3));
    }
}
