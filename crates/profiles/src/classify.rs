// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Learning a cell's class from its observed behaviour (§6.4).
//!
//! "In the case that a cell does not have its cell profile, the base
//! station has to execute the default reservation algorithm initially;
//! meanwhile, … the profile server aggregates the handoff information for
//! the cell, executes the different categories of prediction algorithms
//! and tries to categorize the cell on basis of its profile behavior."
//!
//! The features follow Table 1's activity characterisation:
//!
//! * **office** — a small set of regular users dominates the handoffs,
//! * **corridor** — knowing the previous cell, the next cell is highly
//!   predictable (linear movement),
//! * **meeting room** — handoff activity concentrates in rare spikes,
//! * **cafeteria** — activity varies slowly from slot to slot,
//! * **default** — none of the above.

use std::collections::{BTreeMap, BTreeSet};

use arm_sim::SimDuration;

use crate::cell::CellProfile;
use crate::class::{CellClass, LoungeKind};

/// Tunable thresholds for the classifier. Defaults chosen to separate the
/// synthetic generators in `arm-mobility`, which mimic the paper's
/// measured environment.
#[derive(Clone, Copy, Debug)]
pub struct ClassifierConfig {
    /// Minimum events before attempting classification at all.
    pub min_events: usize,
    /// Office: at most this many distinct users…
    pub office_max_users: usize,
    /// …who account for at least this fraction of handoffs.
    pub office_regular_fraction: f64,
    /// Corridor: average per-previous-cell directional consistency.
    pub corridor_consistency: f64,
    /// Corridor: at most this fraction of departures may turn back the
    /// way they came (a dead-end room bounces everyone back).
    pub corridor_max_turnaround: f64,
    /// Meeting room: fraction of events inside the busiest 10% of slots.
    pub meeting_spike_fraction: f64,
    /// Cafeteria: mean |slot-to-slot delta| relative to the mean level.
    pub cafeteria_smoothness: f64,
    /// Cafeteria: minimum lag-1 autocorrelation of the slot series (a
    /// systematic ramp correlates; stationary noise does not).
    pub cafeteria_min_autocorr: f64,
    /// Slot width used to build the activity series.
    pub slot: SimDuration,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            min_events: 30,
            office_max_users: 6,
            office_regular_fraction: 0.8,
            corridor_consistency: 0.8,
            corridor_max_turnaround: 0.5,
            meeting_spike_fraction: 0.6,
            cafeteria_smoothness: 0.6,
            cafeteria_min_autocorr: 0.25,
            slot: SimDuration::from_mins(5),
        }
    }
}

/// Feature vector the classifier derives from a cell profile; exposed so
/// experiment binaries can print it.
#[derive(Clone, Debug, PartialEq)]
pub struct CellFeatures {
    /// Number of handoff events inspected.
    pub events: usize,
    /// Distinct portables observed.
    pub distinct_users: usize,
    /// Fraction of handoffs from the `office_max_users` busiest users.
    pub regular_fraction: f64,
    /// Weighted mean of max transition probability per previous cell.
    pub directional_consistency: f64,
    /// Fraction of events inside the busiest 10% of active slots.
    pub spike_fraction: f64,
    /// Mean |Δ| between consecutive slots divided by the mean slot level.
    pub smoothness: f64,
    /// Fraction of departures that return where they came from
    /// (`next == prev`). Near 1 for dead-end rooms, near 0 for corridors
    /// with through-traffic.
    pub turnaround_fraction: f64,
    /// Lag-1 autocorrelation of the slot series: high for a systematic
    /// ramp (cafeteria), near zero for stationary random traffic.
    pub slot_autocorr: f64,
}

/// Extract classification features from a cell's handoff history.
pub fn features(profile: &CellProfile, slot: SimDuration) -> CellFeatures {
    let events: Vec<_> = profile.history().events().copied().collect();
    let n = events.len();
    // Users.
    let mut per_user: BTreeMap<_, usize> = BTreeMap::new();
    for e in &events {
        *per_user.entry(e.portable).or_insert(0) += 1;
    }
    let distinct_users = per_user.len();
    let mut user_counts: Vec<usize> = per_user.values().copied().collect();
    user_counts.sort_unstable_by(|a, b| b.cmp(a));
    let top: usize = user_counts.iter().take(6).sum();
    let regular_fraction = if n == 0 { 0.0 } else { top as f64 / n as f64 };

    // Directional consistency: for each previous cell with ≥2 samples,
    // the max next-cell probability, weighted by sample count.
    let mut by_prev: BTreeMap<_, BTreeMap<_, usize>> = BTreeMap::new();
    for e in &events {
        *by_prev
            .entry(e.prev)
            .or_default()
            .entry(e.next)
            .or_insert(0) += 1;
    }
    let mut consistency_num = 0.0;
    let mut consistency_den = 0.0;
    for nexts in by_prev.values() {
        let total: usize = nexts.values().sum();
        if total < 2 {
            continue;
        }
        let max = *nexts.values().max().expect("invariant: non-empty") as f64;
        consistency_num += max;
        consistency_den += total as f64;
    }
    let directional_consistency = if consistency_den == 0.0 {
        0.0
    } else {
        consistency_num / consistency_den
    };
    let turnarounds = events
        .iter()
        .filter(|e| e.prev.is_some() && e.prev == Some(e.next))
        .count();
    let turnaround_fraction = if n == 0 {
        0.0
    } else {
        turnarounds as f64 / n as f64
    };

    // Activity series.
    let mut slots: BTreeMap<u64, f64> = BTreeMap::new();
    for e in &events {
        *slots.entry(e.time.ticks() / slot.ticks()).or_insert(0.0) += 1.0;
    }
    let (spike_fraction, smoothness, slot_autocorr) = if slots.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let first = *slots.keys().next().expect("invariant: non-empty");
        let last = *slots.keys().last().expect("invariant: non-empty");
        let series: Vec<f64> = (first..=last)
            .map(|k| slots.get(&k).copied().unwrap_or(0.0))
            .collect();
        let total: f64 = series.iter().sum();
        let mut sorted = series.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top_k = ((series.len() as f64 * 0.1).ceil() as usize).max(1);
        let spike: f64 = sorted.iter().take(top_k).sum();
        let spike_fraction = if total == 0.0 { 0.0 } else { spike / total };
        let mean = total / series.len() as f64;
        let mean_delta = if series.len() < 2 {
            0.0
        } else {
            series.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (series.len() - 1) as f64
        };
        let smoothness = if mean == 0.0 { 0.0 } else { mean_delta / mean };
        let var: f64 =
            series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / series.len() as f64;
        let autocorr = if var == 0.0 || series.len() < 3 {
            0.0
        } else {
            series
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / ((series.len() - 1) as f64 * var)
        };
        (spike_fraction, smoothness, autocorr)
    };

    CellFeatures {
        events: n,
        distinct_users,
        regular_fraction,
        directional_consistency,
        spike_fraction,
        smoothness,
        turnaround_fraction,
        slot_autocorr,
    }
}

/// Classify a cell from its profile history; `None` when there is not yet
/// enough history (`min_events`), in which case the base station keeps
/// executing the default reservation algorithm.
pub fn classify(profile: &CellProfile, cfg: &ClassifierConfig) -> Option<CellClass> {
    let f = features(profile, cfg.slot);
    if f.events < cfg.min_events {
        return None;
    }
    // Office: few users, dominated by regulars.
    if f.distinct_users <= cfg.office_max_users && f.regular_fraction >= cfg.office_regular_fraction
    {
        return Some(CellClass::Office);
    }
    // Corridor: movement *through* the cell is directionally consistent
    // — and it must actually be through-traffic, not a dead-end room
    // bouncing its visitors back where they came from.
    if f.directional_consistency >= cfg.corridor_consistency
        && f.turnaround_fraction <= cfg.corridor_max_turnaround
    {
        return Some(CellClass::Corridor);
    }
    // Lounge subclasses by activity shape.
    if f.spike_fraction >= cfg.meeting_spike_fraction {
        return Some(CellClass::Lounge(LoungeKind::MeetingRoom));
    }
    if f.smoothness <= cfg.cafeteria_smoothness && f.slot_autocorr >= cfg.cafeteria_min_autocorr {
        return Some(CellClass::Lounge(LoungeKind::Cafeteria));
    }
    Some(CellClass::Lounge(LoungeKind::Default))
}

/// The set of portables that look like regular occupants: those whose
/// share of the observed handoffs exceeds `1 / (distinct_users + 1)`
/// by a factor of two (used when promoting a learned office).
pub fn infer_occupants(profile: &CellProfile) -> BTreeSet<arm_net::ids::PortableId> {
    let mut per_user: BTreeMap<arm_net::ids::PortableId, usize> = BTreeMap::new();
    let mut total = 0usize;
    for e in profile.history().events() {
        *per_user.entry(e.portable).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return BTreeSet::new();
    }
    let users = per_user.len().max(1);
    let threshold = 2.0 / (users as f64 + 1.0);
    per_user
        .into_iter()
        .filter(|(_, n)| *n as f64 / total as f64 >= threshold)
        .map(|(p, _)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HandoffEvent;
    use arm_net::ids::{CellId, PortableId};
    use arm_sim::SimTime;

    fn cell_with(events: Vec<HandoffEvent>) -> CellProfile {
        let mut c = CellProfile::new(CellId(0), CellClass::Lounge(LoungeKind::Default), 10_000);
        for e in events {
            c.record(e);
        }
        c
    }

    fn hev(p: u32, prev: u32, next: u32, t_min: u64) -> HandoffEvent {
        HandoffEvent {
            portable: PortableId(p),
            prev: Some(CellId(prev)),
            cur: CellId(0),
            next: CellId(next),
            time: SimTime::from_mins(t_min),
        }
    }

    #[test]
    fn office_pattern_detected() {
        // Two regulars in and out all day.
        let mut evs = Vec::new();
        for i in 0..40 {
            evs.push(hev(1 + (i % 2), 5, 6, i as u64 * 13));
        }
        let c = cell_with(evs);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Office)
        );
    }

    #[test]
    fn corridor_pattern_detected() {
        // Many users; whoever came from 5 goes to 6, and vice versa.
        let mut evs = Vec::new();
        for i in 0..60u32 {
            if i % 2 == 0 {
                evs.push(hev(i, 5, 6, i as u64 * 3));
            } else {
                evs.push(hev(i, 6, 5, i as u64 * 3));
            }
        }
        let c = cell_with(evs);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Corridor)
        );
    }

    #[test]
    fn meeting_room_pattern_detected() {
        // Many users; a burst at minutes 0–9 and another at 50–59,
        // nothing in between (class start/end), destinations scattered.
        let mut evs = Vec::new();
        for i in 0..30u32 {
            evs.push(hev(i, (i % 5) + 1, (i % 4) + 10, (i % 10) as u64));
        }
        for i in 30..60u32 {
            evs.push(hev(i, (i % 5) + 1, (i % 4) + 10, 300 + (i % 10) as u64));
        }
        let c = cell_with(evs);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Lounge(LoungeKind::MeetingRoom))
        );
    }

    #[test]
    fn cafeteria_pattern_detected() {
        // Many users; a smooth ramp of activity over lunch hours with
        // scattered directions.
        let mut evs = Vec::new();
        let mut id = 0u32;
        // Activity level per 5-min slot: 2,3,4,5,6,6,5,4,3,2 …
        let levels = [2, 3, 4, 5, 6, 6, 5, 4, 3, 2, 2, 3, 4, 5, 6, 6, 5, 4, 3, 2];
        for (slot, lvl) in levels.iter().enumerate() {
            for k in 0..*lvl {
                evs.push(hev(
                    id,
                    (id % 7) + 1,
                    (id % 5) + 10,
                    slot as u64 * 5 + (k % 5) as u64,
                ));
                id += 1;
            }
        }
        let c = cell_with(evs);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Lounge(LoungeKind::Cafeteria))
        );
    }

    #[test]
    fn random_pattern_defaults() {
        // Many users, erratic activity, scattered directions.
        let mut evs = Vec::new();
        // Jumpy levels (pseudo-random but fixed).
        let levels = [5, 0, 7, 1, 0, 6, 0, 8, 2, 0, 5, 0, 9, 0, 1, 7, 0, 3, 0, 6];
        let mut id = 0u32;
        for (slot, lvl) in levels.iter().enumerate() {
            for k in 0..*lvl {
                evs.push(hev(
                    id,
                    (id % 7) + 1,
                    (id % 5) + 10,
                    slot as u64 * 5 + (k % 5) as u64,
                ));
                id += 1;
            }
        }
        let c = cell_with(evs);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Lounge(LoungeKind::Default))
        );
    }

    #[test]
    fn insufficient_history_returns_none() {
        let c = cell_with(vec![hev(1, 5, 6, 0)]);
        assert_eq!(classify(&c, &ClassifierConfig::default()), None);
    }

    #[test]
    fn occupant_inference() {
        let mut evs = Vec::new();
        // Portable 1: 20 events; portable 2: 18; strangers: 1 each.
        for i in 0..20 {
            evs.push(hev(1, 5, 6, i));
        }
        for i in 0..18 {
            evs.push(hev(2, 5, 6, 100 + i));
        }
        for s in 100..104u32 {
            evs.push(hev(s, 5, 6, 200 + s as u64));
        }
        let c = cell_with(evs);
        let occ = infer_occupants(&c);
        assert!(occ.contains(&PortableId(1)));
        assert!(occ.contains(&PortableId(2)));
        assert!(!occ.contains(&PortableId(100)));
    }

    #[test]
    fn features_on_empty_profile() {
        let c = cell_with(vec![]);
        let f = features(&c, SimDuration::from_mins(5));
        assert_eq!(f.events, 0);
        assert_eq!(f.distinct_users, 0);
        assert_eq!(f.spike_fraction, 0.0);
        assert_eq!(f.turnaround_fraction, 0.0);
    }

    #[test]
    fn dead_end_meeting_room_is_not_a_corridor() {
        // A classroom with ONE neighbour: every departure goes back to
        // the corridor it came from — perfectly "consistent", but it is
        // turnaround traffic, and the activity is spiky.
        let mut evs = Vec::new();
        for i in 0..40u32 {
            // prev == next == cell 5 (the corridor outside); bursts at
            // minutes 0–5 and 50–55.
            let t = if i < 20 {
                (i % 6) as u64
            } else {
                250 + (i % 6) as u64
            };
            evs.push(hev(i, 5, 5, t));
        }
        let c = cell_with(evs);
        let f = features(&c, SimDuration::from_mins(5));
        assert!(f.turnaround_fraction > 0.9);
        assert_eq!(
            classify(&c, &ClassifierConfig::default()),
            Some(CellClass::Lounge(LoungeKind::MeetingRoom))
        );
    }
}
