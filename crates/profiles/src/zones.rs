// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Zones and cross-zone profile hand-over (§3.4.1/§3.4.3).
//!
//! "The universe is divided into distinct geographical regions called
//! *zones*. Each zone has a *profile server*" holding the cell profiles
//! of its cells and the portable profiles of the portables currently in
//! it. When a portable crosses a zone boundary, its cached profile is
//! "passed on … to the next cell" — the old zone's server surrenders it
//! and the new zone's adopts it, so the portable's movement history (and
//! therefore level-1 prediction) survives the crossing.
//!
//! [`ZonedProfiles`] wraps one [`ProfileServer`] per zone behind the same
//! API the single-zone manager uses, routing every operation to the zone
//! that owns the cell involved.

use std::collections::BTreeMap;

use arm_net::ids::{CellId, PortableId, ZoneId};
use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::cell::CellProfile;
use crate::prediction::{Prediction, PredictionLevel};
use crate::server::ProfileServer;

/// A universe of zones, each with its profile server.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZonedProfiles {
    zone_of: BTreeMap<CellId, ZoneId>,
    servers: BTreeMap<ZoneId, ProfileServer>,
    /// Which zone currently holds each portable's profile.
    portable_zone: BTreeMap<PortableId, ZoneId>,
    /// Universe-level movement context (survives zone crossings).
    contexts: BTreeMap<PortableId, (Option<CellId>, CellId)>,
    /// Cross-zone profile transfers performed (observability).
    pub transfers: u64,
}

impl ZonedProfiles {
    /// An empty universe.
    pub fn new() -> Self {
        ZonedProfiles {
            zone_of: BTreeMap::new(),
            servers: BTreeMap::new(),
            portable_zone: BTreeMap::new(),
            contexts: BTreeMap::new(),
            transfers: 0,
        }
    }

    /// Register a cell profile under a zone (creates the zone's server on
    /// first use).
    pub fn register_cell(&mut self, zone: ZoneId, profile: CellProfile) {
        self.zone_of.insert(profile.cell, zone);
        self.servers
            .entry(zone)
            .or_insert_with(|| ProfileServer::new(zone))
            .register_cell(profile);
    }

    /// The zone owning a cell (panics on unregistered cells — a
    /// configuration error).
    pub fn zone_of(&self, cell: CellId) -> ZoneId {
        *self
            .zone_of
            .get(&cell)
            .expect("precondition: cell registered with a zone")
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.servers.len()
    }

    /// A zone's server.
    pub fn server(&self, zone: ZoneId) -> Option<&ProfileServer> {
        self.servers.get(&zone)
    }

    /// Cell profile lookup (routed to the owning zone).
    pub fn cell(&self, c: CellId) -> Option<&CellProfile> {
        let zone = self.zone_of.get(&c)?;
        self.servers.get(zone)?.cell(c)
    }

    /// Mutable cell profile lookup.
    pub fn cell_mut(&mut self, c: CellId) -> Option<&mut CellProfile> {
        let zone = *self.zone_of.get(&c)?;
        self.servers.get_mut(&zone)?.cell_mut(c)
    }

    /// First sighting of a portable.
    pub fn portable_entered(&mut self, p: PortableId, cell: CellId) {
        let zone = self.zone_of(cell);
        self.servers
            .entry(zone)
            .or_insert_with(|| ProfileServer::new(zone))
            .portable_entered(p, cell);
        self.portable_zone.insert(p, zone);
        self.contexts.entry(p).or_insert((None, cell));
    }

    /// Record a handoff `cur → next` (the portable's cell before `cur`
    /// was `prev`). Routes the update to `cur`'s zone and, when the move
    /// crosses a zone boundary, hands the portable profile over.
    pub fn record_handoff(
        &mut self,
        p: PortableId,
        prev: Option<CellId>,
        cur: CellId,
        next: CellId,
        time: SimTime,
    ) {
        let cur_zone = self.zone_of(cur);
        let next_zone = self.zone_of(next);
        self.servers
            .entry(cur_zone)
            .or_insert_with(|| ProfileServer::new(cur_zone))
            .record_handoff(p, prev, cur, next, time);
        if next_zone != cur_zone {
            // "passes on the cached portable-profile to the next cell".
            let profile = self
                .servers
                .get_mut(&cur_zone)
                .and_then(|s| s.extract_portable(p));
            if let Some(profile) = profile {
                self.servers
                    .entry(next_zone)
                    .or_insert_with(|| ProfileServer::new(next_zone))
                    .adopt_portable(profile, next);
                self.transfers += 1;
            }
        }
        self.portable_zone.insert(p, next_zone);
        self.contexts.insert(p, (Some(cur), next));
    }

    /// Three-level prediction at the portable's current context.
    pub fn predict(&self, p: PortableId) -> Prediction {
        match self.contexts.get(&p) {
            Some((prev, cur)) => self.predict_at(p, *prev, *cur),
            None => Prediction {
                cell: None,
                level: PredictionLevel::Default,
            },
        }
    }

    /// Three-level prediction at an explicit context. The portable's
    /// profile is consulted in whatever zone currently holds it; the cell
    /// profiles in the zone owning `cur`.
    pub fn predict_at(&self, p: PortableId, prev: Option<CellId>, cur: CellId) -> Prediction {
        let fallback = Prediction {
            cell: None,
            level: PredictionLevel::Default,
        };
        let cur_zone = match self.zone_of.get(&cur) {
            Some(z) => *z,
            None => return fallback,
        };
        let Some(cell_server) = self.servers.get(&cur_zone) else {
            return fallback;
        };
        let Some(cp) = cell_server.cell(cur) else {
            return fallback;
        };
        let neighbor_profiles: Vec<&CellProfile> =
            cp.neighbors.iter().filter_map(|n| self.cell(*n)).collect();
        let portable_profile = self
            .portable_zone
            .get(&p)
            .and_then(|z| self.servers.get(z))
            .and_then(|s| s.portable(p));
        crate::prediction::predict_next_cell(p, prev, cur, portable_profile, cp, &neighbor_profiles)
    }

    /// The portable's current (prev, cur) context.
    pub fn context(&self, p: PortableId) -> Option<(Option<CellId>, CellId)> {
        self.contexts.get(&p).copied()
    }
}

impl Default for ZonedProfiles {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::CellClass;

    /// Two zones: a west corridor chain (zone 0) and an east one (zone 1),
    /// joined at cells 2–3.
    fn universe() -> ZonedProfiles {
        let mut z = ZonedProfiles::new();
        let mk = |c: u32, ns: &[u32]| {
            CellProfile::with_default_capacity(CellId(c), CellClass::Corridor)
                .with_neighbors(ns.iter().map(|n| CellId(*n)))
        };
        z.register_cell(ZoneId(0), mk(0, &[1]));
        z.register_cell(ZoneId(0), mk(1, &[0, 2]));
        z.register_cell(ZoneId(0), mk(2, &[1, 3]));
        z.register_cell(ZoneId(1), mk(3, &[2, 4]));
        z.register_cell(ZoneId(1), mk(4, &[3]));
        z
    }

    #[test]
    fn routing_to_owning_zone() {
        let z = universe();
        assert_eq!(z.zone_of(CellId(1)), ZoneId(0));
        assert_eq!(z.zone_of(CellId(4)), ZoneId(1));
        assert_eq!(z.zone_count(), 2);
        assert!(z.cell(CellId(2)).is_some());
        assert!(z.cell(CellId(9)).is_none());
    }

    #[test]
    fn profile_follows_the_portable_across_zones() {
        let mut z = universe();
        let p = PortableId(7);
        z.portable_entered(p, CellId(0));
        // Build a habit inside zone 0.
        for _ in 0..3 {
            z.record_handoff(p, None, CellId(0), CellId(1), SimTime::ZERO);
            z.record_handoff(p, Some(CellId(0)), CellId(1), CellId(0), SimTime::ZERO);
        }
        assert!(z.server(ZoneId(0)).unwrap().portable(p).is_some());
        // Walk east across the boundary: 0→1→2→3 (zone crossing at 2→3).
        z.record_handoff(p, None, CellId(0), CellId(1), SimTime::ZERO);
        z.record_handoff(p, Some(CellId(0)), CellId(1), CellId(2), SimTime::ZERO);
        z.record_handoff(p, Some(CellId(1)), CellId(2), CellId(3), SimTime::ZERO);
        assert_eq!(z.transfers, 1);
        // The profile now lives in zone 1, with the history intact.
        assert!(z.server(ZoneId(0)).unwrap().portable(p).is_none());
        let moved = z.server(ZoneId(1)).unwrap().portable(p).expect("adopted");
        assert!(moved.history_len() >= 9);
        // Context survived: the portable is in 3, having come from 2.
        assert_eq!(z.context(p), Some((Some(CellId(2)), CellId(3))));
    }

    #[test]
    fn prediction_continuity_across_the_boundary() {
        let mut z = universe();
        let p = PortableId(7);
        z.portable_entered(p, CellId(1));
        // Habit: from 2 (having come from 1) the portable always goes
        // to 3 — learned while the profile lived in zone 0.
        for _ in 0..4 {
            z.record_handoff(p, Some(CellId(1)), CellId(2), CellId(3), SimTime::ZERO);
            z.record_handoff(p, Some(CellId(2)), CellId(3), CellId(2), SimTime::ZERO);
        }
        // Level-1 prediction works though the asking cell (2) is in zone
        // 0 and the profile now lives in zone 1... wherever it is.
        let pred = z.predict_at(p, Some(CellId(1)), CellId(2));
        assert_eq!(pred.cell, Some(CellId(3)));
        assert_eq!(pred.level, PredictionLevel::PortableProfile);
    }

    #[test]
    fn aggregate_prediction_stays_zone_local() {
        let mut z = universe();
        // Strangers flow 2 → 3 (zone 0's cell 2 history).
        for i in 0..6 {
            let p = PortableId(100 + i);
            z.portable_entered(p, CellId(2));
            z.record_handoff(p, None, CellId(2), CellId(3), SimTime::ZERO);
        }
        let pred = z.predict_at(PortableId(200), None, CellId(2));
        assert_eq!(pred.cell, Some(CellId(3)));
        assert_eq!(pred.level, PredictionLevel::CellAggregate);
    }

    #[test]
    fn single_zone_universe_behaves_like_plain_server() {
        let mut z = ZonedProfiles::new();
        z.register_cell(
            ZoneId(0),
            CellProfile::with_default_capacity(CellId(0), CellClass::Corridor)
                .with_neighbors([CellId(1)]),
        );
        z.register_cell(
            ZoneId(0),
            CellProfile::with_default_capacity(CellId(1), CellClass::Corridor)
                .with_neighbors([CellId(0)]),
        );
        let p = PortableId(1);
        z.portable_entered(p, CellId(0));
        z.record_handoff(p, None, CellId(0), CellId(1), SimTime::ZERO);
        assert_eq!(z.transfers, 0);
        assert_eq!(z.zone_count(), 1);
        assert_eq!(z.context(p), Some((Some(CellId(0)), CellId(1))));
    }
}
