// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-profiles — profiles, profile servers, and next-cell prediction
//!
//! §3.4 of the paper: every cell and portable carries a *profile*; each
//! geographic *zone* runs a *profile server* that aggregates handoff
//! history and answers next-cell queries. Cells are classified by
//! location-dependent behaviour — **office**, **corridor**, **lounge**
//! (meeting room / cafeteria / default) — and the advance-reservation
//! algorithm of `arm-reservation` dispatches on this class.
//!
//! * [`class`] — the cell taxonomy (Table 1's rows),
//! * [`history`] — bounded handoff history buffers (`N_pP` / `N_pC`),
//! * [`portable`] — portable profiles: ⟨previous cell, current cell⟩ →
//!   next-predicted-cell triplets,
//! * [`cell`] — cell profiles: neighbours, office occupants `ω(c)`,
//!   aggregate per-previous-cell handoff probabilities
//!   ⟨i, ∀j ∈ η(c): {j, p_j}⟩,
//! * [`server`] — the per-zone profile server: records every handoff,
//!   keeps both profile kinds fresh, serves predictions,
//! * [`prediction`] — the three-level prediction of §6 (portable profile
//!   → cell profile → none ⇒ caller falls back to the default advance
//!   reservation algorithm),
//! * [`classify`] — the learning process of §6.4: categorise an unknown
//!   cell from the shape of its observed handoff activity,
//! * [`zones`] — multi-zone universes with cross-zone profile hand-over
//!   ("passes on the cached portable-profile to the next cell").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod class;
pub mod classify;
pub mod history;
pub mod portable;
pub mod prediction;
pub mod server;
pub mod zones;

pub use cell::CellProfile;
pub use class::{CellClass, LoungeKind};
pub use history::{HandoffEvent, HandoffHistory};
pub use portable::PortableProfile;
pub use prediction::{predict_next_cell, Prediction, PredictionLevel};
pub use server::ProfileServer;
pub use zones::ZonedProfiles;
