//! The per-zone profile server (§3.4.3).
//!
//! "Each zone has a profile server. The profile server maintains the
//! cell-profiles for all the cells in its zone and the portable-profiles
//! for all the portables currently in its zone, and updates the
//! cell/portable-profile upon each handoff."
//!
//! Base stations cache profiles and forward handoff updates here; in the
//! simulation the cache is modelled as direct access (cache staleness is
//! not one of the paper's evaluated effects), but the transfer of a
//! portable's profile between zones is — see
//! [`ProfileServer::extract_portable`] / [`ProfileServer::adopt_portable`].

use std::collections::BTreeMap;

use arm_net::ids::{CellId, PortableId, ZoneId};
use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::cell::{CellProfile, DEFAULT_N_PC};
use crate::class::CellClass;
use crate::history::HandoffEvent;
use crate::portable::{PortableProfile, DEFAULT_N_PP};
use crate::prediction::{predict_next_cell, Prediction};

/// One zone's profile server.
///
/// ```
/// use arm_net::ids::{CellId, PortableId, ZoneId};
/// use arm_profiles::{CellClass, PredictionLevel, ProfileServer};
/// use arm_sim::SimTime;
///
/// let mut server = ProfileServer::new(ZoneId(0));
/// server.register_cell_simple(CellId(0), CellClass::Corridor, [CellId(1)]);
/// server.register_cell_simple(CellId(1), CellClass::Corridor, [CellId(0), CellId(2)]);
/// server.register_cell_simple(CellId(2), CellClass::Office, [CellId(1)]);
///
/// // A commuter walks 0 → 1 → 2 a few times…
/// let p = PortableId(7);
/// server.portable_entered(p, CellId(0));
/// for _ in 0..3 {
///     server.record_handoff(p, None, CellId(0), CellId(1), SimTime::ZERO);
///     server.record_handoff(p, Some(CellId(0)), CellId(1), CellId(2), SimTime::ZERO);
/// }
/// // …and the three-level prediction learns the route.
/// let pred = server.predict_at(p, Some(CellId(0)), CellId(1));
/// assert_eq!(pred.cell, Some(CellId(2)));
/// assert_eq!(pred.level, PredictionLevel::PortableProfile);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileServer {
    /// The zone this server is responsible for.
    pub zone: ZoneId,
    cells: BTreeMap<CellId, CellProfile>,
    portables: BTreeMap<PortableId, PortableProfile>,
    /// Last known (prev, cur) context per portable, updated on handoff.
    contexts: BTreeMap<PortableId, (Option<CellId>, CellId)>,
    n_pp: usize,
    n_pc: usize,
}

impl ProfileServer {
    /// A server with the default history retention bounds.
    pub fn new(zone: ZoneId) -> Self {
        Self::with_capacities(zone, DEFAULT_N_PP, DEFAULT_N_PC)
    }

    /// A server with explicit `N_pP` / `N_pC`.
    pub fn with_capacities(zone: ZoneId, n_pp: usize, n_pc: usize) -> Self {
        ProfileServer {
            zone,
            cells: BTreeMap::new(),
            portables: BTreeMap::new(),
            contexts: BTreeMap::new(),
            n_pp,
            n_pc,
        }
    }

    /// Register a cell with its class (builder-style).
    pub fn register_cell(&mut self, profile: CellProfile) {
        self.cells.insert(profile.cell, profile);
    }

    /// Convenience: register a cell by id/class with neighbours.
    pub fn register_cell_simple(
        &mut self,
        cell: CellId,
        class: CellClass,
        neighbors: impl IntoIterator<Item = CellId>,
    ) {
        self.register_cell(CellProfile::new(cell, class, self.n_pc).with_neighbors(neighbors));
    }

    /// Cell profile lookup.
    pub fn cell(&self, c: CellId) -> Option<&CellProfile> {
        self.cells.get(&c)
    }

    /// Mutable cell profile lookup (classification updates, occupants).
    pub fn cell_mut(&mut self, c: CellId) -> Option<&mut CellProfile> {
        self.cells.get_mut(&c)
    }

    /// Portable profile lookup.
    pub fn portable(&self, p: PortableId) -> Option<&PortableProfile> {
        self.portables.get(&p)
    }

    /// Portables currently tracked.
    pub fn portable_count(&self) -> usize {
        self.portables.len()
    }

    /// The portable's last known (previous, current) cell context.
    pub fn context(&self, p: PortableId) -> Option<(Option<CellId>, CellId)> {
        self.contexts.get(&p).copied()
    }

    /// Record a handoff `cur → next` of `portable` (whose cell before
    /// `cur` was `prev`). Updates both the portable profile and `cur`'s
    /// cell profile, and advances the tracked context.
    pub fn record_handoff(
        &mut self,
        portable: PortableId,
        prev: Option<CellId>,
        cur: CellId,
        next: CellId,
        time: SimTime,
    ) {
        let ev = HandoffEvent {
            portable,
            prev,
            cur,
            next,
            time,
        };
        self.portables
            .entry(portable)
            .or_insert_with(|| PortableProfile::new(portable, self.n_pp))
            .record(ev);
        if let Some(cp) = self.cells.get_mut(&cur) {
            cp.record(ev);
        }
        self.contexts.insert(portable, (Some(cur), next));
    }

    /// A portable entered the zone (first sighting) at `cell`.
    pub fn portable_entered(&mut self, portable: PortableId, cell: CellId) {
        self.portables
            .entry(portable)
            .or_insert_with(|| PortableProfile::new(portable, self.n_pp));
        self.contexts.entry(portable).or_insert((None, cell));
    }

    /// Run the three-level prediction for a portable in its current
    /// context.
    pub fn predict(&self, portable: PortableId) -> Prediction {
        let (prev, cur) = match self.contexts.get(&portable) {
            Some(c) => *c,
            None => {
                return Prediction {
                    cell: None,
                    level: crate::prediction::PredictionLevel::Default,
                }
            }
        };
        self.predict_at(portable, prev, cur)
    }

    /// Run the three-level prediction for an explicit context.
    pub fn predict_at(
        &self,
        portable: PortableId,
        prev: Option<CellId>,
        cur: CellId,
    ) -> Prediction {
        let fallback = Prediction {
            cell: None,
            level: crate::prediction::PredictionLevel::Default,
        };
        let Some(cp) = self.cells.get(&cur) else {
            return fallback;
        };
        let neighbor_profiles: Vec<&CellProfile> = cp
            .neighbors
            .iter()
            .filter_map(|n| self.cells.get(n))
            .collect();
        predict_next_cell(
            portable,
            prev,
            cur,
            self.portables.get(&portable),
            cp,
            &neighbor_profiles,
        )
    }

    /// Remove and return a portable's profile — "the base station …
    /// passes on the cached portable-profile to the next cell" — for a
    /// cross-zone move.
    pub fn extract_portable(&mut self, p: PortableId) -> Option<PortableProfile> {
        self.contexts.remove(&p);
        self.portables.remove(&p)
    }

    /// Adopt a profile arriving from another zone.
    pub fn adopt_portable(&mut self, profile: PortableProfile, cell: CellId) {
        self.contexts.insert(profile.portable, (None, cell));
        self.portables.insert(profile.portable, profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::LoungeKind;
    use crate::prediction::PredictionLevel;

    fn server() -> ProfileServer {
        let mut s = ProfileServer::new(ZoneId(0));
        // Corridor 0 between offices 1 and 2 and a lounge 3.
        s.register_cell_simple(
            CellId(0),
            CellClass::Corridor,
            [CellId(1), CellId(2), CellId(3)],
        );
        s.register_cell_simple(CellId(1), CellClass::Office, [CellId(0)]);
        s.register_cell_simple(CellId(2), CellClass::Office, [CellId(0)]);
        s.register_cell_simple(
            CellId(3),
            CellClass::Lounge(LoungeKind::Default),
            [CellId(0)],
        );
        s.cell_mut(CellId(1))
            .unwrap()
            .occupants
            .insert(PortableId(1));
        s
    }

    #[test]
    fn handoffs_feed_both_profiles_and_prediction() {
        let mut s = server();
        s.portable_entered(PortableId(5), CellId(0));
        // Portable 5 habitually moves 3 → 0 → 2.
        for _ in 0..5 {
            s.record_handoff(
                PortableId(5),
                Some(CellId(3)),
                CellId(0),
                CellId(2),
                SimTime::ZERO,
            );
        }
        // Re-establish the context as "came from 3, now in 0".
        s.contexts
            .insert(PortableId(5), (Some(CellId(3)), CellId(0)));
        let pred = s.predict(PortableId(5));
        assert_eq!(pred.cell, Some(CellId(2)));
        assert_eq!(pred.level, PredictionLevel::PortableProfile);
        // The cell profile aggregated the same movements.
        assert_eq!(s.cell(CellId(0)).unwrap().history_len(), 5);
    }

    #[test]
    fn occupant_office_prediction_for_unknown_portable() {
        let mut s = server();
        s.portable_entered(PortableId(1), CellId(0));
        // No personal history, but portable 1 occupies office 1.
        let pred = s.predict(PortableId(1));
        assert_eq!(pred.cell, Some(CellId(1)));
        assert_eq!(pred.level, PredictionLevel::OccupantOffice);
    }

    #[test]
    fn aggregate_prediction_for_strangers() {
        let mut s = server();
        // Many strangers flow 1 → 0 → 3.
        for i in 10..20 {
            s.record_handoff(
                PortableId(i),
                Some(CellId(1)),
                CellId(0),
                CellId(3),
                SimTime::ZERO,
            );
        }
        s.portable_entered(PortableId(99), CellId(0));
        s.contexts
            .insert(PortableId(99), (Some(CellId(1)), CellId(0)));
        let pred = s.predict(PortableId(99));
        // Portable 99's own single-context profile is empty; but wait —
        // it has no profile history at all, so level 2b fires.
        assert_eq!(pred.cell, Some(CellId(3)));
        assert_eq!(pred.level, PredictionLevel::CellAggregate);
    }

    #[test]
    fn unknown_everything_defaults() {
        let mut s = server();
        s.portable_entered(PortableId(42), CellId(3));
        let pred = s.predict(PortableId(42));
        assert_eq!(pred.level, PredictionLevel::Default);
        assert_eq!(pred.cell, None);
        // Never-seen portable too.
        assert_eq!(s.predict(PortableId(77)).level, PredictionLevel::Default);
    }

    #[test]
    fn profile_transfer_between_zones() {
        let mut s1 = server();
        let mut s2 = ProfileServer::new(ZoneId(1));
        s2.register_cell_simple(CellId(9), CellClass::Corridor, []);
        s1.portable_entered(PortableId(5), CellId(0));
        s1.record_handoff(
            PortableId(5),
            Some(CellId(3)),
            CellId(0),
            CellId(2),
            SimTime::ZERO,
        );
        let profile = s1.extract_portable(PortableId(5)).expect("profile exists");
        assert!(s1.portable(PortableId(5)).is_none());
        assert_eq!(profile.history_len(), 1);
        s2.adopt_portable(profile, CellId(9));
        assert!(s2.portable(PortableId(5)).is_some());
        assert_eq!(s2.context(PortableId(5)), Some((None, CellId(9))));
    }

    #[test]
    fn portable_count_tracks_zone_population() {
        let mut s = server();
        assert_eq!(s.portable_count(), 0);
        s.portable_entered(PortableId(1), CellId(0));
        s.portable_entered(PortableId(2), CellId(0));
        s.portable_entered(PortableId(1), CellId(3)); // re-entry, no dup
        assert_eq!(s.portable_count(), 2);
        s.extract_portable(PortableId(1));
        assert_eq!(s.portable_count(), 1);
    }
}
