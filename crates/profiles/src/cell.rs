//! Cell profiles (§3.4.3, Table 1).
//!
//! A cell's profile carries its class, its neighbour set `η(c)`, for an
//! office its regular occupants `ω(c)`, and the aggregate handoff
//! history: for each previous cell `i`, the probability `p_j` of handing
//! off to each neighbour `j` — ⟨i, ∀j ∈ η(c): {j, p_j}⟩ — built from the
//! cell's last `N_pC` handoffs.

use std::collections::{BTreeMap, BTreeSet};

use arm_net::ids::{CellId, PortableId};
use serde::{Deserialize, Serialize};

use crate::class::CellClass;
use crate::history::{HandoffEvent, HandoffHistory};

/// Default `N_pC`: how many of a cell's handoffs the server retains.
pub const DEFAULT_N_PC: usize = 500;

/// One cell's profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellProfile {
    /// Whose profile this is.
    pub cell: CellId,
    /// Location-dependent class (may be relearned, §6.4).
    pub class: CellClass,
    /// Neighbour set `η(c)`.
    pub neighbors: BTreeSet<CellId>,
    /// Regular occupants `ω(c)` (offices only).
    pub occupants: BTreeSet<PortableId>,
    history: HandoffHistory,
}

impl CellProfile {
    /// Fresh profile retaining `n_pc` handoffs.
    pub fn new(cell: CellId, class: CellClass, n_pc: usize) -> Self {
        CellProfile {
            cell,
            class,
            neighbors: BTreeSet::new(),
            occupants: BTreeSet::new(),
            history: HandoffHistory::new(n_pc),
        }
    }

    /// Fresh profile with the default retention.
    pub fn with_default_capacity(cell: CellId, class: CellClass) -> Self {
        Self::new(cell, class, DEFAULT_N_PC)
    }

    /// Declare the neighbour set.
    pub fn with_neighbors(mut self, neighbors: impl IntoIterator<Item = CellId>) -> Self {
        self.neighbors = neighbors.into_iter().collect();
        self
    }

    /// Declare office occupants.
    pub fn with_occupants(mut self, occupants: impl IntoIterator<Item = PortableId>) -> Self {
        self.occupants = occupants.into_iter().collect();
        self
    }

    /// Is `p` a regular occupant of this (office) cell?
    pub fn is_occupant(&self, p: PortableId) -> bool {
        self.occupants.contains(&p)
    }

    /// Record a handoff *out of* this cell (`ev.cur == self.cell`).
    pub fn record(&mut self, ev: HandoffEvent) {
        debug_assert_eq!(ev.cur, self.cell);
        self.history.record(ev);
    }

    /// The aggregate transition row for a given previous cell: the
    /// probability of handing off to each neighbour, ⟨i, {j, p_j}⟩.
    /// Probabilities are empirical frequencies over the retained history;
    /// an empty row means no history for that context.
    pub fn transition_row(&self, prev: Option<CellId>) -> BTreeMap<CellId, f64> {
        let mut counts: BTreeMap<CellId, usize> = BTreeMap::new();
        let mut total = 0usize;
        for ev in self.history.events().filter(|e| e.prev == prev) {
            *counts.entry(ev.next).or_insert(0) += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total as f64))
            .collect()
    }

    /// The aggregate transition probabilities over *all* previous cells.
    pub fn aggregate_row(&self) -> BTreeMap<CellId, f64> {
        let mut counts: BTreeMap<CellId, usize> = BTreeMap::new();
        let mut total = 0usize;
        for ev in self.history.events() {
            *counts.entry(ev.next).or_insert(0) += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total as f64))
            .collect()
    }

    /// Second-level prediction from the aggregate history: most likely
    /// next cell given the previous cell, falling back to the overall
    /// majority when the (prev) context has no history.
    pub fn predict_next(&self, prev: Option<CellId>) -> Option<CellId> {
        self.history
            .most_common_next(|e| e.prev == prev)
            .or_else(|| self.history.most_common_next(|_| true))
            .map(|(c, _, _)| c)
    }

    /// Number of handoffs retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Direct history access (classification learning reads the raw
    /// event stream).
    pub fn history(&self) -> &HandoffHistory {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_sim::SimTime;

    fn ev(p: u32, prev: Option<u32>, next: u32) -> HandoffEvent {
        HandoffEvent {
            portable: PortableId(p),
            prev: prev.map(CellId),
            cur: CellId(50),
            next: CellId(next),
            time: SimTime::ZERO,
        }
    }

    fn corridor() -> CellProfile {
        CellProfile::with_default_capacity(CellId(50), CellClass::Corridor)
            .with_neighbors([CellId(49), CellId(51)])
    }

    #[test]
    fn transition_rows_are_conditional_frequencies() {
        let mut c = corridor();
        // Users arriving from 49 continue to 51 (linear movement)…
        for i in 0..9 {
            c.record(ev(i, Some(49), 51));
        }
        c.record(ev(9, Some(49), 49)); // one turns back
                                       // …and vice versa.
        for i in 10..14 {
            c.record(ev(i, Some(51), 49));
        }
        let row = c.transition_row(Some(CellId(49)));
        assert!((row[&CellId(51)] - 0.9).abs() < 1e-12);
        assert!((row[&CellId(49)] - 0.1).abs() < 1e-12);
        let row_back = c.transition_row(Some(CellId(51)));
        assert_eq!(row_back[&CellId(49)], 1.0);
        assert!(c.transition_row(Some(CellId(99))).is_empty());
    }

    #[test]
    fn prediction_uses_context_then_aggregate() {
        let mut c = corridor();
        for i in 0..5 {
            c.record(ev(i, Some(49), 51));
        }
        assert_eq!(c.predict_next(Some(CellId(49))), Some(CellId(51)));
        // Unknown context falls back to the overall majority.
        assert_eq!(c.predict_next(Some(CellId(77))), Some(CellId(51)));
        // Empty profile predicts nothing.
        let fresh = corridor();
        assert_eq!(fresh.predict_next(None), None);
    }

    #[test]
    fn aggregate_row_sums_to_one() {
        let mut c = corridor();
        for i in 0..7 {
            c.record(ev(i, Some(49), 51));
        }
        for i in 7..10 {
            c.record(ev(i, Some(51), 49));
        }
        let row = c.aggregate_row();
        let sum: f64 = row.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((row[&CellId(51)] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn occupants() {
        let office = CellProfile::with_default_capacity(CellId(1), CellClass::Office)
            .with_occupants([PortableId(3), PortableId(4)]);
        assert!(office.is_occupant(PortableId(3)));
        assert!(!office.is_occupant(PortableId(5)));
    }
}
