//! The three-level next-cell prediction (§6).
//!
//! 1. **Portable profile**: knowing the previous and current cell, check
//!    the next-predicted-cell triplet. Success ends the search.
//! 2. **Cell profile**: if a neighbouring *office* cell counts the user
//!    among its regular occupants, nominate that office; otherwise
//!    predict from the cell's aggregate handoff history.
//! 3. **Default**: no prediction — the caller falls back to the default
//!    advance-reservation algorithm (§6.3).

use arm_net::ids::{CellId, PortableId};

use crate::cell::CellProfile;
use crate::portable::PortableProfile;

/// Which level produced the prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictionLevel {
    /// Level 1: the portable's own movement history.
    PortableProfile,
    /// Level 2a: a neighbouring office the user regularly occupies.
    OccupantOffice,
    /// Level 2b: the current cell's aggregate handoff history.
    CellAggregate,
    /// Level 3: nothing to go on; use the default reservation algorithm.
    Default,
}

/// A prediction and its provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted next cell (`None` at [`PredictionLevel::Default`]).
    pub cell: Option<CellId>,
    /// Which level produced it.
    pub level: PredictionLevel,
}

/// Run the three-level algorithm.
///
/// `portable_profile` may be absent (e.g. a visitor from another zone
/// whose profile has not been transferred yet); `neighbor_profiles` are
/// the profiles of the current cell's neighbours (for the occupant-office
/// check).
pub fn predict_next_cell(
    portable: PortableId,
    prev: Option<CellId>,
    cur: CellId,
    portable_profile: Option<&PortableProfile>,
    cell_profile: &CellProfile,
    neighbor_profiles: &[&CellProfile],
) -> Prediction {
    // Level 1: portable profile.
    if let Some(pp) = portable_profile {
        if let Some(next) = pp.next_predicted(prev, cur) {
            return Prediction {
                cell: Some(next),
                level: PredictionLevel::PortableProfile,
            };
        }
    }
    // Level 2a: neighbouring office with this user as a regular occupant.
    for np in neighbor_profiles {
        if np.class.tracks_occupants() && np.is_occupant(portable) {
            return Prediction {
                cell: Some(np.cell),
                level: PredictionLevel::OccupantOffice,
            };
        }
    }
    // Level 2b: the cell's aggregate handoff history.
    if let Some(next) = cell_profile.predict_next(prev) {
        return Prediction {
            cell: Some(next),
            level: PredictionLevel::CellAggregate,
        };
    }
    // Level 3: default.
    Prediction {
        cell: None,
        level: PredictionLevel::Default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::CellClass;
    use crate::history::HandoffEvent;
    use arm_sim::SimTime;

    fn hev(p: u32, prev: Option<u32>, cur: u32, next: u32) -> HandoffEvent {
        HandoffEvent {
            portable: PortableId(p),
            prev: prev.map(CellId),
            cur: CellId(cur),
            next: CellId(next),
            time: SimTime::ZERO,
        }
    }

    fn corridor(cell: u32) -> CellProfile {
        CellProfile::with_default_capacity(CellId(cell), CellClass::Corridor)
    }

    #[test]
    fn level1_portable_profile_wins() {
        let mut pp = PortableProfile::with_default_capacity(PortableId(1));
        pp.record(hev(1, Some(0), 5, 9));
        let cp = corridor(5);
        let office = CellProfile::with_default_capacity(CellId(7), CellClass::Office)
            .with_occupants([PortableId(1)]);
        let pred = predict_next_cell(
            PortableId(1),
            Some(CellId(0)),
            CellId(5),
            Some(&pp),
            &cp,
            &[&office],
        );
        // The portable's own history beats the occupant-office rule.
        assert_eq!(pred.cell, Some(CellId(9)));
        assert_eq!(pred.level, PredictionLevel::PortableProfile);
    }

    #[test]
    fn level2a_occupant_office() {
        let cp = corridor(5);
        let office = CellProfile::with_default_capacity(CellId(7), CellClass::Office)
            .with_occupants([PortableId(1)]);
        let lounge = CellProfile::with_default_capacity(
            CellId(8),
            CellClass::Lounge(crate::class::LoungeKind::Default),
        );
        let pred = predict_next_cell(
            PortableId(1),
            Some(CellId(0)),
            CellId(5),
            None,
            &cp,
            &[&lounge, &office],
        );
        assert_eq!(pred.cell, Some(CellId(7)));
        assert_eq!(pred.level, PredictionLevel::OccupantOffice);
        // A non-occupant does not trigger the office rule.
        let pred2 = predict_next_cell(
            PortableId(2),
            Some(CellId(0)),
            CellId(5),
            None,
            &cp,
            &[&lounge, &office],
        );
        assert_ne!(pred2.level, PredictionLevel::OccupantOffice);
    }

    #[test]
    fn level2b_cell_aggregate() {
        let mut cp = corridor(5);
        for i in 0..6 {
            cp.record(hev(i, Some(4), 5, 6));
        }
        let pred = predict_next_cell(PortableId(99), Some(CellId(4)), CellId(5), None, &cp, &[]);
        assert_eq!(pred.cell, Some(CellId(6)));
        assert_eq!(pred.level, PredictionLevel::CellAggregate);
    }

    #[test]
    fn level3_default_when_nothing_known() {
        let cp = corridor(5);
        let pred = predict_next_cell(PortableId(99), None, CellId(5), None, &cp, &[]);
        assert_eq!(pred.cell, None);
        assert_eq!(pred.level, PredictionLevel::Default);
    }

    #[test]
    fn empty_portable_profile_falls_through() {
        let pp = PortableProfile::with_default_capacity(PortableId(1));
        let mut cp = corridor(5);
        cp.record(hev(3, Some(4), 5, 6));
        let pred = predict_next_cell(
            PortableId(1),
            Some(CellId(4)),
            CellId(5),
            Some(&pp),
            &cp,
            &[],
        );
        assert_eq!(pred.level, PredictionLevel::CellAggregate);
        assert_eq!(pred.cell, Some(CellId(6)));
    }
}
