//! Portable profiles (§3.4.3, Table 1).
//!
//! The profile of a portable carries "an aggregated history of its
//! previous handoffs, which is used to predict its next cell given its
//! current cell": the set of ⟨previous cell, current cell,
//! next-predicted-cell⟩ triplets, aggregated from the last `N_pP`
//! handoffs the profile server recorded for this portable.

use std::collections::BTreeMap;

use arm_net::ids::{CellId, PortableId};
use serde::{Deserialize, Serialize};

use crate::history::{HandoffEvent, HandoffHistory};

/// Default `N_pP`: how many of a portable's handoffs the server retains.
pub const DEFAULT_N_PP: usize = 100;

/// One portable's aggregated movement history.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortableProfile {
    /// Whose profile this is (Table 1: every profile carries the
    /// identification of the entity).
    pub portable: PortableId,
    history: HandoffHistory,
    /// Aggregate: (prev, cur) → next-predicted-cell, recomputed lazily.
    triplets: BTreeMap<(Option<CellId>, CellId), CellId>,
}

impl PortableProfile {
    /// Fresh profile retaining `n_pp` handoffs.
    pub fn new(portable: PortableId, n_pp: usize) -> Self {
        PortableProfile {
            portable,
            history: HandoffHistory::new(n_pp),
            triplets: BTreeMap::new(),
        }
    }

    /// Fresh profile with the default retention.
    pub fn with_default_capacity(portable: PortableId) -> Self {
        Self::new(portable, DEFAULT_N_PP)
    }

    /// Record one handoff of this portable and refresh the affected
    /// triplet.
    pub fn record(&mut self, ev: HandoffEvent) {
        debug_assert_eq!(ev.portable, self.portable);
        self.history.record(ev);
        // Recompute the triplet for this (prev, cur) context from the
        // retained history (majority vote).
        let key = (ev.prev, ev.cur);
        if let Some((next, _, _)) = self
            .history
            .most_common_next(|e| e.prev == ev.prev && e.cur == ev.cur)
        {
            self.triplets.insert(key, next);
        }
    }

    /// First-level prediction: "knowing the previous cell id, together
    /// with the current cell id, the base station checks the
    /// next-predicted-cell field". `None` means the profile has no
    /// history for this movement context.
    pub fn next_predicted(&self, prev: Option<CellId>, cur: CellId) -> Option<CellId> {
        self.triplets.get(&(prev, cur)).copied().or_else(|| {
            // A portable whose exact (prev, cur) context is unknown may
            // still have history for the current cell with a different
            // previous cell; the paper's triplet table is keyed on both,
            // so we only fall back when prev itself is unknown.
            if prev.is_some() {
                None
            } else {
                self.history
                    .most_common_next(|e| e.cur == cur)
                    .map(|(c, _, _)| c)
            }
        })
    }

    /// Number of handoffs retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// All aggregated triplets (for Table 1 style dumps).
    pub fn triplets(&self) -> impl Iterator<Item = (Option<CellId>, CellId, CellId)> + '_ {
        self.triplets.iter().map(|((p, c), n)| (*p, *c, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_sim::SimTime;

    fn ev(prev: Option<u32>, cur: u32, next: u32) -> HandoffEvent {
        HandoffEvent {
            portable: PortableId(7),
            prev: prev.map(CellId),
            cur: CellId(cur),
            next: CellId(next),
            time: SimTime::ZERO,
        }
    }

    #[test]
    fn majority_vote_prediction() {
        let mut p = PortableProfile::new(PortableId(7), 50);
        // From corridor 3 (having come from 2), this user mostly goes to
        // office 10, occasionally to 11.
        for _ in 0..8 {
            p.record(ev(Some(2), 3, 10));
        }
        for _ in 0..3 {
            p.record(ev(Some(2), 3, 11));
        }
        assert_eq!(
            p.next_predicted(Some(CellId(2)), CellId(3)),
            Some(CellId(10))
        );
        // Different context: no triplet.
        assert_eq!(p.next_predicted(Some(CellId(9)), CellId(3)), None);
    }

    #[test]
    fn prediction_adapts_as_habits_change() {
        let mut p = PortableProfile::new(PortableId(7), 10);
        for _ in 0..10 {
            p.record(ev(Some(1), 2, 3));
        }
        assert_eq!(
            p.next_predicted(Some(CellId(1)), CellId(2)),
            Some(CellId(3))
        );
        // The user's habit changes; the bounded history forgets.
        for _ in 0..10 {
            p.record(ev(Some(1), 2, 4));
        }
        assert_eq!(
            p.next_predicted(Some(CellId(1)), CellId(2)),
            Some(CellId(4))
        );
    }

    #[test]
    fn unknown_prev_falls_back_to_current_cell_majority() {
        let mut p = PortableProfile::new(PortableId(7), 50);
        p.record(ev(Some(1), 2, 3));
        p.record(ev(Some(4), 2, 3));
        p.record(ev(Some(5), 2, 6));
        assert_eq!(p.next_predicted(None, CellId(2)), Some(CellId(3)));
    }

    #[test]
    fn empty_profile_predicts_nothing() {
        let p = PortableProfile::with_default_capacity(PortableId(1));
        assert_eq!(p.next_predicted(Some(CellId(0)), CellId(1)), None);
        assert_eq!(p.next_predicted(None, CellId(1)), None);
        assert_eq!(p.history_len(), 0);
    }

    #[test]
    fn triplets_enumerate() {
        let mut p = PortableProfile::new(PortableId(7), 50);
        p.record(ev(Some(1), 2, 3));
        p.record(ev(Some(2), 3, 4));
        let t: Vec<_> = p.triplets().collect();
        assert_eq!(t.len(), 2);
        assert!(t.contains(&(Some(CellId(1)), CellId(2), CellId(3))));
    }
}
