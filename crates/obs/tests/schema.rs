//! Schema-stability pin for the `RunReport` artifact.
//!
//! CI uploads run reports and downstream tooling diffs them across PRs,
//! so the field set must never drift silently. Changing the shape means
//! updating the pinned key lists here *and* bumping
//! `arm_obs::SCHEMA_VERSION` in the same change.

use arm_obs::{
    BenchEntry, ChaosSummary, EventCount, HistSummary, MetricsSummary, PhaseSummary, RunReport,
    SCHEMA_VERSION,
};

fn keys_of(v: &serde::Value) -> Vec<String> {
    v.as_object()
        .expect("serialized struct is a JSON object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

fn field<'a>(v: &'a serde::Value, name: &str) -> &'a serde::Value {
    let obj = v.as_object().expect("object");
    &obj.iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing field {name}"))
        .1
}

fn populated() -> RunReport {
    let hist = HistSummary {
        count: 1,
        mean: 0.0,
        p50: 0.0,
        p90: 0.0,
        p99: 0.0,
        min: 0.0,
        max: 0.0,
    };
    let mut r = RunReport::new("expt_pin", "schema");
    r.seed = Some(1);
    r.sim_events = Some(2);
    r.metrics = Some(MetricsSummary::default());
    r.phases = vec![PhaseSummary {
        phase: "admission".to_string(),
        spans: 1,
        wall_us: hist.clone(),
        sim_us: hist,
    }];
    r.events = vec![EventCount {
        kind: "AdmitDecision".to_string(),
        count: 1,
    }];
    r.chaos = Some(ChaosSummary::default());
    r.bench = vec![BenchEntry {
        label: "b".to_string(),
        mean_ns: 1.0,
    }];
    r.notes = vec!["n".to_string()];
    r
}

#[test]
fn schema_version_is_pinned() {
    assert_eq!(
        SCHEMA_VERSION, 1,
        "schema version changed: update every pinned key list in this file"
    );
}

#[test]
fn run_report_top_level_keys_are_pinned() {
    let json = populated().to_json().expect("serialize");
    let v: serde::Value = serde_json::from_str(&json).expect("parse");
    assert_eq!(
        keys_of(&v),
        [
            "schema",
            "bin",
            "scenario",
            "seed",
            "sim_events",
            "metrics",
            "phases",
            "events",
            "chaos",
            "bench",
            "notes",
        ],
        "RunReport fields changed: bump SCHEMA_VERSION and update this pin"
    );
}

#[test]
fn nested_section_keys_are_pinned() {
    let json = populated().to_json().expect("serialize");
    let v: serde::Value = serde_json::from_str(&json).expect("parse");

    let metrics = field(&v, "metrics");
    assert_eq!(
        keys_of(metrics),
        [
            "requests",
            "blocked",
            "completed",
            "handoff_attempts",
            "handoff_successes",
            "dropped",
            "claims_consumed",
            "p_b",
            "p_d",
        ],
        "MetricsSummary fields changed"
    );

    let phase = &field(&v, "phases").as_array().expect("array")[0];
    assert_eq!(
        keys_of(phase),
        ["phase", "spans", "wall_us", "sim_us"],
        "PhaseSummary fields changed"
    );
    assert_eq!(
        keys_of(field(phase, "wall_us")),
        ["count", "mean", "p50", "p90", "p99", "min", "max"],
        "HistSummary fields changed"
    );

    let event = &field(&v, "events").as_array().expect("array")[0];
    assert_eq!(
        keys_of(event),
        ["kind", "count"],
        "EventCount fields changed"
    );

    let chaos = field(&v, "chaos");
    assert_eq!(
        keys_of(chaos),
        [
            "schedules",
            "faults_applied",
            "invariant_checks",
            "lossy_maxmin_checks",
            "link_failures",
            "stale_profile_fallbacks",
            "handoff_signalling_failures",
            "lost_profile_updates",
        ],
        "ChaosSummary fields changed"
    );

    let bench = &field(&v, "bench").as_array().expect("array")[0];
    assert_eq!(
        keys_of(bench),
        ["label", "mean_ns"],
        "BenchEntry fields changed"
    );
}
