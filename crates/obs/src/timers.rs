//! Span-style phase timers.
//!
//! A phase is one named unit of control-plane work (an admission
//! round-trip, a maxmin re-solve, a prediction update). Each phase gets
//! two [`Histogram`]s: wall-clock microseconds (how expensive the code
//! is) and sim-time microseconds (how long the modelled system took).
//! The pattern is token-based rather than RAII so callers never hold a
//! borrow across the timed region:
//!
//! ```
//! # use arm_obs::{Obs, Phase};
//! # use arm_sim::time::SimTime;
//! let mut obs = Obs::recording(16);
//! let now = SimTime::from_secs(1);
//! let tok = obs.phase_start(now);
//! // ... do the work ...
//! obs.phase_end(Phase::Admission, tok, now);
//! ```
//!
//! When observation is off, [`Obs::phase_start`](crate::Obs::phase_start)
//! skips the `Instant::now()` syscall entirely and `phase_end` is a
//! no-op, so the disabled overhead is two branches.

use std::time::Instant;

use arm_sim::stats::Histogram;
use arm_sim::time::SimTime;

use crate::report::{HistSummary, PhaseSummary};

/// The named control-plane phases we time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// One admission round-trip (request → decision).
    Admission,
    /// A maxmin re-solve handled by the resident incremental engine.
    MaxminIncremental,
    /// A maxmin re-solve that fell back to the full solver.
    MaxminFull,
    /// A per-slot prediction update (predictor observe + claim sizing).
    PredictionUpdate,
    /// A claims refresh sweep.
    ClaimRefresh,
    /// One handoff (move → re-admit/claim drawdown → outcome).
    Handoff,
}

impl Phase {
    /// Every phase, in schema order.
    pub const ALL: [Phase; 6] = [
        Phase::Admission,
        Phase::MaxminIncremental,
        Phase::MaxminFull,
        Phase::PredictionUpdate,
        Phase::ClaimRefresh,
        Phase::Handoff,
    ];

    /// Stable kebab-case label (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::MaxminIncremental => "maxmin-incremental",
            Phase::MaxminFull => "maxmin-full",
            Phase::PredictionUpdate => "prediction-update",
            Phase::ClaimRefresh => "claim-refresh",
            Phase::Handoff => "handoff",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Admission => 0,
            Phase::MaxminIncremental => 1,
            Phase::MaxminFull => 2,
            Phase::PredictionUpdate => 3,
            Phase::ClaimRefresh => 4,
            Phase::Handoff => 5,
        }
    }
}

/// An in-flight phase measurement. `Copy` so callers can thread it
/// through control flow freely; dropping it without `phase_end` simply
/// records nothing.
#[derive(Clone, Copy, Debug)]
pub struct PhaseToken {
    pub(crate) wall: Option<Instant>,
    pub(crate) sim_start: SimTime,
}

impl PhaseToken {
    /// A token that records nothing (the disabled path).
    pub(crate) fn inert() -> Self {
        PhaseToken {
            wall: None,
            sim_start: SimTime::ZERO,
        }
    }
}

/// One phase's paired distributions.
#[derive(Clone, Debug)]
pub struct PhaseTimer {
    /// Wall-clock cost per span, microseconds.
    pub wall_us: Histogram,
    /// Sim-time elapsed per span, microseconds.
    pub sim_us: Histogram,
    spans: u64,
}

impl PhaseTimer {
    fn new() -> Self {
        PhaseTimer {
            // Control-plane work is typically well under a millisecond of
            // wall clock; min/max saturation keeps the tails honest when
            // a span lands outside the binned range.
            wall_us: Histogram::new(0.0, 5_000.0, 100),
            // Sim-time spans range from instantaneous (synchronous
            // solves) to multi-second protocol round-trips.
            sim_us: Histogram::new(0.0, 10_000_000.0, 100),
            spans: 0,
        }
    }

    /// Spans recorded.
    pub fn spans(&self) -> u64 {
        self.spans
    }
}

/// All phase timers, indexed by [`Phase`].
#[derive(Clone, Debug)]
pub struct PhaseTimers {
    timers: Vec<PhaseTimer>,
}

impl Default for PhaseTimers {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimers {
    /// Fresh, empty timers for every phase.
    pub fn new() -> Self {
        PhaseTimers {
            timers: Phase::ALL.iter().map(|_| PhaseTimer::new()).collect(),
        }
    }

    /// Record one finished span.
    pub fn record(&mut self, phase: Phase, token: PhaseToken, now: SimTime) {
        let Some(started) = token.wall else {
            return;
        };
        let idx = phase.index();
        let Some(timer) = self.timers.get_mut(idx) else {
            return;
        };
        let wall_us = started.elapsed().as_secs_f64() * 1e6;
        let sim_us = now.saturating_since(token.sim_start).as_secs_f64() * 1e6;
        timer.wall_us.record(wall_us);
        timer.sim_us.record(sim_us);
        timer.spans += 1;
    }

    /// This phase's timer.
    pub fn get(&self, phase: Phase) -> &PhaseTimer {
        // Construction guarantees one timer per phase; fall back to the
        // first slot rather than indexing (no-panic discipline).
        self.timers.get(phase.index()).unwrap_or(&self.timers[0])
    }

    /// Summaries for every phase that recorded at least one span.
    pub fn summaries(&self) -> Vec<PhaseSummary> {
        Phase::ALL
            .iter()
            .zip(&self.timers)
            .filter(|(_, t)| t.spans > 0)
            .map(|(p, t)| PhaseSummary {
                phase: p.name().to_string(),
                spans: t.spans,
                wall_us: HistSummary::of(&t.wall_us),
                sim_us: HistSummary::of(&t.sim_us),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_records_nothing() {
        let mut timers = PhaseTimers::new();
        timers.record(Phase::Admission, PhaseToken::inert(), SimTime::from_secs(5));
        assert_eq!(timers.get(Phase::Admission).spans(), 0);
        assert!(timers.summaries().is_empty());
    }

    #[test]
    fn live_token_records_both_clocks() {
        let mut timers = PhaseTimers::new();
        let tok = PhaseToken {
            wall: Some(Instant::now()),
            sim_start: SimTime::from_secs(1),
        };
        timers.record(Phase::MaxminFull, tok, SimTime::from_secs(3));
        let t = timers.get(Phase::MaxminFull);
        assert_eq!(t.spans(), 1);
        assert_eq!(t.sim_us.count(), 1);
        // 2 s of sim time = 2e6 µs.
        assert!((t.sim_us.max() - 2.0e6).abs() < 1.0);
        let sums = timers.summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].phase, "maxmin-full");
    }

    #[test]
    fn phase_labels_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }
}
