//! The typed event taxonomy.
//!
//! Every observable state change in the manager/maxmin/reservation
//! pipeline maps to exactly one [`ObsEvent`] variant carrying the
//! sim-time it happened at, the ids involved, and a short `cause`
//! string for the *why*. The taxonomy is deliberately closed: sinks,
//! counters, and the report schema all enumerate [`EventKind`], so a
//! new event class is an explicit schema change, never an ad-hoc
//! format string (see DESIGN.md §9).

use arm_net::ids::{CellId, ConnId, LinkId, PortableId};
use arm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Where a consumed advance-reservation claim was drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClaimSource {
    /// The destination cell's per-cell claim.
    CellTo,
    /// The origin cell's per-cell claim (corridor overlap).
    CellFrom,
    /// The shared dynamic pool `B_dyn`.
    DynPool,
}

impl ClaimSource {
    /// Stable lowercase label (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            ClaimSource::CellTo => "cell-to",
            ClaimSource::CellFrom => "cell-from",
            ClaimSource::DynPool => "dyn-pool",
        }
    }
}

/// One structured trace event.
///
/// Variants correspond 1:1 to the decision points named in the paper's
/// pipeline: admission (§5), maxmin adaptation rounds (§4), the
/// distributed protocol's ADVERTISE/UPDATE exchange, handoffs and the
/// claims they consume (§6), reservation slot rolls and dispatch
/// (§6.4), and injected faults (chaos harness).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// An admission decision for a new connection request.
    AdmitDecision {
        /// Sim-time of the decision.
        t: SimTime,
        /// The requesting connection (as assigned, even when blocked).
        conn: ConnId,
        /// The cell the portable requested from.
        cell: CellId,
        /// Whether the request was admitted.
        admitted: bool,
        /// Why (e.g. `admitted`, `blocked`).
        cause: String,
    },
    /// One maxmin re-solve over the network (incremental or full).
    MaxminRound {
        /// Sim-time of the round.
        t: SimTime,
        /// Whether the resident incremental engine handled it.
        incremental: bool,
        /// Connections whose rates were recomputed this round.
        conns_resolved: u64,
        /// Connections whose cached rates were reused.
        conns_reused: u64,
        /// What triggered the round (e.g. `admit`, `handoff`,
        /// `link-failed`, `eqn2-adaptation`).
        cause: String,
    },
    /// The distributed protocol sent an ADVERTISE packet.
    AdvertiseSent {
        /// Sim-time of the send.
        t: SimTime,
        /// The connection the advertisement is for.
        conn: ConnId,
        /// The link the packet targets.
        link: LinkId,
        /// The advertised rate (kbps).
        rate_kbps: f64,
    },
    /// The distributed protocol received an UPDATE (or ADVERTISE reply).
    UpdateRecv {
        /// Sim-time of the receive.
        t: SimTime,
        /// The connection the update is for.
        conn: ConnId,
        /// The link the packet came from.
        link: LinkId,
        /// The carried rate (kbps).
        rate_kbps: f64,
    },
    /// A handoff attempt finished.
    HandoffOutcome {
        /// Sim-time of the outcome.
        t: SimTime,
        /// The moving portable.
        portable: PortableId,
        /// The cell it left.
        from: CellId,
        /// The cell it entered.
        to: CellId,
        /// Connections that survived the handoff.
        carried: u64,
        /// Connections dropped by the handoff.
        dropped: u64,
        /// Why (e.g. `completed`, `signalling-failed`).
        cause: String,
    },
    /// A handoff drew bandwidth down from an advance-reservation claim.
    ClaimConsumed {
        /// Sim-time of the drawdown.
        t: SimTime,
        /// The cell whose claim was consumed.
        cell: CellId,
        /// The connection the bandwidth now backs.
        conn: ConnId,
        /// How much was drawn (kbps).
        kbps: f64,
        /// Which pool it came from.
        source: ClaimSource,
    },
    /// The reservation slot clock rolled to a new slot.
    ReservationSlotRolled {
        /// Sim-time of the roll.
        t: SimTime,
        /// The slot index just entered.
        slot: u64,
    },
    /// The §6.4 dispatcher chose a reservation strategy for a portable.
    ReservationDispatch {
        /// Sim-time of the decision.
        t: SimTime,
        /// The portable being dispatched for.
        portable: PortableId,
        /// The decision, as its stable label (e.g. `per-connection`,
        /// `class-policy`).
        decision: String,
    },
    /// The chaos/fault layer injected a fault.
    FaultInjected {
        /// Sim-time of the injection.
        t: SimTime,
        /// What was injected (e.g. `link-failed`, `profile-server-down`).
        fault: String,
    },
    /// The server ingestion layer rejected one input line. The stream
    /// always continues past a rejection — this event (plus the
    /// server's rejection counter) is how the skip is surfaced instead
    /// of aborting.
    IngestRejected {
        /// Sim-time of the last accepted event when the line arrived.
        t: SimTime,
        /// Stable reason slug (`malformed`, `non-finite`,
        /// `negative-rate`, `out-of-order`, `unknown-entity`,
        /// `invalid-parameter`).
        reason: String,
        /// Human-readable detail (offending field or parser message).
        detail: String,
    },
}

/// Discriminant-only view of [`ObsEvent`], for counting and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// [`ObsEvent::AdmitDecision`].
    AdmitDecision,
    /// [`ObsEvent::MaxminRound`].
    MaxminRound,
    /// [`ObsEvent::AdvertiseSent`].
    AdvertiseSent,
    /// [`ObsEvent::UpdateRecv`].
    UpdateRecv,
    /// [`ObsEvent::HandoffOutcome`].
    HandoffOutcome,
    /// [`ObsEvent::ClaimConsumed`].
    ClaimConsumed,
    /// [`ObsEvent::ReservationSlotRolled`].
    ReservationSlotRolled,
    /// [`ObsEvent::ReservationDispatch`].
    ReservationDispatch,
    /// [`ObsEvent::FaultInjected`].
    FaultInjected,
    /// [`ObsEvent::IngestRejected`].
    IngestRejected,
}

impl EventKind {
    /// Every kind, in schema order.
    pub const ALL: [EventKind; 10] = [
        EventKind::AdmitDecision,
        EventKind::MaxminRound,
        EventKind::AdvertiseSent,
        EventKind::UpdateRecv,
        EventKind::HandoffOutcome,
        EventKind::ClaimConsumed,
        EventKind::ReservationSlotRolled,
        EventKind::ReservationDispatch,
        EventKind::FaultInjected,
        EventKind::IngestRejected,
    ];

    /// Stable name (matches the `ObsEvent` variant and report schema).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::AdmitDecision => "AdmitDecision",
            EventKind::MaxminRound => "MaxminRound",
            EventKind::AdvertiseSent => "AdvertiseSent",
            EventKind::UpdateRecv => "UpdateRecv",
            EventKind::HandoffOutcome => "HandoffOutcome",
            EventKind::ClaimConsumed => "ClaimConsumed",
            EventKind::ReservationSlotRolled => "ReservationSlotRolled",
            EventKind::ReservationDispatch => "ReservationDispatch",
            EventKind::FaultInjected => "FaultInjected",
            EventKind::IngestRejected => "IngestRejected",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            EventKind::AdmitDecision => 0,
            EventKind::MaxminRound => 1,
            EventKind::AdvertiseSent => 2,
            EventKind::UpdateRecv => 3,
            EventKind::HandoffOutcome => 4,
            EventKind::ClaimConsumed => 5,
            EventKind::ReservationSlotRolled => 6,
            EventKind::ReservationDispatch => 7,
            EventKind::FaultInjected => 8,
            EventKind::IngestRejected => 9,
        }
    }
}

impl ObsEvent {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            ObsEvent::AdmitDecision { .. } => EventKind::AdmitDecision,
            ObsEvent::MaxminRound { .. } => EventKind::MaxminRound,
            ObsEvent::AdvertiseSent { .. } => EventKind::AdvertiseSent,
            ObsEvent::UpdateRecv { .. } => EventKind::UpdateRecv,
            ObsEvent::HandoffOutcome { .. } => EventKind::HandoffOutcome,
            ObsEvent::ClaimConsumed { .. } => EventKind::ClaimConsumed,
            ObsEvent::ReservationSlotRolled { .. } => EventKind::ReservationSlotRolled,
            ObsEvent::ReservationDispatch { .. } => EventKind::ReservationDispatch,
            ObsEvent::FaultInjected { .. } => EventKind::FaultInjected,
            ObsEvent::IngestRejected { .. } => EventKind::IngestRejected,
        }
    }

    /// The sim-time the event happened at.
    pub fn time(&self) -> SimTime {
        match self {
            ObsEvent::AdmitDecision { t, .. }
            | ObsEvent::MaxminRound { t, .. }
            | ObsEvent::AdvertiseSent { t, .. }
            | ObsEvent::UpdateRecv { t, .. }
            | ObsEvent::HandoffOutcome { t, .. }
            | ObsEvent::ClaimConsumed { t, .. }
            | ObsEvent::ReservationSlotRolled { t, .. }
            | ObsEvent::ReservationDispatch { t, .. }
            | ObsEvent::FaultInjected { t, .. }
            | ObsEvent::IngestRejected { t, .. } => *t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trip_and_indexing() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn events_serialize_and_round_trip() {
        let ev = ObsEvent::AdmitDecision {
            t: SimTime::from_secs(3),
            conn: ConnId(7),
            cell: CellId(2),
            admitted: false,
            cause: "blocked".to_string(),
        };
        let json = serde_json::to_string(&ev).expect("serializable");
        assert!(json.contains("AdmitDecision"), "{json}");
        let back: ObsEvent = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, ev);
        assert_eq!(back.kind(), EventKind::AdmitDecision);
        assert_eq!(back.time(), SimTime::from_secs(3));
    }

    #[test]
    fn claim_source_labels() {
        assert_eq!(ClaimSource::CellTo.name(), "cell-to");
        assert_eq!(ClaimSource::DynPool.name(), "dyn-pool");
    }
}
