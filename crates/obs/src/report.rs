//! The `RunReport` artifact.
//!
//! One JSON document per run, emitted by every `expt_*` bin and the
//! chaos soak, unifying the §7 scenario metrics, per-phase timing
//! distributions, event counts, chaos invariant context, and bench
//! output into one comparable schema. The schema is pinned by
//! `SCHEMA_VERSION` plus a key-stability test (`tests/schema.rs`):
//! adding a field means bumping the version *and* the pinned key list,
//! never a silent drift.

use serde::{Deserialize, Serialize};

use arm_sim::stats::Histogram;

/// Bump when the report shape changes (with the pinned key list in
/// `tests/schema.rs`).
pub const SCHEMA_VERSION: u32 = 1;

/// Summary statistics of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// True recorded minimum.
    pub min: f64,
    /// True recorded maximum.
    pub max: f64,
}

impl HistSummary {
    /// Summarise a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            min: h.min(),
            max: h.max(),
        }
    }
}

/// One phase's timing summary (see [`crate::Phase`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// The phase label.
    pub phase: String,
    /// Spans recorded.
    pub spans: u64,
    /// Wall-clock cost per span, microseconds.
    pub wall_us: HistSummary,
    /// Sim-time elapsed per span, microseconds.
    pub sim_us: HistSummary,
}

/// How many times one event kind fired.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventCount {
    /// The event kind's stable name.
    pub kind: String,
    /// Occurrences.
    pub count: u64,
}

/// The §7 scenario-level outcome metrics (mirrors
/// `arm_core::metrics::Metrics`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// New-connection requests.
    pub requests: u64,
    /// Requests blocked at admission.
    pub blocked: u64,
    /// Connections that ran to completion.
    pub completed: u64,
    /// Handoff attempts.
    pub handoff_attempts: u64,
    /// Handoffs that carried every connection.
    pub handoff_successes: u64,
    /// Connections dropped mid-call.
    pub dropped: u64,
    /// Advance-reservation claims consumed.
    pub claims_consumed: u64,
    /// Blocking probability `P_b`.
    pub p_b: f64,
    /// Dropping probability `P_d`.
    pub p_d: f64,
}

/// Chaos-soak context: what was injected and what was checked.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Fault schedules executed.
    pub schedules: u64,
    /// Individual faults applied.
    pub faults_applied: u64,
    /// Per-event invariant evaluations that all held.
    pub invariant_checks: u64,
    /// Lossy-maxmin convergence checks.
    pub lossy_maxmin_checks: u64,
    /// Link failures survived.
    pub link_failures: u64,
    /// Stale-profile fallbacks taken.
    pub stale_profile_fallbacks: u64,
    /// Handoff signalling failures injected.
    pub handoff_signalling_failures: u64,
    /// Profile updates lost.
    pub lost_profile_updates: u64,
}

/// One bench measurement line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// What was measured (e.g. `incremental/10000-conns`).
    pub label: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
}

/// The per-run artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// The emitting binary (e.g. `expt_fig2`).
    pub bin: String,
    /// The scenario or experiment label within the bin.
    pub scenario: String,
    /// The driving seed, when the run is seeded.
    pub seed: Option<u64>,
    /// Simulator events dispatched, when an engine ran.
    pub sim_events: Option<u64>,
    /// Scenario outcome metrics, when a scenario ran.
    pub metrics: Option<MetricsSummary>,
    /// Per-phase timing distributions (empty when observation was off).
    pub phases: Vec<PhaseSummary>,
    /// Event counts by kind (empty when observation was off).
    pub events: Vec<EventCount>,
    /// Chaos context, for soak runs.
    pub chaos: Option<ChaosSummary>,
    /// Bench measurements, for bench-style bins.
    pub bench: Vec<BenchEntry>,
    /// Freeform annotations (never parsed; for humans).
    pub notes: Vec<String>,
}

impl RunReport {
    /// An empty report for `bin`/`scenario` at the current schema.
    pub fn new(bin: &str, scenario: &str) -> Self {
        RunReport {
            schema: SCHEMA_VERSION,
            bin: bin.to_string(),
            scenario: scenario.to_string(),
            seed: None,
            sim_events: None,
            metrics: None,
            phases: Vec::new(),
            events: Vec::new(),
            chaos: None,
            bench: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a report back, checking the schema version.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let report: RunReport = serde_json::from_str(s)?;
        if report.schema != SCHEMA_VERSION {
            return Err(serde::Error::custom(format!(
                "run report schema {} != supported {SCHEMA_VERSION}",
                report.schema
            ))
            .into());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> RunReport {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(250.0);
        let mut r = RunReport::new("expt_test", "office");
        r.seed = Some(42);
        r.sim_events = Some(1234);
        r.metrics = Some(MetricsSummary {
            requests: 100,
            blocked: 3,
            completed: 90,
            handoff_attempts: 40,
            handoff_successes: 39,
            dropped: 1,
            claims_consumed: 12,
            p_b: 0.03,
            p_d: 0.025,
        });
        r.phases = vec![PhaseSummary {
            phase: "admission".to_string(),
            spans: 2,
            wall_us: HistSummary::of(&h),
            sim_us: HistSummary::of(&h),
        }];
        r.events = vec![EventCount {
            kind: "AdmitDecision".to_string(),
            count: 100,
        }];
        r.chaos = Some(ChaosSummary {
            schedules: 20,
            faults_applied: 31,
            invariant_checks: 9000,
            lossy_maxmin_checks: 5,
            link_failures: 7,
            stale_profile_fallbacks: 2,
            handoff_signalling_failures: 1,
            lost_profile_updates: 3,
        });
        r.bench = vec![BenchEntry {
            label: "maxmin/quick".to_string(),
            mean_ns: 1520.5,
        }];
        r.notes = vec!["reference run".to_string()];
        r
    }

    #[test]
    fn fully_populated_report_round_trips() {
        let r = populated();
        let json = r.to_json().expect("serialize");
        let back = RunReport::from_json(&json).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = RunReport::new("expt_min", "none");
        let back = RunReport::from_json(&r.to_json().expect("serialize")).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.schema, SCHEMA_VERSION);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = RunReport::new("expt_min", "none");
        r.schema = SCHEMA_VERSION + 1;
        let json = serde_json::to_string(&r).expect("serialize");
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn hist_summary_uses_saturated_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(15.0);
        h.record(20.0);
        let s = HistSummary::of(&h);
        // Overflow mass reports the true max, not the range ceiling.
        assert_eq!(s.p99, 20.0);
        assert_eq!(s.max, 20.0);
        assert_eq!(s.count, 2);
    }
}
