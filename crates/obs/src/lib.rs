//! Structured observability for the resource-management stack.
//!
//! Three pieces (DESIGN.md §9):
//!
//! 1. **Typed events** ([`ObsEvent`]) emitted at every decision point —
//!    admission, maxmin rounds, ADVERTISE/UPDATE exchanges, handoffs,
//!    claim drawdowns, slot rolls, dispatch, fault injection — routed to
//!    a pluggable [`TraceSink`] (in-memory ring or JSONL stream).
//! 2. **Phase timers** ([`Phase`]) giving wall-clock *and* sim-time
//!    distributions per control-plane phase, backed by the simulator's
//!    own `Histogram`.
//! 3. **Run reports** ([`RunReport`]) — the one JSON artifact every
//!    `expt_*` bin and the chaos soak emit, so runs are comparable
//!    across seeds, strategies, and PRs.
//!
//! The cardinal rule: observation is *passive*. No instrumented
//! component ever reads back anything from the observer, so
//! [`ObsConfig::off`] (the default everywhere) is guaranteed to leave
//! results bit-identical — asserted by the differential test in
//! `arm_core`. The disabled cost is one branch per site and no
//! syscalls.

use std::cell::RefCell;
use std::fmt;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use arm_sim::time::SimTime;

pub mod event;
pub mod report;
pub mod sink;
pub mod timers;

pub use event::{ClaimSource, EventKind, ObsEvent};
pub use report::{
    BenchEntry, ChaosSummary, EventCount, HistSummary, MetricsSummary, PhaseSummary, RunReport,
    SCHEMA_VERSION,
};
pub use sink::{JsonlSink, RingSink, TraceSink};
pub use timers::{Phase, PhaseTimers, PhaseToken};

/// How to build an [`Obs`] for a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off means: no sink, no counters, no timers, no
    /// syscalls — bit-identical results.
    pub enabled: bool,
    /// Ring capacity when no JSONL path is given.
    pub ring_capacity: usize,
    /// Stream events to this JSONL file instead of the ring.
    pub jsonl_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Observation disabled (the default for every entry point).
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// In-memory ring retaining the last `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: capacity,
            jsonl_path: None,
        }
    }

    /// Stream events to a JSONL file.
    pub fn jsonl(path: PathBuf) -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 0,
            jsonl_path: Some(path),
        }
    }

    /// Build the observer. Fails only if a JSONL file cannot be created.
    pub fn build(&self) -> std::io::Result<Obs> {
        if !self.enabled {
            return Ok(Obs::off());
        }
        match &self.jsonl_path {
            Some(p) => Ok(Obs::with_sink(Box::new(JsonlSink::create(p)?))),
            None => Ok(Obs::recording(self.ring_capacity)),
        }
    }
}

/// The observer facade every instrumented component holds.
///
/// All emission funnels through [`Obs::emit_with`], which takes a
/// closure so the disabled path never even constructs the event.
pub struct Obs {
    on: bool,
    sink: Option<Box<dyn TraceSink>>,
    counts: [u64; EventKind::ALL.len()],
    timers: PhaseTimers,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("on", &self.on)
            .field("events", &self.total_events())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::off()
    }
}

impl Obs {
    /// The disabled observer (every instrumented type's default).
    pub fn off() -> Self {
        Obs {
            on: false,
            sink: None,
            counts: [0; EventKind::ALL.len()],
            timers: PhaseTimers::new(),
        }
    }

    /// An enabled observer retaining the last `capacity` events.
    pub fn recording(capacity: usize) -> Self {
        Obs::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// An enabled observer with a custom sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Obs {
            on: true,
            sink: Some(sink),
            counts: [0; EventKind::ALL.len()],
            timers: PhaseTimers::new(),
        }
    }

    /// Is observation enabled?
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Emit an event, constructing it only when enabled.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> ObsEvent) {
        if self.on {
            self.emit(f());
        }
    }

    /// Emit an already-constructed event.
    pub fn emit(&mut self, ev: ObsEvent) {
        if !self.on {
            return;
        }
        let idx = ev.kind().index();
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        if let Some(sink) = &mut self.sink {
            sink.record(&ev);
        }
    }

    /// Start timing a phase. When disabled this skips the clock syscall
    /// and returns an inert token, so `phase_end` records nothing.
    #[inline]
    pub fn phase_start(&self, now: SimTime) -> PhaseToken {
        if self.on {
            PhaseToken {
                wall: Some(Instant::now()),
                sim_start: now,
            }
        } else {
            PhaseToken::inert()
        }
    }

    /// Finish timing a phase started with [`Obs::phase_start`].
    #[inline]
    pub fn phase_end(&mut self, phase: Phase, token: PhaseToken, now: SimTime) {
        if self.on {
            self.timers.record(phase, token, now);
        }
    }

    /// How many times `kind` fired.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts.get(kind.index()).copied().unwrap_or(0)
    }

    /// Total events emitted.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Non-zero event counts, in schema order.
    pub fn event_counts(&self) -> Vec<EventCount> {
        EventKind::ALL
            .iter()
            .filter(|k| self.count(**k) > 0)
            .map(|k| EventCount {
                kind: k.name().to_string(),
                count: self.count(*k),
            })
            .collect()
    }

    /// Summaries of every phase that recorded spans.
    pub fn phase_summaries(&self) -> Vec<PhaseSummary> {
        self.timers.summaries()
    }

    /// The phase timers (read access for tests / reports).
    pub fn timers(&self) -> &PhaseTimers {
        &self.timers
    }

    /// The sink's retained events (empty when off or write-through).
    pub fn snapshot_events(&self) -> Vec<ObsEvent> {
        self.sink.as_ref().map(|s| s.snapshot()).unwrap_or_default()
    }

    /// Flush the sink.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }

    /// Fill a report's `phases` and `events` sections from this observer.
    pub fn fill_report(&self, report: &mut RunReport) {
        report.phases = self.phase_summaries();
        report.events = self.event_counts();
    }

    /// Wrap in the shared handle cloneable components hold.
    pub fn into_shared(self) -> SharedObs {
        Rc::new(RefCell::new(self))
    }
}

/// The handle held by components that are themselves `Clone` (e.g. the
/// distributed maxmin solver): cheap to clone, absent by default.
pub type SharedObs = Rc<RefCell<Obs>>;

#[cfg(test)]
mod tests {
    use super::*;
    use arm_net::ids::{CellId, ConnId};

    fn admit(sec: u64, admitted: bool) -> ObsEvent {
        ObsEvent::AdmitDecision {
            t: SimTime::from_secs(sec),
            conn: ConnId(1),
            cell: CellId(2),
            admitted,
            cause: if admitted { "admitted" } else { "blocked" }.to_string(),
        }
    }

    #[test]
    fn off_is_inert_and_allocation_free() {
        let mut obs = Obs::off();
        assert!(!obs.is_on());
        let mut constructed = false;
        obs.emit_with(|| {
            constructed = true;
            admit(1, true)
        });
        assert!(!constructed, "closure must not run when off");
        let tok = obs.phase_start(SimTime::from_secs(1));
        assert!(tok.wall.is_none(), "no clock syscall when off");
        obs.phase_end(Phase::Admission, tok, SimTime::from_secs(2));
        assert_eq!(obs.total_events(), 0);
        assert!(obs.event_counts().is_empty());
        assert!(obs.phase_summaries().is_empty());
        assert!(obs.snapshot_events().is_empty());
    }

    #[test]
    fn recording_counts_and_retains() {
        let mut obs = Obs::recording(8);
        obs.emit_with(|| admit(1, true));
        obs.emit_with(|| admit(2, false));
        assert_eq!(obs.count(EventKind::AdmitDecision), 2);
        assert_eq!(obs.total_events(), 2);
        let counts = obs.event_counts();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].kind, "AdmitDecision");
        assert_eq!(counts[0].count, 2);
        assert_eq!(obs.snapshot_events().len(), 2);
    }

    #[test]
    fn phase_timing_round_trip() {
        let mut obs = Obs::recording(1);
        let tok = obs.phase_start(SimTime::from_secs(10));
        obs.phase_end(Phase::Handoff, tok, SimTime::from_secs(11));
        let sums = obs.phase_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].phase, "handoff");
        assert_eq!(sums[0].spans, 1);
        assert!((sums[0].sim_us.max - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn config_builds_matching_observer() {
        assert!(!ObsConfig::off().build().expect("build").is_on());
        assert!(ObsConfig::ring(4).build().expect("build").is_on());
    }

    #[test]
    fn fill_report_populates_sections() {
        let mut obs = Obs::recording(4);
        obs.emit_with(|| admit(1, true));
        let mut r = RunReport::new("test", "unit");
        obs.fill_report(&mut r);
        assert_eq!(r.events.len(), 1);
        let json = r.to_json().expect("serialize");
        assert_eq!(RunReport::from_json(&json).expect("parse"), r);
    }
}
