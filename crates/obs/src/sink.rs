//! Trace sinks: where emitted events go.
//!
//! Two implementations cover the repo's needs: [`RingSink`] retains the
//! last `N` events in memory (tests, differential runs, post-mortem on
//! an invariant failure) and [`JsonlSink`] streams every event as one
//! JSON line to a writer (artifacts, offline analysis). Sinks observe —
//! they never mutate model state and are not consulted by it, which is
//! what makes the `ObsConfig::off()` bit-identicality guarantee cheap
//! to uphold.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::ObsEvent;

/// A consumer of emitted events.
pub trait TraceSink {
    /// Accept one event.
    fn record(&mut self, ev: &ObsEvent);

    /// Flush any buffered output.
    fn flush(&mut self) {}

    /// The retained events, oldest first (empty for write-through sinks).
    fn snapshot(&self) -> Vec<ObsEvent> {
        Vec::new()
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Clone, Debug, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<ObsEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events (0 retains nothing but
    /// still counts drops).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &ObsEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }

    fn snapshot(&self) -> Vec<ObsEvent> {
        self.buf.iter().cloned().collect()
    }
}

/// Streams each event as one JSON line.
///
/// I/O errors are counted, not propagated: observation must never turn
/// into a control-plane failure mid-run. Check [`JsonlSink::errors`]
/// (or the final flush) if the artifact matters.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    lines: u64,
    errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            lines: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Serialization or write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &ObsEvent) {
        match serde_json::to_string(ev) {
            Ok(line) => {
                if writeln!(self.w, "{line}").is_ok() {
                    self.lines += 1;
                } else {
                    self.errors += 1;
                }
            }
            Err(_) => self.errors += 1,
        }
    }

    fn flush(&mut self) {
        if self.w.flush().is_err() {
            self.errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_net::ids::{CellId, ConnId};
    use arm_sim::time::SimTime;

    fn ev(sec: u64) -> ObsEvent {
        ObsEvent::AdmitDecision {
            t: SimTime::from_secs(sec),
            conn: ConnId(1),
            cell: CellId(2),
            admitted: true,
            cause: "admitted".to_string(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut s = RingSink::new(2);
        s.record(&ev(1));
        s.record(&ev(2));
        s.record(&ev(3));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].time(), SimTime::from_secs(2));
        assert_eq!(snap[1].time(), SimTime::from_secs(3));
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let mut s = RingSink::new(0);
        s.record(&ev(1));
        assert!(s.snapshot().is_empty());
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn jsonl_writes_one_parseable_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(&ev(1));
        s.record(&ev(2));
        s.flush();
        assert_eq!(s.lines(), 2);
        assert_eq!(s.errors(), 0);
        let text = String::from_utf8(s.w).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: ObsEvent = serde_json::from_str(line).expect("parseable");
            assert_eq!(back.time(), SimTime::from_secs(i as u64 + 1));
        }
    }
}
