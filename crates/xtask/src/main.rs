//! Workspace task runner. `cargo xtask check` is the pre-PR gate: it
//! runs the domain lints over every library crate and the bounded
//! model-checking sweep of the maxmin/admission protocols, and fails
//! with actionable diagnostics (lint findings as `file:line` lines,
//! model failures as minimal counterexample traces).
//!
//! Subcommands:
//!
//! * `check` — lints + model sweep (what CI runs);
//! * `lint`  — domain lints only (fast; run while editing);
//! * `model` — the model-checking sweep only.
//!
//! `--trace-dir <dir>` writes any counterexample as JSON into `dir`
//! (CI uploads these as artifacts on failure).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use arm_check::lints::run_lints;
use arm_check::model::sweep::sweep_all;
use arm_check::model::Counterexample;

/// The sweep's wall-clock budget: the proof must stay cheap enough to
/// gate every PR.
const SWEEP_BUDGET_MS: u64 = 60_000;

fn workspace_root() -> PathBuf {
    // xtask always runs from within the workspace via the cargo alias;
    // the manifest dir is crates/xtask.
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .expect("invariant: crates/xtask sits two levels below the root")
        .to_path_buf()
}

fn run_lint_pass(root: &Path) -> Result<(), ExitCode> {
    println!("==> domain lints ({})", root.display());
    match run_lints(root) {
        Ok(findings) if findings.is_empty() => {
            println!("    clean");
            Ok(())
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("error: {} domain lint finding(s)", findings.len());
            Err(ExitCode::FAILURE)
        }
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn write_trace(trace_dir: Option<&Path>, cx: &Counterexample) {
    let Some(dir) = trace_dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!(
        "counterexample-{}.json",
        cx.model.replace(['/', ' '], "_")
    ));
    match serde_json::to_string(cx) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("    trace written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize counterexample: {e}"),
    }
}

fn run_model_pass(trace_dir: Option<&Path>) -> Result<(), ExitCode> {
    println!("==> bounded model check (all topologies ≤3 links, ≤4 connections)");
    match sweep_all() {
        Ok(report) => {
            println!(
                "    verified: {} runs, {} states, {} transitions in {} ms",
                report.runs, report.states, report.transitions, report.elapsed_ms
            );
            if report.elapsed_ms > SWEEP_BUDGET_MS {
                eprintln!(
                    "error: sweep exceeded its {SWEEP_BUDGET_MS} ms budget ({} ms)",
                    report.elapsed_ms
                );
                return Err(ExitCode::FAILURE);
            }
            Ok(())
        }
        Err(cx) => {
            eprintln!("{cx}");
            write_trace(trace_dir, &cx);
            eprintln!("error: model checking found a protocol violation");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "check".to_string());
    let mut trace_dir = None;
    let mut rest = Vec::new();
    while let Some(a) = args.next() {
        if a == "--trace-dir" {
            match args.next() {
                Some(d) => trace_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("error: --trace-dir needs a path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(a);
        }
    }
    if !rest.is_empty() {
        eprintln!("error: unexpected arguments: {rest:?}");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let td = trace_dir.as_deref();
    let result = match cmd.as_str() {
        "check" => run_lint_pass(&root).and_then(|()| run_model_pass(td)),
        "lint" => run_lint_pass(&root),
        "model" => run_model_pass(td),
        "help" | "--help" | "-h" => {
            println!("usage: cargo xtask [check|lint|model] [--trace-dir DIR]");
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand `{other}` (try `cargo xtask help`)");
            Err(ExitCode::FAILURE)
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
