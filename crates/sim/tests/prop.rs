//! Property-based tests for the simulation kernel invariants.

use arm_sim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, and equal-time events
    /// pop in insertion order, for arbitrary schedules.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ticks(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated among equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule_at(SimTime::from_ticks(*t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask[*i % cancel_mask.len()] {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(*i);
            }
        }
        prop_assert_eq!(q.len(), expect.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, _, idx)) = q.pop() {
            popped.push(idx);
        }
        popped.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(popped, expect);
    }

    /// The time-weighted mean always lies within [min, max] of the inputs.
    #[test]
    fn time_weighted_mean_bounded(
        samples in prop::collection::vec((0u64..10_000, -1000.0f64..1000.0), 1..50)
    ) {
        let mut ordered = samples.clone();
        ordered.sort_by_key(|(t, _)| *t);
        let mut tw = arm_sim::stats::TimeWeighted::new();
        for (t, v) in &ordered {
            tw.record(SimTime::from_ticks(*t), *v);
        }
        let lo = ordered.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let hi = ordered.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let end = SimTime::from_ticks(ordered.last().unwrap().0 + 100);
        let mean = tw.mean(end);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean={} lo={} hi={}", mean, lo, hi);
    }

    /// Histogram never loses samples: count equals under + bins + over.
    #[test]
    fn histogram_conserves_mass(xs in prop::collection::vec(-50.0f64..150.0, 0..500)) {
        let mut h = arm_sim::stats::Histogram::new(0.0, 100.0, 20);
        for x in &xs {
            h.record(*x);
        }
        let (under, bins, over) = h.raw();
        let total = under + bins.iter().sum::<u64>() + over;
        prop_assert_eq!(total, xs.len() as u64);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..300)) {
        let mut h = arm_sim::stats::Histogram::new(0.0, 100.0, 50);
        for x in &xs {
            h.record(*x);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]) + 1e-9);
        }
    }

    /// Time-series total equals the sum of recorded amounts.
    #[test]
    fn time_series_conserves_total(
        points in prop::collection::vec((0u64..100_000, 0.0f64..10.0), 0..200)
    ) {
        let mut ts = arm_sim::stats::TimeSeries::new(SimDuration::from_secs(1));
        let mut expect = 0.0;
        for (t, v) in &points {
            ts.add(SimTime::from_ticks(*t), *v);
            expect += v;
        }
        prop_assert!((ts.total() - expect).abs() < 1e-6);
    }

    /// Split RNG streams from distinct labels never produce the same first
    /// draws (independence smoke test), and the same label reproduces.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let root = arm_sim::SimRng::new(seed);
        let mut a = root.split(&label);
        let mut b = root.split(&label);
        use rand::RngCore;
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Binomial sample is always within [0, n].
    #[test]
    fn binomial_in_range(seed in any::<u64>(), n in 0u32..200, p in 0.0f64..1.0) {
        let mut rng = arm_sim::SimRng::new(seed);
        let k = rng.binomial(n, p);
        prop_assert!(k <= n);
    }

    /// Exponential samples are nonnegative and finite.
    #[test]
    fn exp_nonnegative(seed in any::<u64>(), rate in 0.001f64..100.0) {
        let mut rng = arm_sim::SimRng::new(seed);
        for _ in 0..50 {
            let x = rng.exp(rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }
}
