//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. The counter gives two
//! properties the simulation depends on:
//!
//! * **Determinism** — events scheduled for the same instant fire in the
//!   order they were scheduled, on every platform, every run.
//! * **Causality for control protocols** — the distributed rate-allocation
//!   protocol (§5.3.1 of the paper) requires that a switch receiving both
//!   an UPDATE and an ADVERTISE "simultaneously" processes the UPDATE
//!   first; the caller achieves this by scheduling the UPDATE first.
//!
//! Cancellation is lazy: a cancelled id goes into a tombstone set and the
//! entry is dropped when it surfaces. This keeps `cancel` O(log n) amortised
//! without the complexity of an indexed heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::event::EventId;
use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// `E` is the caller's event payload — typically an enum covering every
/// event kind in the model (packet arrival, timer expiry, handoff, ...).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids scheduled but not yet fired nor cancelled.
    pending: HashSet<u64>,
    /// Ids cancelled while pending; tombstones drained lazily.
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    fired_total: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Ordering is on (time, seq) only; payload never participates.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            fired_total: 0,
        }
    }

    /// Current virtual time: the timestamp of the last event popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling into the past would break
    /// causality silently, which is the worst possible failure mode for a
    /// simulation, so it is rejected loudly.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending.insert(seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            payload,
        }));
        EventId(seq)
    }

    /// Schedule `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: crate::time::SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it already fired, was already cancelled, or
    /// never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.is_none() || !self.pending.remove(&id.0) {
            return false;
        }
        // Tombstone; the heap entry is dropped when it surfaces in `pop`.
        self.cancelled.insert(id.0);
        true
    }

    /// Remove and return the next event `(time, id, payload)`, advancing
    /// the clock to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // tombstoned
            }
            debug_assert!(entry.time >= self.now);
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            self.fired_total += 1;
            return Some((entry.time, EventId(entry.seq), entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so the answer is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (for run reports).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever fired (for run reports).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        q.schedule_at(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel is a no-op");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(!q.cancel(a), "cancelling a fired event reports false");
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "y");
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_at(SimTime::from_secs(9), "y");
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.fired_total(), 1);
    }
}
