//! # arm-sim — deterministic discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace runs on. Lu &
//! Bharghavan's SIGCOMM '96 paper is a pure-simulation paper: all of its
//! algorithms (admission control, maxmin rate adaptation, profile-based
//! advance reservation) are evaluated by discrete-event simulation. This
//! crate provides that machinery:
//!
//! * [`SimTime`] / [`SimDuration`] — integer virtual time (microsecond
//!   ticks) so runs are exactly reproducible and never drift,
//! * [`EventQueue`] — a calendar queue with stable FIFO ordering among
//!   same-timestamp events and O(log n) cancellation,
//! * [`Engine`] / [`Model`] — a synchronous event loop in the smoltcp
//!   spirit (no async runtime; the network being simulated is virtual),
//! * [`rng`] — a seeded, splittable random source plus the distributions
//!   the paper's workload model needs (exponential holding times, Poisson
//!   arrivals, Bernoulli handoff decisions, binomial counts),
//! * [`stats`] — counters, time-weighted averages, histograms and series
//!   collectors used to produce every figure in the evaluation.
//!
//! ## Determinism contract
//!
//! Given the same seed and the same sequence of API calls, a simulation
//! built on this crate produces bit-identical results on every platform.
//! The kernel guarantees this by using integer time, a stable tie-break
//! sequence number in the event queue, and a counter-based RNG splitter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod faults;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Model, StopCondition};
pub use event::EventId;
pub use faults::{FaultEvent, FaultKind, FaultSchedule, FaultScheduleParams};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
