//! Deterministic fault injection for robustness testing.
//!
//! The paper's algorithms are evaluated on a clean simulated network;
//! this module supplies the adversarial counterpart: a seeded,
//! reproducible schedule of faults — control-packet loss/delay windows,
//! link outages, zone profile-server outages, and handoff-signalling
//! failures — emitted as a time-sorted event list that a driver replays
//! against the resource manager exactly like
//! `arm_mobility::channel::ChannelEvent`s.
//!
//! The layer is deliberately dumb about the entities it disturbs:
//! links, zones, and portables are opaque `u32` indices that the
//! consumer maps onto its own id types. That keeps `arm-sim` free of
//! upward dependencies and lets the same schedule drive any topology.
//!
//! Windows generated for the same resource may overlap; consumers must
//! treat redundant `Down`/`Up` events as idempotent (a second `Down`
//! on a dead link is a no-op, the first `Up` revives it).

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimRng, SimTime};

/// What goes wrong.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Open a control-plane degradation window: from now on each
    /// control packet is independently dropped with probability `loss`
    /// and, if it survives, delayed (causing reordering) with
    /// probability `delay_prob`. Both in `[0, 1)`.
    ControlDegradeStart {
        /// Per-packet drop probability.
        loss: f64,
        /// Per-packet extra-delay probability.
        delay_prob: f64,
    },
    /// Close the control-plane degradation window.
    ControlDegradeEnd,
    /// A link (wired or wireless) fails; its usable capacity drops to
    /// the floors already admitted on it.
    LinkDown {
        /// Opaque link index, mapped by the consumer.
        link: u32,
    },
    /// The link comes back.
    LinkUp {
        /// Opaque link index, mapped by the consumer.
        link: u32,
    },
    /// A zone's profile server stops answering; predictions and
    /// profile updates for its cells are unavailable until `Up`.
    ProfileServerDown {
        /// Opaque zone index, mapped by the consumer.
        zone: u32,
    },
    /// The zone's profile server recovers (with stale profiles).
    ProfileServerUp {
        /// Opaque zone index, mapped by the consumer.
        zone: u32,
    },
    /// The next handoff attempted by this portable loses its
    /// signalling: advance reservations cannot be consumed.
    HandoffSignallingFailure {
        /// Opaque portable index, mapped by the consumer.
        portable: u32,
    },
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub time: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Knobs for [`FaultSchedule::generate`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultScheduleParams {
    /// Horizon; every window closes at or before this.
    pub span: SimDuration,
    /// Number of link indices to draw from (0 disables link faults).
    pub links: u32,
    /// Number of zone indices to draw from (0 disables server faults).
    pub zones: u32,
    /// Number of portable indices (0 disables handoff faults).
    pub portables: u32,
    /// How many link outage windows to inject.
    pub link_outages: u32,
    /// Mean (exponential) link outage duration.
    pub mean_link_outage: SimDuration,
    /// How many profile-server outage windows to inject.
    pub server_outages: u32,
    /// Mean (exponential) server outage duration.
    pub mean_server_outage: SimDuration,
    /// How many control-plane degradation windows to inject.
    pub control_windows: u32,
    /// Mean (exponential) degradation window duration.
    pub mean_control_window: SimDuration,
    /// Upper bound on the per-packet loss probability of a window.
    pub max_loss: f64,
    /// Upper bound on the per-packet delay probability of a window.
    pub max_delay_prob: f64,
    /// How many handoff signalling failures to inject.
    pub handoff_failures: u32,
}

impl Default for FaultScheduleParams {
    fn default() -> Self {
        FaultScheduleParams {
            span: SimDuration::from_mins(60),
            links: 0,
            zones: 0,
            portables: 0,
            link_outages: 3,
            mean_link_outage: SimDuration::from_secs(90),
            server_outages: 2,
            mean_server_outage: SimDuration::from_mins(5),
            control_windows: 3,
            mean_control_window: SimDuration::from_mins(2),
            max_loss: 0.5,
            max_delay_prob: 0.5,
            handoff_failures: 4,
        }
    }
}

/// A time-sorted list of [`FaultEvent`]s.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The schedule with no faults; replaying it is a no-op.
    pub fn empty() -> Self {
        FaultSchedule { events: Vec::new() }
    }

    /// Build a schedule from explicit events (stably sorted by time).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        FaultSchedule { events }
    }

    /// Draw a random schedule. Deterministic in (`params`, `rng` seed);
    /// the caller's rng is not consumed (an independent stream is
    /// split off), so adding fault generation never perturbs the rest
    /// of a seeded scenario.
    pub fn generate(params: &FaultScheduleParams, rng: &SimRng) -> Self {
        let mut rng = rng.split("faults");
        let mut events = Vec::new();
        let span = params.span.as_secs_f64().max(0.0);

        let window = |rng: &mut SimRng, mean: SimDuration| -> (SimTime, SimTime) {
            let start = SimTime::from_secs_f64(rng.uniform(0.0, span));
            let end = (start + rng.exp_duration(mean)).min(SimTime::ZERO + params.span);
            (start, end)
        };

        if params.links > 0 {
            for _ in 0..params.link_outages {
                let link = rng.int_range(0, params.links as u64 - 1) as u32;
                let (start, end) = window(&mut rng, params.mean_link_outage);
                events.push(FaultEvent {
                    time: start,
                    kind: FaultKind::LinkDown { link },
                });
                events.push(FaultEvent {
                    time: end,
                    kind: FaultKind::LinkUp { link },
                });
            }
        }
        if params.zones > 0 {
            for _ in 0..params.server_outages {
                let zone = rng.int_range(0, params.zones as u64 - 1) as u32;
                let (start, end) = window(&mut rng, params.mean_server_outage);
                events.push(FaultEvent {
                    time: start,
                    kind: FaultKind::ProfileServerDown { zone },
                });
                events.push(FaultEvent {
                    time: end,
                    kind: FaultKind::ProfileServerUp { zone },
                });
            }
        }
        for _ in 0..params.control_windows {
            let loss = rng.uniform(0.0, params.max_loss.clamp(0.0, 0.999));
            let delay_prob = rng.uniform(0.0, params.max_delay_prob.clamp(0.0, 0.999));
            let (start, end) = window(&mut rng, params.mean_control_window);
            events.push(FaultEvent {
                time: start,
                kind: FaultKind::ControlDegradeStart { loss, delay_prob },
            });
            events.push(FaultEvent {
                time: end,
                kind: FaultKind::ControlDegradeEnd,
            });
        }
        if params.portables > 0 {
            for _ in 0..params.handoff_failures {
                let portable = rng.int_range(0, params.portables as u64 - 1) as u32;
                events.push(FaultEvent {
                    time: SimTime::from_secs_f64(rng.uniform(0.0, span)),
                    kind: FaultKind::HandoffSignallingFailure { portable },
                });
            }
        }
        Self::from_events(events)
    }

    /// The events, in non-decreasing time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when replaying the schedule would do nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_params() -> FaultScheduleParams {
        FaultScheduleParams {
            links: 6,
            zones: 2,
            portables: 30,
            ..FaultScheduleParams::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultSchedule::generate(&full_params(), &SimRng::new(7));
        let b = FaultSchedule::generate(&full_params(), &SimRng::new(7));
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&full_params(), &SimRng::new(8));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn events_are_time_sorted_and_within_span() {
        let p = full_params();
        let sched = FaultSchedule::generate(&p, &SimRng::new(3));
        let horizon = SimTime::ZERO + p.span;
        let mut prev = SimTime::ZERO;
        for e in sched.events() {
            assert!(e.time >= prev, "events out of order");
            assert!(e.time <= horizon, "event beyond span");
            prev = e.time;
        }
        assert_eq!(
            sched.len(),
            (p.link_outages * 2 + p.server_outages * 2 + p.control_windows * 2 + p.handoff_failures)
                as usize
        );
    }

    #[test]
    fn every_down_has_a_matching_up() {
        let sched = FaultSchedule::generate(&full_params(), &SimRng::new(11));
        let mut link_depth = 0i64;
        let mut zone_depth = 0i64;
        let mut ctrl_depth = 0i64;
        for e in sched.events() {
            match e.kind {
                FaultKind::LinkDown { .. } => link_depth += 1,
                FaultKind::LinkUp { .. } => link_depth -= 1,
                FaultKind::ProfileServerDown { .. } => zone_depth += 1,
                FaultKind::ProfileServerUp { .. } => zone_depth -= 1,
                FaultKind::ControlDegradeStart { loss, delay_prob } => {
                    assert!((0.0..1.0).contains(&loss));
                    assert!((0.0..1.0).contains(&delay_prob));
                    ctrl_depth += 1;
                }
                FaultKind::ControlDegradeEnd => ctrl_depth -= 1,
                FaultKind::HandoffSignallingFailure { .. } => {}
            }
        }
        assert_eq!(link_depth, 0);
        assert_eq!(zone_depth, 0);
        assert_eq!(ctrl_depth, 0);
    }

    #[test]
    fn zero_counts_make_an_empty_schedule() {
        let p = FaultScheduleParams {
            link_outages: 0,
            server_outages: 0,
            control_windows: 0,
            handoff_failures: 0,
            ..full_params()
        };
        let sched = FaultSchedule::generate(&p, &SimRng::new(1));
        assert!(sched.is_empty());
        assert!(FaultSchedule::empty().is_empty());
    }

    #[test]
    fn generation_does_not_consume_the_callers_rng() {
        let base = SimRng::new(42);
        let mut a = base.split("scenario");
        let _ = FaultSchedule::generate(&full_params(), &base);
        let mut b = base.split("scenario");
        for _ in 0..16 {
            assert_eq!(a.unit(), b.unit());
        }
    }
}
