//! Lightweight structured run traces.
//!
//! A [`Tracer`] records `(time, subsystem, message)` triples when enabled
//! and costs one branch when disabled. Experiment binaries turn it on with
//! `--trace` to show, e.g., every ADVERTISE/UPDATE exchange of the rate
//! protocol or every reservation decision of a meeting-room base station.

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time at which the event was recorded.
    pub time: SimTime,
    /// Subsystem tag, e.g. `"maxmin"` or `"resv"`.
    pub subsystem: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Collector of trace records; disabled by default.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
    echo: bool,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled tracer that stores records in memory.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
            echo: false,
        }
    }

    /// Also print each record to stderr as it is recorded.
    pub fn with_echo(mut self) -> Self {
        self.echo = true;
        self
    }

    /// Is tracing on? Callers may use this to skip building messages.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a message (no-op when disabled).
    pub fn record(&mut self, time: SimTime, subsystem: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        let rec = TraceRecord {
            time,
            subsystem,
            message: message.into(),
        };
        if self.echo {
            eprintln!("[{}] {}: {}", rec.time, rec.subsystem, rec.message);
        }
        self.records.push(rec);
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records from one subsystem.
    pub fn by_subsystem<'a>(
        &'a self,
        subsystem: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.subsystem == subsystem)
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Record into a tracer without building the message when tracing is off.
///
/// ```
/// use arm_sim::trace::Tracer;
/// use arm_sim::{sim_trace, SimTime};
/// let mut t = Tracer::enabled();
/// sim_trace!(t, SimTime::ZERO, "demo", "x = {}", 42);
/// assert_eq!(t.records()[0].message, "x = 42");
/// ```
#[macro_export]
macro_rules! sim_trace {
    ($tracer:expr, $time:expr, $subsystem:expr, $($arg:tt)*) => {
        if $tracer.is_enabled() {
            $tracer.record($time, $subsystem, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, "x", "hello");
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_and_filters() {
        let mut t = Tracer::enabled();
        t.record(SimTime::from_secs(1), "maxmin", "advertise");
        t.record(SimTime::from_secs(2), "resv", "reserve 3");
        t.record(SimTime::from_secs(3), "maxmin", "update");
        assert_eq!(t.records().len(), 3);
        let maxmin: Vec<_> = t.by_subsystem("maxmin").collect();
        assert_eq!(maxmin.len(), 2);
        assert_eq!(maxmin[1].message, "update");
        t.clear();
        assert!(t.records().is_empty());
    }

    #[test]
    fn macro_skips_formatting_when_disabled() {
        let mut t = Tracer::disabled();
        // Would panic if evaluated.
        #[allow(unreachable_code)]
        {
            sim_trace!(t, SimTime::ZERO, "x", "{}", {
                if t.is_enabled() {
                    panic!("should not format")
                };
                1
            });
        }
        assert!(t.records().is_empty());
    }
}
