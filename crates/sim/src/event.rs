//! Event identity.
//!
//! Every scheduled event gets a unique [`EventId`] so callers can cancel
//! timers (the paper's meeting-room algorithm arms and disarms release
//! timers; the adaptation algorithm re-arms per-link monitors).

use core::fmt;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Ids are unique within one [`EventQueue`](crate::EventQueue) and are never
/// reused, so a stale id held after its event fired (or was cancelled) is
/// harmless: cancelling it is a no-op that reports `false`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// A sentinel id that no real event will ever carry.
    pub const NONE: EventId = EventId(u64::MAX);

    /// True if this is the sentinel id.
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// Raw value, exposed for logging/trace output only.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "EventId(NONE)")
        } else {
            write!(f, "EventId({})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel() {
        assert!(EventId::NONE.is_none());
        assert!(!EventId(0).is_none());
        assert_eq!(format!("{:?}", EventId::NONE), "EventId(NONE)");
        assert_eq!(format!("{:?}", EventId(7)), "EventId(7)");
    }
}
