//! The event loop.
//!
//! [`Engine`] owns an [`EventQueue`] and repeatedly dispatches the earliest
//! event to a user-supplied [`Model`]. The model receives a [`Ctx`] through
//! which it can read the clock and schedule or cancel further events — the
//! only ways a model may influence the future, which is what keeps runs
//! reproducible.

use crate::event::EventId;
use crate::queue::EventQueue;
use crate::time::SimTime;

/// Scheduling context handed to the model on every dispatch.
pub struct Ctx<'a, E> {
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule an event at an absolute instant.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) -> EventId {
        self.queue.schedule_at(at, ev)
    }

    /// Schedule an event after a delay from now.
    pub fn schedule_after(&mut self, after: crate::time::SimDuration, ev: E) -> EventId {
        self.queue.schedule_after(after, ev)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Ask the engine to stop after this dispatch returns.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A simulation model: the single dispatch point for every event kind.
pub trait Model {
    /// The event payload type.
    type Event;

    /// Handle one event. `ctx` is the only channel back into the future.
    fn handle(&mut self, ev: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// The event queue drained.
    QueueEmpty,
    /// The time horizon passed; the clock stops at the horizon.
    HorizonReached,
    /// The model called [`Ctx::stop`].
    ModelStopped,
    /// The event budget was exhausted (runaway-model guard).
    EventBudgetExhausted,
}

/// Drives a [`Model`] over an [`EventQueue`].
pub struct Engine<M: Model> {
    queue: EventQueue<M::Event>,
    model: M,
    /// Hard cap on dispatched events, as a guard against accidental
    /// self-perpetuating event storms. Default: effectively unlimited.
    event_budget: u64,
    /// Events dispatched over the engine's lifetime (all runs). Feeds
    /// run reports; `arm_sim` sits below the observability crate, so
    /// this is a plain counter rather than an `arm_obs` hook.
    dispatched_total: u64,
}

impl<M: Model> Engine<M> {
    /// Wrap a model with a fresh queue at time zero.
    pub fn new(model: M) -> Self {
        Engine {
            queue: EventQueue::new(),
            model,
            event_budget: u64::MAX,
            dispatched_total: 0,
        }
    }

    /// Cap the total number of events this engine will dispatch.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to read out statistics after a run).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events dispatched so far, across every run of this engine.
    pub fn dispatched(&self) -> u64 {
        self.dispatched_total
    }

    /// Seed the queue before (or between) runs.
    pub fn schedule_at(&mut self, at: SimTime, ev: M::Event) -> EventId {
        self.queue.schedule_at(at, ev)
    }

    /// Run until the queue drains or the model stops.
    pub fn run(&mut self) -> StopCondition {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, the model stops, or the next event would
    /// fire strictly after `horizon`. Events *at* the horizon still fire.
    pub fn run_until(&mut self, horizon: SimTime) -> StopCondition {
        let mut dispatched: u64 = 0;
        loop {
            match self.queue.peek_time() {
                None => return StopCondition::QueueEmpty,
                Some(t) if t > horizon => return StopCondition::HorizonReached,
                Some(_) => {}
            }
            if dispatched >= self.event_budget {
                return StopCondition::EventBudgetExhausted;
            }
            let (_, _, ev) = self
                .queue
                .pop()
                .expect("invariant: a successful peek means pop returns an event");
            dispatched += 1;
            self.dispatched_total += 1;
            let mut stop = false;
            let mut ctx = Ctx {
                queue: &mut self.queue,
                stop_requested: &mut stop,
            };
            self.model.handle(ev, &mut ctx);
            if stop {
                return StopCondition::ModelStopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that re-arms a periodic tick and counts how often it fired.
    struct Ticker {
        period: SimDuration,
        fired: Vec<SimTime>,
        stop_after: usize,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
            self.fired.push(ctx.now());
            if self.fired.len() >= self.stop_after {
                ctx.stop();
            } else {
                ctx.schedule_after(self.period, ());
            }
        }
    }

    #[test]
    fn periodic_model_runs_and_stops() {
        let mut engine = Engine::new(Ticker {
            period: SimDuration::from_secs(2),
            fired: Vec::new(),
            stop_after: 4,
        });
        engine.schedule_at(SimTime::from_secs(1), ());
        let stop = engine.run();
        assert_eq!(stop, StopCondition::ModelStopped);
        assert_eq!(engine.dispatched(), 4);
        assert_eq!(
            engine.model().fired,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(3),
                SimTime::from_secs(5),
                SimTime::from_secs(7)
            ]
        );
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut engine = Engine::new(Ticker {
            period: SimDuration::from_secs(10),
            fired: Vec::new(),
            stop_after: usize::MAX,
        });
        engine.schedule_at(SimTime::from_secs(5), ());
        let stop = engine.run_until(SimTime::from_secs(20));
        assert_eq!(stop, StopCondition::HorizonReached);
        // Fired at 5 and 15; the event at 25 is beyond the horizon.
        assert_eq!(engine.model().fired.len(), 2);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn event_at_horizon_still_fires() {
        let mut engine = Engine::new(Ticker {
            period: SimDuration::from_secs(10),
            fired: Vec::new(),
            stop_after: usize::MAX,
        });
        engine.schedule_at(SimTime::from_secs(20), ());
        engine.run_until(SimTime::from_secs(20));
        assert_eq!(engine.model().fired, vec![SimTime::from_secs(20)]);
    }

    #[test]
    fn empty_queue_reports_drained() {
        let mut engine = Engine::new(Ticker {
            period: SimDuration::from_secs(1),
            fired: Vec::new(),
            stop_after: 3,
        });
        assert_eq!(engine.run(), StopCondition::QueueEmpty);
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Storm;
        impl Model for Storm {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
                // Re-arms itself forever at the same instant + 1 tick.
                ctx.schedule_after(SimDuration::from_ticks(1), ());
            }
        }
        let mut engine = Engine::new(Storm).with_event_budget(1000);
        engine.schedule_at(SimTime::ZERO, ());
        assert_eq!(engine.run(), StopCondition::EventBudgetExhausted);
    }
}
