//! Seeded randomness and the distributions the paper's models draw from.
//!
//! Everything stochastic in the workspace flows through [`SimRng`]:
//!
//! * **exponential** connection holding times (`1/μ` in §6.3),
//! * **Poisson** new-connection arrival processes (`λ` in §6.3),
//! * **Bernoulli** handoff-vs-terminate decisions (`h_q`),
//! * **binomial** counts (the probabilistic reservation model, eqns 3–4),
//! * weighted **choice** (next-cell selection from a cell-profile row),
//! * **uniform** jitter for mobility models.
//!
//! [`SimRng::split`] derives an independent child stream from a label, so
//! subsystems (workload, mobility, channel) can be re-ordered or added
//! without perturbing each other's draws — a requirement for meaningful
//! A/B comparisons between reservation algorithms on the *same* workload.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// Deterministic random source for one subsystem of a simulation.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream from a textual label.
    ///
    /// The child seed mixes the parent seed with an FNV-1a hash of the
    /// label, so `split("workload")` and `split("mobility")` never collide
    /// and do not consume draws from the parent.
    pub fn split(&self, label: &str) -> SimRng {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // splitmix64 finalizer to decorrelate nearby seeds.
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Derive an independent child stream from an integer index (e.g. one
    /// stream per portable).
    pub fn split_index(&self, label: &str, index: u64) -> SimRng {
        self.split(label).split(&index.to_string())
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    ///
    /// Uses inversion: `-ln(1 - U) / rate`, with `1 - U ∈ (0, 1]` so the
    /// logarithm never sees zero.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0,
            "precondition: exponential rate must be positive (callers validate \
             scenario-supplied means before sampling)"
        );
        let u = 1.0 - self.unit(); // in (0, 1]
        -u.ln() / rate
    }

    /// Exponential inter-arrival / holding time as a [`SimDuration`],
    /// given a mean duration.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        assert!(
            !mean.is_zero(),
            "precondition: mean duration must be positive (callers validate \
             scenario-supplied dwell/holding times before sampling)"
        );
        let secs = self.exp(1.0 / mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// Binomial variate `B(n, p)` by direct simulation.
    ///
    /// `n` in this workspace is a connection count (tens), so the O(n) loop
    /// is both exact and cheap; no approximation is needed.
    pub fn binomial(&mut self, n: u32, p: f64) -> u32 {
        if p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mut k = 0;
        for _ in 0..n {
            if self.unit() < p {
                k += 1;
            }
        }
        k
    }

    /// Poisson variate with the given mean, via Knuth's product method for
    /// small means and a normal approximation above 30 (counts per slot in
    /// the cafeteria model stay far below that in practice).
    pub fn poisson(&mut self, mean: f64) -> u32 {
        assert!(
            mean >= 0.0,
            "precondition: Poisson mean must be non-negative"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= self.unit();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let g = self.gaussian();
            let v = mean + mean.sqrt() * g + 0.5;
            if v < 0.0 {
                0
            } else {
                v as u32
            }
        }
    }

    /// Standard normal variate (Box–Muller; one value per call).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pick an index according to non-negative weights. Returns `None` when
    /// every weight is zero (callers fall back to a default policy).
    pub fn weighted_choice(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if x < *w {
                return Some(i);
            }
            x -= *w;
        }
        // Float round-off: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

// Snapshot support: a stream is its originating seed plus the raw
// xoshiro256++ state words, so a restored stream resumes exactly where
// the checkpoint left it (not at the seed). Manual impls because the
// inner generator lives in the vendored `rand` crate.
impl serde::Serialize for SimRng {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("state".to_string(), self.inner.state().to_vec().to_value()),
        ])
    }
}

impl serde::Deserialize for SimRng {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("SimRng: expected object"))?;
        let seed: u64 = serde::from_field(obj, "seed", "SimRng")?;
        let words: Vec<u64> = serde::from_field(obj, "state", "SimRng")?;
        let state: [u64; 4] = words
            .try_into()
            .map_err(|_| serde::Error::custom("SimRng: state must hold exactly 4 words"))?;
        Ok(SimRng {
            inner: SmallRng::from_state(state),
            seed,
        })
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut w1 = root.split("workload");
        let mut w2 = root.split("workload");
        let mut m = root.split("mobility");
        assert_eq!(w1.next_u64(), w2.next_u64(), "same label, same stream");
        // Overwhelmingly unlikely to collide if streams differ.
        assert_ne!(w1.next_u64(), m.next_u64());
        let mut i0 = root.split_index("portable", 0);
        let mut i1 = root.split_index("portable", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn serde_round_trip_resumes_mid_stream() {
        use serde::{Deserialize, Serialize};
        let mut a = SimRng::new(42);
        for _ in 0..13 {
            a.next_u64();
        }
        let v = a.to_value();
        let mut b = SimRng::from_value(&v).expect("round trip");
        assert_eq!(b.seed(), 42);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64(), "restored stream must resume");
        }
        let bad = serde::Value::Object(vec![
            ("seed".to_string(), 1u64.to_value()),
            ("state".to_string(), vec![1u64, 2].to_value()),
        ]);
        assert!(SimRng::from_value(&bad).is_err(), "short state rejected");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let rate = 2.5;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exp_duration_mean() {
        let mut rng = SimRng::new(2);
        let mean = SimDuration::from_secs(10);
        let n = 50_000;
        let avg: f64 = (0..n)
            .map(|_| rng.exp_duration(mean).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((avg - 10.0).abs() < 0.2, "avg={avg}");
    }

    #[test]
    fn binomial_moments() {
        let mut rng = SimRng::new(3);
        let (n_trials, n, p) = (100_000, 20u32, 0.3);
        let mean: f64 = (0..n_trials)
            .map(|_| f64::from(rng.binomial(n, p)))
            .sum::<f64>()
            / n_trials as f64;
        assert!((mean - 6.0).abs() < 0.05, "mean={mean}");
        assert_eq!(rng.binomial(10, 0.0), 0);
        assert_eq!(rng.binomial(10, 1.0), 10);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SimRng::new(4);
        for target in [0.5, 4.0, 50.0] {
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| f64::from(rng.poisson(target))).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() < target.max(1.0) * 0.03,
                "target={target} mean={mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::new(6);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_choice(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight never picked");
        let ratio = f64::from(counts[1]) / f64::from(counts[2]);
        assert!((ratio - 3.0).abs() < 0.2, "ratio={ratio}");
        assert_eq!(rng.weighted_choice(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_choice(&[]), None);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }
}
