//! Measurement instruments.
//!
//! Every number reported in EXPERIMENTS.md comes out of one of these
//! collectors: plain [`Counter`]s (handoffs, drops, blocks), a
//! [`TimeWeighted`] average (link utilisation, reserved bandwidth),
//! a [`Histogram`] (delay distributions), and a [`TimeSeries`] (the
//! per-minute handoff activity curves of Figures 2 and 5).

use crate::time::{SimDuration, SimTime};

/// A monotone event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// This counter as a fraction of a total (0 when the total is 0).
    ///
    /// `drops.ratio_of(&attempts)` is the paper's handoff dropping
    /// probability `P_d`; `blocks.ratio_of(&requests)` is `P_b`.
    pub fn ratio_of(&self, total: &Counter) -> f64 {
        if total.count == 0 {
            0.0
        } else {
            self.count as f64 / total.count as f64
        }
    }
}

/// Mean of a value weighted by how long it held each level.
///
/// `record(t, v)` says "the value became `v` at time `t`"; the average is
/// the integral of the step function divided by elapsed time.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    started: bool,
    min: f64,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
            started: false,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record that the observed value became `value` at time `now`.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if self.started {
            debug_assert!(now >= self.last_time, "observations must be in time order");
            let dt = now.since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
        } else {
            self.start = now;
            self.started = true;
        }
        self.last_time = now;
        self.last_value = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Time-weighted mean over `[first record, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let tail = now.saturating_since(self.last_time).as_secs_f64();
        let total = now.saturating_since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// Smallest value ever recorded (0 if none).
    pub fn min(&self) -> f64 {
        if self.started {
            self.min
        } else {
            0.0
        }
    }

    /// Largest value ever recorded (0 if none).
    pub fn max(&self) -> f64 {
        if self.started {
            self.max
        } else {
            0.0
        }
    }

    /// The most recently recorded value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    sum_sq: f64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sample standard deviation (0 if fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Approximate quantile from bin boundaries (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + width * (i as f64 + 1.0);
            }
        }
        self.hi
    }

    /// The raw bin counts, with `(underflow, bins, overflow)` layout.
    pub fn raw(&self) -> (u64, &[u64], u64) {
        (self.underflow, &self.bins, self.overflow)
    }
}

/// Values bucketed into fixed-width time slots — the instrument behind
/// the paper's per-minute handoff activity plots.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    slot: SimDuration,
    slots: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given slot width.
    pub fn new(slot: SimDuration) -> Self {
        assert!(!slot.is_zero());
        TimeSeries {
            slot,
            slots: Vec::new(),
        }
    }

    /// Slot width.
    pub fn slot_width(&self) -> SimDuration {
        self.slot
    }

    /// Add `amount` to the slot containing `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = (at.ticks() / self.slot.ticks()) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0.0);
        }
        self.slots[idx] += amount;
    }

    /// Count one event in the slot containing `at`.
    pub fn incr(&mut self, at: SimTime) {
        self.add(at, 1.0);
    }

    /// The slot values, padded with zeros up to `upto` if requested.
    pub fn values(&self) -> &[f64] {
        &self.slots
    }

    /// `(slot_start_seconds, value)` pairs for printing.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * self.slot.as_secs_f64(), *v))
            .collect()
    }

    /// Sum over every slot.
    pub fn total(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Index of the peak slot, or `None` when empty.
    pub fn peak_slot(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in series"))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_ratio() {
        let mut drops = Counter::new();
        let mut attempts = Counter::new();
        attempts.add(10);
        drops.incr();
        drops.incr();
        assert_eq!(drops.get(), 2);
        assert!((drops.ratio_of(&attempts) - 0.2).abs() < 1e-12);
        assert_eq!(Counter::new().ratio_of(&Counter::new()), 0.0);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(0), 10.0);
        tw.record(SimTime::from_secs(10), 20.0);
        // 10s at 10.0, then 10s at 20.0 → mean 15.0 at t=20.
        assert!((tw.mean(SimTime::from_secs(20)) - 15.0).abs() < 1e-9);
        assert_eq!(tw.min(), 10.0);
        assert_eq!(tw.max(), 20.0);
        assert_eq!(tw.current(), 20.0);
    }

    #[test]
    fn time_weighted_empty_and_instant() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(SimTime::from_secs(5)), 0.0);
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    fn histogram_moments_and_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [1.0, 1.5, 2.5, 9.9, -1.0, 12.0] {
            h.record(x);
        }
        let (under, bins, over) = h.raw();
        assert_eq!(under, 1);
        assert_eq!(over, 1);
        assert_eq!(bins[1], 2); // 1.0, 1.5
        assert_eq!(bins[2], 1); // 2.5
        assert_eq!(bins[9], 1); // 9.9
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 25.9 / 6.0).abs() < 1e-9);
        assert!(h.stddev() > 0.0);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5);
        assert!((median - 50.0).abs() <= 1.0, "median={median}");
        assert!(h.quantile(1.0) >= 99.0);
    }

    #[test]
    fn time_series_slots() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.incr(SimTime::from_secs(30)); // slot 0
        ts.incr(SimTime::from_secs(59)); // slot 0
        ts.incr(SimTime::from_secs(60)); // slot 1
        ts.add(SimTime::from_secs(200), 5.0); // slot 3
        assert_eq!(ts.values(), &[2.0, 1.0, 0.0, 5.0]);
        assert_eq!(ts.total(), 8.0);
        assert_eq!(ts.peak_slot(), Some(3));
        let pts = ts.points();
        assert_eq!(pts[1], (60.0, 1.0));
    }

    #[test]
    fn time_series_empty() {
        let ts = TimeSeries::new(SimDuration::from_secs(1));
        assert!(ts.values().is_empty());
        assert_eq!(ts.peak_slot(), None);
        assert_eq!(ts.total(), 0.0);
    }
}
