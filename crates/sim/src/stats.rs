//! Measurement instruments.
//!
//! Every number reported in EXPERIMENTS.md comes out of one of these
//! collectors: plain [`Counter`]s (handoffs, drops, blocks), a
//! [`TimeWeighted`] average (link utilisation, reserved bandwidth),
//! a [`Histogram`] (delay distributions), and a [`TimeSeries`] (the
//! per-minute handoff activity curves of Figures 2 and 5).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotone event counter.
///
/// Serializable so long-running servers can checkpoint metrics
/// mid-stream and restore them bit-identically.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// This counter as a fraction of a total (0 when the total is 0).
    ///
    /// `drops.ratio_of(&attempts)` is the paper's handoff dropping
    /// probability `P_d`; `blocks.ratio_of(&requests)` is `P_b`.
    pub fn ratio_of(&self, total: &Counter) -> f64 {
        if total.count == 0 {
            0.0
        } else {
            self.count as f64 / total.count as f64
        }
    }
}

/// Mean of a value weighted by how long it held each level.
///
/// `record(t, v)` says "the value became `v` at time `t`"; the average is
/// the integral of the step function divided by elapsed time.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    started: bool,
    min: f64,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
            started: false,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record that the observed value became `value` at time `now`.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if self.started {
            debug_assert!(now >= self.last_time, "observations must be in time order");
            let dt = now.since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
        } else {
            self.start = now;
            self.started = true;
        }
        self.last_time = now;
        self.last_value = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Time-weighted mean over `[first record, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let tail = now.saturating_since(self.last_time).as_secs_f64();
        let total = now.saturating_since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// Smallest value ever recorded (0 if none).
    pub fn min(&self) -> f64 {
        if self.started {
            self.min
        } else {
            0.0
        }
    }

    /// Largest value ever recorded (0 if none).
    pub fn max(&self) -> f64 {
        if self.started {
            self.max
        } else {
            0.0
        }
    }

    /// The most recently recorded value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sample standard deviation (0 if fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Smallest sample ever recorded (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample ever recorded (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile from bin boundaries (`q` in `[0, 1]`).
    ///
    /// Estimates are saturated to the true recorded `[min, max]`: `q=0`
    /// reports the recorded minimum (not the histogram floor `lo`), and
    /// mass in the overflow bin reports the recorded maximum rather than
    /// the range ceiling `hi`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        if target == 0 {
            // q = 0: the smallest recorded sample, by definition.
            return self.min;
        }
        let mut seen = self.underflow;
        if seen >= target {
            // The target rank falls in the underflow bin: everything there
            // is < lo, so `lo` is an upper bound — saturate to the true
            // recorded range.
            return self.lo.clamp(self.min, self.max);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (self.lo + width * (i as f64 + 1.0)).clamp(self.min, self.max);
            }
        }
        // The target rank falls in the overflow bin: the recorded maximum
        // is the tightest bound we track, not the range ceiling `hi`.
        self.max
    }

    /// The raw bin counts, with `(underflow, bins, overflow)` layout.
    pub fn raw(&self) -> (u64, &[u64], u64) {
        (self.underflow, &self.bins, self.overflow)
    }
}

/// Values bucketed into fixed-width time slots — the instrument behind
/// the paper's per-minute handoff activity plots.
///
/// Serializable for snapshot/restore; a restored series with a zero
/// slot width is rejected at the snapshot layer, which validates
/// before handing state back to the manager.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    slot: SimDuration,
    slots: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given slot width.
    pub fn new(slot: SimDuration) -> Self {
        assert!(!slot.is_zero());
        TimeSeries {
            slot,
            slots: Vec::new(),
        }
    }

    /// Slot width.
    pub fn slot_width(&self) -> SimDuration {
        self.slot
    }

    /// Add `amount` to the slot containing `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = (at.ticks() / self.slot.ticks()) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0.0);
        }
        self.slots[idx] += amount;
    }

    /// Count one event in the slot containing `at`.
    pub fn incr(&mut self, at: SimTime) {
        self.add(at, 1.0);
    }

    /// The slot values, ending at the last slot that received data.
    ///
    /// Trailing quiet slots are absent: a run that ends in silence yields
    /// a shorter vector than the run's span. Use [`Self::values_padded`]
    /// when series from different seeds must align by length.
    pub fn values(&self) -> &[f64] {
        &self.slots
    }

    /// The slot values, zero-padded so every slot up to `upto` is present.
    ///
    /// The result covers `ceil(upto / slot_width)` slots (never fewer than
    /// the recorded ones), so per-seed series over the same span align by
    /// length even when a seed's run ends in a quiet period.
    pub fn values_padded(&self, upto: SimTime) -> Vec<f64> {
        let want = upto.ticks().div_ceil(self.slot.ticks()) as usize;
        let mut v = self.slots.clone();
        if v.len() < want {
            v.resize(want, 0.0);
        }
        v
    }

    /// `(slot_start_seconds, value)` pairs for printing.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * self.slot.as_secs_f64(), *v))
            .collect()
    }

    /// Sum over every slot.
    pub fn total(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Index of the peak slot, or `None` when empty.
    pub fn peak_slot(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_ratio() {
        let mut drops = Counter::new();
        let mut attempts = Counter::new();
        attempts.add(10);
        drops.incr();
        drops.incr();
        assert_eq!(drops.get(), 2);
        assert!((drops.ratio_of(&attempts) - 0.2).abs() < 1e-12);
        assert_eq!(Counter::new().ratio_of(&Counter::new()), 0.0);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(0), 10.0);
        tw.record(SimTime::from_secs(10), 20.0);
        // 10s at 10.0, then 10s at 20.0 → mean 15.0 at t=20.
        assert!((tw.mean(SimTime::from_secs(20)) - 15.0).abs() < 1e-9);
        assert_eq!(tw.min(), 10.0);
        assert_eq!(tw.max(), 20.0);
        assert_eq!(tw.current(), 20.0);
    }

    #[test]
    fn time_weighted_empty_and_instant() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(SimTime::from_secs(5)), 0.0);
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    fn histogram_moments_and_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [1.0, 1.5, 2.5, 9.9, -1.0, 12.0] {
            h.record(x);
        }
        let (under, bins, over) = h.raw();
        assert_eq!(under, 1);
        assert_eq!(over, 1);
        assert_eq!(bins[1], 2); // 1.0, 1.5
        assert_eq!(bins[2], 1); // 2.5
        assert_eq!(bins[9], 1); // 9.9
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 25.9 / 6.0).abs() < 1e-9);
        assert!(h.stddev() > 0.0);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5);
        assert!((median - 50.0).abs() <= 1.0, "median={median}");
        assert!(h.quantile(1.0) >= 99.0);
    }

    #[test]
    fn histogram_quantile_empty() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_quantile_q0_is_recorded_min() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for x in [3.5, 40.0, 90.0] {
            h.record(x);
        }
        // Before the fix q=0 reported the range floor `lo` (0.0); the
        // smallest recorded sample is 3.5.
        assert_eq!(h.quantile(0.0), 3.5);
        assert_eq!(h.min(), 3.5);
    }

    #[test]
    fn histogram_quantile_all_underflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(-3.0);
        // All mass is below `lo`; estimates saturate to the true range.
        assert_eq!(h.quantile(0.0), -5.0);
        assert_eq!(h.quantile(1.0), -3.0);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), -3.0);
    }

    #[test]
    fn histogram_quantile_all_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(15.0);
        h.record(20.0);
        // Before the fix overflow mass reported the range ceiling `hi`
        // (10.0) — below every recorded sample.
        assert_eq!(h.quantile(0.5), 20.0);
        assert_eq!(h.quantile(1.0), 20.0);
        assert!(h.quantile(0.0) >= 15.0);
        assert_eq!(h.max(), 20.0);
    }

    #[test]
    fn histogram_quantile_q1_is_bounded_by_max() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(f64::from(i) + 0.5);
        }
        // q=1 must never exceed the largest recorded sample.
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.max(), 99.5);
        assert_eq!(h.quantile(0.0), 0.5);
    }

    #[test]
    fn time_weighted_mean_with_now_before_last_record() {
        // Intended behavior: querying the mean at a `now` earlier than the
        // last record saturates the tail contribution to zero (the last
        // value has held for "no time yet") rather than rewinding the
        // integral or panicking. The mean is then the step integral up to
        // the last record divided by `now - start`.
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(0), 10.0);
        tw.record(SimTime::from_secs(10), 20.0);
        // now = 5s < last record at 10s: tail saturates to 0, total = 5s,
        // integral so far = 10.0 * 10s = 100 → mean 20.0.
        assert!((tw.mean(SimTime::from_secs(5)) - 20.0).abs() < 1e-9);
        // now exactly at the last record: tail = 0, mean = 100 / 10 = 10.
        assert!((tw.mean(SimTime::from_secs(10)) - 10.0).abs() < 1e-9);
        // now before the *first* record: total saturates to 0 → falls back
        // to the most recent value instead of dividing by zero.
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(10), 7.0);
        assert_eq!(tw.mean(SimTime::from_secs(3)), 7.0);
    }

    #[test]
    fn time_series_values_padded() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.incr(SimTime::from_secs(30)); // slot 0
        ts.incr(SimTime::from_secs(70)); // slot 1
                                         // Run spans 5 minutes but the last 3 slots are quiet: `values`
                                         // truncates, `values_padded` does not.
        assert_eq!(ts.values().len(), 2);
        let padded = ts.values_padded(SimTime::from_secs(300));
        assert_eq!(padded, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        // A partial trailing slot still gets its own entry (ceil).
        assert_eq!(ts.values_padded(SimTime::from_secs(301)).len(), 6);
        // Padding never shrinks below the recorded slots.
        assert_eq!(ts.values_padded(SimTime::from_secs(60)).len(), 2);
        // Zero span on an empty series is empty.
        let empty = TimeSeries::new(SimDuration::from_secs(60));
        assert!(empty.values_padded(SimTime::ZERO).is_empty());
        assert_eq!(empty.values_padded(SimTime::from_secs(120)), vec![0.0; 2]);
    }

    #[test]
    fn time_series_peak_slot_total_order() {
        // total_cmp orders NaN-free slot data identically to partial_cmp
        // but cannot panic; ties resolve to the last max (Iterator::max_by
        // keeps the later element on Equal).
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.add(SimTime::from_secs(0), 2.0);
        ts.add(SimTime::from_secs(1), 5.0);
        ts.add(SimTime::from_secs(2), 5.0);
        assert_eq!(ts.peak_slot(), Some(2));
    }

    #[test]
    fn time_series_slots() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.incr(SimTime::from_secs(30)); // slot 0
        ts.incr(SimTime::from_secs(59)); // slot 0
        ts.incr(SimTime::from_secs(60)); // slot 1
        ts.add(SimTime::from_secs(200), 5.0); // slot 3
        assert_eq!(ts.values(), &[2.0, 1.0, 0.0, 5.0]);
        assert_eq!(ts.total(), 8.0);
        assert_eq!(ts.peak_slot(), Some(3));
        let pts = ts.points();
        assert_eq!(pts[1], (60.0, 1.0));
    }

    #[test]
    fn time_series_empty() {
        let ts = TimeSeries::new(SimDuration::from_secs(1));
        assert!(ts.values().is_empty());
        assert_eq!(ts.peak_slot(), None);
        assert_eq!(ts.total(), 0.0);
    }
}
