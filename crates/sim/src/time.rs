//! Virtual time.
//!
//! Simulation time is an integer count of **microsecond ticks** since the
//! start of the run. Integer time keeps event ordering exact (no float
//! rounding drift over long runs) while one-microsecond resolution is far
//! finer than anything the paper's algorithms need (its finest timers are
//! the meeting-room release timers, minutes long; its finest network events
//! are packet transmissions on ~Mbps links, tens of microseconds long).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks per second of virtual time.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// An instant in virtual time (ticks since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole seconds of virtual time.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Construct from whole minutes of virtual time.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60 * TICKS_PER_SECOND)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "SimTime cannot be negative");
        SimTime((secs * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Virtual seconds since the origin, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration since an earlier instant. Panics in debug builds if
    /// `earlier` is actually later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since another instant (zero if `other` is later).
    #[inline]
    pub fn saturating_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating subtraction of a duration (clamps at the origin).
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Construct from whole minutes (the paper's timers are minute-scale).
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * TICKS_PER_SECOND)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * (TICKS_PER_SECOND / 1000))
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * (TICKS_PER_SECOND / 1_000_000))
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "SimDuration cannot be negative");
        SimDuration((secs * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating at the maximum.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("invariant: SimTime subtraction must not cross t=0"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("invariant: SimDuration subtraction must not go negative"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("invariant: SimDuration subtraction must not go negative");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SECOND);
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(250).ticks(), 250);
        assert_eq!(SimTime::from_secs_f64(0.5).ticks(), TICKS_PER_SECOND / 2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!((t + d).since(t), d);
        assert_eq!(t + d - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d + d, SimDuration::from_secs(8));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "invariant: SimTime subtraction must not cross t=0")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimDuration::from_ticks(1);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis_for_test(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::ZERO + SimDuration::from_millis(ms)
        }
    }
}
