// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Connection workload generators.
//!
//! Two workloads drive the paper's experiments:
//!
//! * **§7.1 / Figure 5** — "cell throughput 1.6 Mbps, each user opens one
//!   connection of either 16 Kbps (75%) or 64 Kbps (25%)" —
//!   [`WorkloadMix::paper71`],
//! * **Figure 6** — the two-cell model: "capacity of each cell is 40;
//!   type 1: bandwidth 1, arrival rate 30, mean holding 0.2, handoff
//!   probability 0.7; type 2: bandwidth 4, arrival rate 1, mean holding
//!   0.25, handoff probability 0.7" — [`ConnTypeSpec::fig6_types`] and
//!   [`poisson_arrivals`].

use arm_net::flowspec::QosRequest;
use arm_net::ids::{CellId, PortableId};
use arm_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A weighted mix of per-user connection requests.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// `(weight, request)` pairs; weights need not sum to 1.
    pub entries: Vec<(f64, QosRequest)>,
}

impl WorkloadMix {
    /// The §7.1 mix: one 16 kbps (75%) or 64 kbps (25%) connection per
    /// user, fixed-rate (no adaptable range), permissive secondary
    /// bounds — the experiment exercises the bandwidth dimension.
    pub fn paper71() -> Self {
        let mk = |kbps: f64| {
            QosRequest::fixed(kbps)
                .with_delay(30.0)
                .with_jitter(30.0)
                .with_loss(1.0)
        };
        WorkloadMix {
            entries: vec![(0.75, mk(16.0)), (0.25, mk(64.0))],
        }
    }

    /// Sample one request.
    pub fn sample(&self, rng: &mut SimRng) -> QosRequest {
        let weights: Vec<f64> = self.entries.iter().map(|(w, _)| *w).collect();
        let idx = rng
            .weighted_choice(&weights)
            .expect("precondition: mix has positive weights");
        self.entries[idx].1
    }

    /// Expected bandwidth per sampled connection (kbps).
    pub fn mean_rate(&self) -> f64 {
        let total_w: f64 = self.entries.iter().map(|(w, _)| *w).sum();
        self.entries.iter().map(|(w, q)| w * q.b_min).sum::<f64>() / total_w
    }

    /// The offered load of `n` users against a cell of `capacity` kbps —
    /// the quantity the paper reports as 59% (35 users) and 94% (55
    /// users).
    pub fn offered_load(&self, n_users: usize, capacity: f64) -> f64 {
        n_users as f64 * self.mean_rate() / capacity
    }
}

/// One connection type of the Figure 6 model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConnTypeSpec {
    /// Bandwidth requirement `b_min = b_max` (abstract units).
    pub bandwidth: f64,
    /// New-request arrival rate per cell (per time unit).
    pub arrival_rate: f64,
    /// Mean connection holding time `1/μ` (time units).
    pub mean_holding: f64,
    /// Handoff probability `h`: on leaving a cell the connection moves to
    /// the neighbour with probability `h`, terminates otherwise.
    pub handoff_prob: f64,
}

impl ConnTypeSpec {
    /// The Figure 6 pair of types.
    pub fn fig6_types() -> Vec<ConnTypeSpec> {
        vec![
            ConnTypeSpec {
                bandwidth: 1.0,
                arrival_rate: 30.0,
                mean_holding: 0.2,
                handoff_prob: 0.7,
            },
            ConnTypeSpec {
                bandwidth: 4.0,
                arrival_rate: 1.0,
                mean_holding: 0.25,
                handoff_prob: 0.7,
            },
        ]
    }

    /// Departure rate `μ`.
    pub fn mu(&self) -> f64 {
        1.0 / self.mean_holding
    }
}

/// One new-connection request event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnRequest {
    /// Arrival time.
    pub time: SimTime,
    /// The cell where the request originates.
    pub cell: CellId,
    /// Index into the type list.
    pub type_idx: usize,
    /// Synthetic owner id (unique per request).
    pub portable: PortableId,
}

/// Generate Poisson new-connection arrivals for every `(cell, type)`
/// pair over `span`, where one Figure 6 "time unit" lasts `time_unit` of
/// virtual time. Events are merged and time-sorted.
pub fn poisson_arrivals(
    cells: &[CellId],
    types: &[ConnTypeSpec],
    span: SimDuration,
    time_unit: SimDuration,
    rng: &mut SimRng,
) -> Vec<ConnRequest> {
    let mut out = Vec::new();
    let mut next_portable = 50_000u32;
    for cell in cells {
        for (ti, ty) in types.iter().enumerate() {
            let mut rng = rng
                .split_index("arrivals-cell", cell.0 as u64)
                .split_index("type", ti as u64);
            if ty.arrival_rate <= 0.0 {
                continue;
            }
            let mean_gap = SimDuration::from_secs_f64(time_unit.as_secs_f64() / ty.arrival_rate);
            let mut t = SimTime::ZERO;
            loop {
                t += rng.exp_duration(mean_gap);
                if t.since(SimTime::ZERO) >= span {
                    break;
                }
                out.push(ConnRequest {
                    time: t,
                    cell: *cell,
                    type_idx: ti,
                    portable: PortableId(next_portable),
                });
                next_portable += 1;
            }
        }
    }
    out.sort_by(|a, b| a.time.cmp(&b.time).then(a.portable.cmp(&b.portable)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper71_mix_statistics() {
        let mix = WorkloadMix::paper71();
        // Mean rate = 0.75·16 + 0.25·64 = 28 kbps.
        assert!((mix.mean_rate() - 28.0).abs() < 1e-12);
        // Offered loads the paper reports: 35 users → 61%… the paper says
        // 59% for 35 students at 1.6 Mbps; with the stated mix the exact
        // expectation is 35·28/1600 = 61.25%. The published 59% reflects
        // their particular draw; the expectation is what we check.
        assert!((mix.offered_load(35, 1600.0) - 0.6125).abs() < 1e-9);
        assert!((mix.offered_load(55, 1600.0) - 0.9625).abs() < 1e-9);
    }

    #[test]
    fn mix_sampling_matches_weights() {
        let mix = WorkloadMix::paper71();
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let smalls = (0..n)
            .filter(|_| (mix.sample(&mut rng).b_min - 16.0).abs() < 1e-9)
            .count();
        let frac = smalls as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn fig6_types_match_the_paper() {
        let t = ConnTypeSpec::fig6_types();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].bandwidth, 1.0);
        assert_eq!(t[0].arrival_rate, 30.0);
        assert!((t[0].mu() - 5.0).abs() < 1e-12);
        assert_eq!(t[1].bandwidth, 4.0);
        assert!((t[1].mu() - 4.0).abs() < 1e-12);
        assert_eq!(t[0].handoff_prob, 0.7);
    }

    #[test]
    fn poisson_arrival_counts_scale_with_rate() {
        let cells = [CellId(0), CellId(1)];
        let types = ConnTypeSpec::fig6_types();
        let span = SimDuration::from_secs(1000);
        let unit = SimDuration::from_secs(1);
        let mut rng = SimRng::new(7);
        let reqs = poisson_arrivals(&cells, &types, span, unit, &mut rng);
        // Expect ≈ 30·1000 type-1 per cell and ≈ 1·1000 type-2 per cell.
        let t1c0 = reqs
            .iter()
            .filter(|r| r.type_idx == 0 && r.cell == cells[0])
            .count() as f64;
        let t2c0 = reqs
            .iter()
            .filter(|r| r.type_idx == 1 && r.cell == cells[0])
            .count() as f64;
        assert!((t1c0 - 30_000.0).abs() < 1500.0, "t1c0={t1c0}");
        assert!((t2c0 - 1000.0).abs() < 150.0, "t2c0={t2c0}");
        // Sorted by time, unique portables.
        assert!(reqs.windows(2).all(|w| w[0].time <= w[1].time));
        let mut ids: Vec<_> = reqs.iter().map(|r| r.portable).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
    }
}
