//! Movement traces.
//!
//! A [`MobilityTrace`] is a time-ordered list of cell transitions — the
//! exact shape of the data the paper's authors collected by hand in the
//! ECE building. Generators in [`crate::models`] produce traces; the
//! simulation driver in `arm-core` replays them against the resource
//! manager; `arm-profiles` aggregates them.

use arm_net::ids::{CellId, PortableId};
use arm_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One cell transition. `from == None` marks the portable's first
/// appearance (power-on / zone entry).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MoveEvent {
    /// When the handoff (or appearance) happens.
    pub time: SimTime,
    /// Who moves.
    pub portable: PortableId,
    /// The cell being left (`None` on first appearance).
    pub from: Option<CellId>,
    /// The cell being entered.
    pub to: CellId,
}

/// A time-ordered sequence of movements for any number of portables.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MobilityTrace {
    events: Vec<MoveEvent>,
    sorted: bool,
}

impl MobilityTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (sorting is deferred to [`finish`](Self::finish)).
    pub fn push(&mut self, ev: MoveEvent) {
        self.events.push(ev);
        self.sorted = false;
    }

    /// Sort by (time, portable) — a stable, deterministic replay order.
    pub fn finish(mut self) -> Self {
        self.events
            .sort_by(|a, b| a.time.cmp(&b.time).then(a.portable.cmp(&b.portable)));
        self.sorted = true;
        self
    }

    /// Merge another trace into this one (re-sorts).
    pub fn merge(mut self, other: MobilityTrace) -> Self {
        self.events.extend(other.events);
        self.finish()
    }

    /// The events (sorted iff [`finish`](Self::finish) ran last).
    pub fn events(&self) -> &[MoveEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count transitions `from → to` (handoffs only, not appearances).
    pub fn count_transition(&self, from: CellId, to: CellId) -> usize {
        self.events
            .iter()
            .filter(|e| e.from == Some(from) && e.to == to)
            .count()
    }

    /// Count transitions `from → to` for one portable.
    pub fn count_transition_of(&self, p: PortableId, from: CellId, to: CellId) -> usize {
        self.events
            .iter()
            .filter(|e| e.portable == p && e.from == Some(from) && e.to == to)
            .count()
    }

    /// Per-slot arrival counts into `cell` (for the Figure 2/5 series).
    pub fn arrivals_series(
        &self,
        cell: CellId,
        slot: arm_sim::SimDuration,
    ) -> arm_sim::stats::TimeSeries {
        let mut ts = arm_sim::stats::TimeSeries::new(slot);
        for e in self.events.iter().filter(|e| e.to == cell) {
            ts.incr(e.time);
        }
        ts
    }

    /// Per-slot departure counts out of `cell`.
    pub fn departures_series(
        &self,
        cell: CellId,
        slot: arm_sim::SimDuration,
    ) -> arm_sim::stats::TimeSeries {
        let mut ts = arm_sim::stats::TimeSeries::new(slot);
        for e in self.events.iter().filter(|e| e.from == Some(cell)) {
            ts.incr(e.time);
        }
        ts
    }

    /// The portables appearing in the trace.
    pub fn portables(&self) -> Vec<PortableId> {
        let mut ps: Vec<PortableId> = self.events.iter().map(|e| e.portable).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Validate internal consistency: sorted, and each portable's `from`
    /// chain matches its previous `to`.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut last_time = SimTime::ZERO;
        let mut positions: std::collections::BTreeMap<PortableId, CellId> = Default::default();
        for (i, e) in self.events.iter().enumerate() {
            if e.time < last_time {
                return Err(format!("event {i} out of order"));
            }
            last_time = e.time;
            match (e.from, positions.get(&e.portable)) {
                (None, None) => {}
                (Some(f), Some(cur)) if f == *cur => {}
                (None, Some(_)) => return Err(format!("event {i}: {:?} re-appears", e.portable)),
                (Some(f), cur) => {
                    return Err(format!(
                        "event {i}: {:?} leaves {f:?} but is at {cur:?}",
                        e.portable
                    ))
                }
            }
            if Some(e.to) == e.from {
                return Err(format!("event {i}: no-op move"));
            }
            positions.insert(e.portable, e.to);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_sim::SimDuration;

    fn mv(t: u64, p: u32, from: Option<u32>, to: u32) -> MoveEvent {
        MoveEvent {
            time: SimTime::from_secs(t),
            portable: PortableId(p),
            from: from.map(CellId),
            to: CellId(to),
        }
    }

    #[test]
    fn finish_sorts_and_counts_work() {
        let mut t = MobilityTrace::new();
        t.push(mv(10, 1, Some(0), 1));
        t.push(mv(5, 1, None, 0));
        t.push(mv(20, 1, Some(1), 0));
        let t = t.finish();
        assert!(t.check_consistency().is_ok());
        assert_eq!(t.count_transition(CellId(0), CellId(1)), 1);
        assert_eq!(
            t.count_transition_of(PortableId(1), CellId(1), CellId(0)),
            1
        );
        assert_eq!(t.portables(), vec![PortableId(1)]);
    }

    #[test]
    fn consistency_catches_teleports() {
        let mut t = MobilityTrace::new();
        t.push(mv(5, 1, None, 0));
        t.push(mv(10, 1, Some(3), 1)); // claims to leave 3 while at 0
        let t = t.finish();
        assert!(t.check_consistency().is_err());
    }

    #[test]
    fn consistency_catches_disorder_and_noops() {
        let mut t = MobilityTrace::new();
        t.push(mv(5, 1, None, 0));
        t.push(mv(10, 1, Some(0), 0)); // no-op move
        let t = t.finish();
        assert!(t.check_consistency().is_err());
    }

    #[test]
    fn series_extraction() {
        let mut t = MobilityTrace::new();
        t.push(mv(10, 1, None, 5));
        t.push(mv(70, 2, None, 5));
        t.push(mv(80, 1, Some(5), 6));
        let t = t.finish();
        let arr = t.arrivals_series(CellId(5), SimDuration::from_secs(60));
        assert_eq!(arr.values(), &[1.0, 1.0]);
        let dep = t.departures_series(CellId(5), SimDuration::from_secs(60));
        assert_eq!(dep.values(), &[0.0, 1.0]);
    }

    #[test]
    fn merge_interleaves() {
        let mut a = MobilityTrace::new();
        a.push(mv(10, 1, None, 0));
        let mut b = MobilityTrace::new();
        b.push(mv(5, 2, None, 0));
        let m = a.finish().merge(b.finish());
        assert_eq!(m.events()[0].portable, PortableId(2));
        assert_eq!(m.len(), 2);
    }
}
