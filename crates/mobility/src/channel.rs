//! Time-varying wireless channel (the paper's §2.1 motivation).
//!
//! "Wireless media are prone to error; thus standard assumptions such as
//! negligible channel error are not true in the wireless scenario" and
//! QoS bounds are "especially meaningful for the time-varying effective
//! capacity of the wireless link".
//!
//! The model is the classic two-state Gilbert–Elliott chain per cell:
//! the medium alternates between a **good** state (full effective
//! capacity) and a **bad** (faded) state where only a fraction of the
//! nominal capacity is usable. Sojourn times are exponential. The
//! generator emits a deterministic, time-sorted event list the resource
//! manager replays against its links.

use std::fmt;

use arm_net::ids::CellId;
use arm_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Rejected channel parameters: `bad_fraction` outside `(0, 1]` (the
/// faded medium must retain *some* capacity and cannot exceed nominal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BadFractionError(pub f64);

impl fmt::Display for BadFractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad_fraction must be in (0, 1], got {}", self.0)
    }
}

impl std::error::Error for BadFractionError {}

/// One effective-capacity change.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelEvent {
    /// When the state flips.
    pub time: SimTime,
    /// Which cell's medium.
    pub cell: CellId,
    /// New effective fraction of the nominal capacity, in `(0, 1]`.
    pub effective_fraction: f64,
}

/// Gilbert–Elliott parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Mean sojourn in the good state.
    pub mean_good: SimDuration,
    /// Mean sojourn in the bad state.
    pub mean_bad: SimDuration,
    /// Effective capacity fraction while faded.
    pub bad_fraction: f64,
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams {
            mean_good: SimDuration::from_mins(5),
            mean_bad: SimDuration::from_secs(45),
            bad_fraction: 0.6,
        }
    }
}

/// Generate the fade/recover event sequence for one cell over `span`.
/// The medium starts good; events alternate bad/good. Rejects a
/// `bad_fraction` outside `(0, 1]` — parameters arrive from scenario
/// files, so this is an error, not a panic.
pub fn generate(
    cell: CellId,
    params: &ChannelParams,
    span: SimDuration,
    rng: &mut SimRng,
) -> Result<Vec<ChannelEvent>, BadFractionError> {
    if !(params.bad_fraction > 0.0 && params.bad_fraction <= 1.0) {
        return Err(BadFractionError(params.bad_fraction));
    }
    let mut rng = rng.split_index("channel", cell.0 as u64);
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + span;
    loop {
        t += rng.exp_duration(params.mean_good);
        if t >= end {
            break;
        }
        out.push(ChannelEvent {
            time: t,
            cell,
            effective_fraction: params.bad_fraction,
        });
        t += rng.exp_duration(params.mean_bad);
        if t >= end {
            // Recover at the horizon so the run never ends mid-fade.
            out.push(ChannelEvent {
                time: end,
                cell,
                effective_fraction: 1.0,
            });
            break;
        }
        out.push(ChannelEvent {
            time: t,
            cell,
            effective_fraction: 1.0,
        });
    }
    Ok(out)
}

/// Generate and merge the sequences of several cells.
pub fn generate_all(
    cells: &[CellId],
    params: &ChannelParams,
    span: SimDuration,
    rng: &mut SimRng,
) -> Result<Vec<ChannelEvent>, BadFractionError> {
    let mut out = Vec::new();
    for c in cells {
        out.extend(generate(*c, params, span, rng)?);
    }
    out.sort_by(|a, b| a.time.cmp(&b.time).then(a.cell.cmp(&b.cell)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_and_ends_recovered() {
        let params = ChannelParams::default();
        let evs = generate(
            CellId(0),
            &params,
            SimDuration::from_mins(120),
            &mut SimRng::new(4),
        )
        .expect("valid params");
        assert!(!evs.is_empty(), "two hours should see some fades");
        // Alternating bad/good, starting bad.
        for (i, e) in evs.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(e.effective_fraction, params.bad_fraction);
            } else {
                assert_eq!(e.effective_fraction, 1.0);
            }
        }
        // The last event restores full capacity.
        assert_eq!(evs.last().expect("non-empty").effective_fraction, 1.0);
        // Sorted in time.
        assert!(evs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn sojourn_means_are_respected() {
        let params = ChannelParams {
            mean_good: SimDuration::from_secs(100),
            mean_bad: SimDuration::from_secs(25),
            bad_fraction: 0.5,
        };
        let evs = generate(
            CellId(0),
            &params,
            SimDuration::from_secs(500_000),
            &mut SimRng::new(9),
        )
        .expect("valid params");
        // Mean bad sojourn ≈ 25 s.
        let mut bad_total = 0.0;
        let mut bad_count = 0;
        for w in evs.windows(2) {
            if w[0].effective_fraction < 1.0 {
                bad_total += w[1].time.since(w[0].time).as_secs_f64();
                bad_count += 1;
            }
        }
        let mean_bad = bad_total / bad_count as f64;
        assert!((mean_bad - 25.0).abs() < 3.0, "mean_bad={mean_bad}");
        // Fade rate ≈ once per 125 s.
        let fades = evs.iter().filter(|e| e.effective_fraction < 1.0).count();
        let rate = 500_000.0 / fades as f64;
        assert!((rate - 125.0).abs() < 10.0, "rate={rate}");
    }

    #[test]
    fn per_cell_streams_are_independent() {
        let params = ChannelParams::default();
        let mut rng = SimRng::new(4);
        let evs = generate_all(
            &[CellId(0), CellId(1)],
            &params,
            SimDuration::from_mins(120),
            &mut rng,
        )
        .expect("valid params");
        let c0: Vec<_> = evs.iter().filter(|e| e.cell == CellId(0)).collect();
        let c1: Vec<_> = evs.iter().filter(|e| e.cell == CellId(1)).collect();
        assert!(!c0.is_empty() && !c1.is_empty());
        assert_ne!(
            c0.first().map(|e| e.time),
            c1.first().map(|e| e.time),
            "distinct fade schedules"
        );
        assert!(evs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn out_of_range_fractions_are_typed_errors() {
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            let params = ChannelParams {
                bad_fraction: bad,
                ..Default::default()
            };
            let err = generate(
                CellId(0),
                &params,
                SimDuration::from_mins(10),
                &mut SimRng::new(1),
            )
            .expect_err("fraction outside (0, 1] must be rejected");
            assert!(err.0.is_nan() && bad.is_nan() || err.0 == bad);
        }
    }
}
