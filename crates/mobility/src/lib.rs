// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-mobility — environments, movement, and workload
//!
//! The paper validated its algorithms against hand-tracked user mobility
//! in the UIUC ECE building (Spring 1996) — measurements we cannot rerun.
//! Per the reproduction's substitution rule, this crate provides
//! *synthetic generators calibrated to the paper's published aggregate
//! numbers*: the §7.1 office-case fan-out counts, the Figure 5
//! meeting-room arrival/departure spikes with corridor walk-by traffic,
//! and the Figure 6 two-cell workload parameters. The algorithms under
//! test consume only handoff event streams and connection request
//! streams, so generators matching the published marginals exercise the
//! same code paths as the original traces.
//!
//! * [`environment`] — cell maps: the Figure 4 floor plan (offices A and
//!   B, corridors C–G) and a parametric office building,
//! * [`trace`] — movement traces (time-ordered cell transitions),
//! * [`models`] — the per-class generators: office workers (§7.1),
//!   meetings (Fig. 5), cafeteria lunch ramps, random-walk defaults, and
//!   a general Markov walker,
//! * [`workload`] — connection request generators: the §7.1 16/64 kbps
//!   mix and the Figure 6 two-type Poisson/exponential model,
//! * [`channel`] — the time-varying wireless channel (Gilbert–Elliott
//!   fades) whose capacity swings drive the §5.3 adaptation machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod environment;
pub mod models;
pub mod trace;
pub mod workload;

pub use environment::{Figure4, IndoorEnvironment};
pub use trace::{MobilityTrace, MoveEvent};
pub use workload::{ConnRequest, ConnTypeSpec, WorkloadMix};
