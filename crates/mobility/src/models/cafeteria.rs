//! The cafeteria pattern: a slow time-varying lunch ramp (§6.2.2).
//!
//! Arrival intensity rises linearly to a peak and falls back — the
//! "slow time-varying profile" whose next-slot handoff count the
//! cafeteria reservation algorithm predicts with a least-squares line.

use arm_net::ids::{CellId, PortableId};
use arm_profiles::{CellClass, LoungeKind};
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::environment::IndoorEnvironment;
use crate::trace::MobilityTrace;

use super::markov::Walker;

/// The cafeteria scenario plan: corridor K next to cafeteria F.
#[derive(Clone, Debug)]
pub struct CafeteriaEnv {
    /// The floor plan.
    pub env: IndoorEnvironment,
    /// The corridor outside.
    pub k: CellId,
    /// The cafeteria.
    pub f: CellId,
}

impl CafeteriaEnv {
    /// Build the plan.
    pub fn build() -> Self {
        let mut env = IndoorEnvironment::new();
        let k = env.add_cell("K", CellClass::Corridor);
        let f = env.add_cell("F", CellClass::Lounge(LoungeKind::Cafeteria));
        env.connect(k, f);
        CafeteriaEnv { env, k, f }
    }
}

/// Ramp parameters.
#[derive(Clone, Copy, Debug)]
pub struct CafeteriaParams {
    /// When the ramp starts.
    pub open: SimTime,
    /// Time from open to peak intensity.
    pub ramp: SimDuration,
    /// Peak arrival rate (visitors per minute).
    pub peak_per_min: f64,
    /// Mean meal duration.
    pub mean_stay: SimDuration,
    /// Total span (open + ramp up + ramp down fits inside).
    pub span: SimDuration,
}

impl Default for CafeteriaParams {
    fn default() -> Self {
        CafeteriaParams {
            open: SimTime::from_mins(0),
            ramp: SimDuration::from_mins(45),
            peak_per_min: 4.0,
            mean_stay: SimDuration::from_mins(20),
            span: SimDuration::from_mins(120),
        }
    }
}

/// Triangular intensity (per minute) at time `t`.
pub fn intensity(params: &CafeteriaParams, t: SimTime) -> f64 {
    let dt = t.saturating_since(params.open).as_secs_f64();
    let ramp = params.ramp.as_secs_f64();
    if dt <= 0.0 || dt >= 2.0 * ramp {
        0.0
    } else if dt <= ramp {
        params.peak_per_min * dt / ramp
    } else {
        params.peak_per_min * (2.0 - dt / ramp)
    }
}

/// Generate the lunch trace by thinning a homogeneous Poisson stream at
/// the triangular intensity.
pub fn generate(cenv: &CafeteriaEnv, params: &CafeteriaParams, rng: &mut SimRng) -> MobilityTrace {
    let mut rng = rng.split("cafeteria");
    let mut trace = MobilityTrace::new();
    let mut t = SimTime::ZERO;
    let max_rate_sec = params.peak_per_min / 60.0;
    let mut k = 0u32;
    if max_rate_sec <= 0.0 {
        return trace;
    }
    loop {
        t += rng.exp_duration(SimDuration::from_secs_f64(1.0 / max_rate_sec));
        if t.since(SimTime::ZERO) >= params.span {
            break;
        }
        // Thinning.
        if !rng.chance(intensity(params, t) / params.peak_per_min) {
            continue;
        }
        let p = PortableId(20_000 + k);
        k += 1;
        let mut w = Walker::new(&cenv.env, p, t);
        w.appear(cenv.k)
            .step_to(cenv.f, SimDuration::from_secs(rng.int_range(10, 30)));
        w.dwell(rng.exp_duration(params.mean_stay));
        w.step_to(cenv.k, SimDuration::from_secs(rng.int_range(10, 30)));
        trace = trace.merge(w.into_trace());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_triangular() {
        let p = CafeteriaParams::default();
        assert_eq!(intensity(&p, SimTime::from_mins(0)), 0.0);
        assert!((intensity(&p, SimTime::from_mins(45)) - 4.0).abs() < 1e-9);
        let half = intensity(&p, SimTime::from_mins(22)) / 4.0;
        assert!((half - 22.0 / 45.0).abs() < 1e-9);
        assert_eq!(intensity(&p, SimTime::from_mins(90)), 0.0);
        assert_eq!(intensity(&p, SimTime::from_mins(119)), 0.0);
    }

    #[test]
    fn activity_ramps_smoothly() {
        let cenv = CafeteriaEnv::build();
        let params = CafeteriaParams::default();
        let trace = generate(&cenv, &params, &mut SimRng::new(3));
        assert!(trace.check_consistency().is_ok());
        let arr = trace.arrivals_series(cenv.f, SimDuration::from_mins(10));
        let v = arr.values();
        assert!(!v.is_empty());
        // The peak slot should be near minute 45 (slot 4) and the first
        // slot should be clearly below the peak.
        let peak = arr.peak_slot().expect("some arrivals");
        assert!((2..=6).contains(&peak), "peak slot {peak}");
        let max = v.iter().copied().fold(0.0, f64::max);
        assert!(v[0] < max * 0.7, "ramp starts low: {v:?}");
    }

    #[test]
    fn everyone_who_eats_leaves() {
        let cenv = CafeteriaEnv::build();
        let params = CafeteriaParams {
            span: SimDuration::from_mins(90),
            ..Default::default()
        };
        let trace = generate(&cenv, &params, &mut SimRng::new(4));
        let ins = trace.events().iter().filter(|e| e.to == cenv.f).count();
        let outs = trace
            .events()
            .iter()
            .filter(|e| e.from == Some(cenv.f))
            .count();
        assert_eq!(ins, outs);
        assert!(ins > 20, "a default lunch crowd showed up: {ins}");
    }

    #[test]
    fn zero_rate_produces_empty_trace() {
        let cenv = CafeteriaEnv::build();
        let params = CafeteriaParams {
            peak_per_min: 0.0,
            ..Default::default()
        };
        let trace = generate(&cenv, &params, &mut SimRng::new(4));
        assert!(trace.is_empty());
    }
}
