// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The default-lounge pattern: memoryless random movement (§6.2.3).
//!
//! A population of portables wanders the environment: exponential dwell
//! in each cell, uniformly random neighbour next. This produces the
//! "random time-varying profile" of the default lounge and doubles as a
//! stress generator for the prediction algorithms (nothing here is
//! predictable beyond the one-step-memory baseline).

use arm_net::ids::{CellId, PortableId};
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::environment::IndoorEnvironment;
use crate::trace::MobilityTrace;

use super::markov::Walker;

/// Random-walk parameters.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkParams {
    /// Number of wandering portables.
    pub population: usize,
    /// Mean dwell time per cell.
    pub mean_dwell: SimDuration,
    /// Per-hop travel time.
    pub travel: SimDuration,
    /// Total span to cover.
    pub span: SimDuration,
}

impl Default for RandomWalkParams {
    fn default() -> Self {
        RandomWalkParams {
            population: 20,
            mean_dwell: SimDuration::from_mins(10),
            travel: SimDuration::from_secs(20),
            span: SimDuration::from_mins(120),
        }
    }
}

/// First portable id used by this generator.
pub const WANDERER_BASE: u32 = 30_000;

/// Generate the wander trace: each portable appears at a random cell at
/// a random offset and walks until the span ends.
pub fn generate(
    env: &IndoorEnvironment,
    params: &RandomWalkParams,
    rng: &mut SimRng,
) -> MobilityTrace {
    let rng = rng.split("random-walk");
    let mut trace = MobilityTrace::new();
    let cells: Vec<CellId> = env.cells().map(|(id, _)| id).collect();
    if cells.is_empty() {
        return trace;
    }
    for i in 0..params.population {
        let p = PortableId(WANDERER_BASE + i as u32);
        let mut prng = rng.split_index("wanderer", i as u64);
        let start =
            SimTime::ZERO + SimDuration::from_secs_f64(prng.unit() * 60.0 * prng.unit() * 10.0);
        let mut w = Walker::new(env, p, start);
        w.appear(cells[prng.index(cells.len())]);
        let end = SimTime::ZERO + params.span;
        while w.now() < end {
            let here = w.position().expect("invariant: appeared");
            let neighbors: Vec<CellId> = env.neighbors(here).collect();
            if neighbors.is_empty() {
                break;
            }
            let next = neighbors[prng.index(neighbors.len())];
            w.dwell(prng.exp_duration(params.mean_dwell));
            if w.now() >= end {
                break;
            }
            w.step_to(next, params.travel);
        }
        trace = trace.merge(w.into_trace());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::{office_wing, Figure4};

    #[test]
    fn wanderers_cover_the_graph() {
        let env = office_wing(4);
        let params = RandomWalkParams {
            population: 10,
            mean_dwell: SimDuration::from_mins(2),
            ..Default::default()
        };
        let trace = generate(&env, &params, &mut SimRng::new(6));
        assert!(trace.check_consistency().is_ok());
        // Every wanderer produced events; movement is nontrivial.
        assert_eq!(trace.portables().len(), 10);
        assert!(trace.len() > 100, "trace too small: {}", trace.len());
        // Visits are spread over many cells.
        let mut visited: Vec<CellId> = trace.events().iter().map(|e| e.to).collect();
        visited.sort_unstable();
        visited.dedup();
        assert!(visited.len() >= env.cell_count() / 2);
    }

    #[test]
    fn events_respect_the_span() {
        let f4 = Figure4::build();
        let params = RandomWalkParams {
            population: 5,
            mean_dwell: SimDuration::from_mins(1),
            span: SimDuration::from_mins(30),
            ..Default::default()
        };
        let trace = generate(&f4.env, &params, &mut SimRng::new(2));
        let end = SimTime::ZERO + params.span + params.travel;
        assert!(trace.events().iter().all(|e| e.time <= end));
    }

    #[test]
    fn deterministic_per_seed() {
        let f4 = Figure4::build();
        let params = RandomWalkParams::default();
        let a = generate(&f4.env, &params, &mut SimRng::new(10));
        let b = generate(&f4.env, &params, &mut SimRng::new(10));
        assert_eq!(a.events(), b.events());
    }
}
