//! Mobility-trace generators, one per behavioural pattern the paper
//! measures or assumes.
//!
//! * [`office_case`] — the §7.1 workweek: faculty, students, and crowd
//!   traversing corridor C→D with the published fan-out,
//! * [`meeting`] — Figure 5: attendees converging on a classroom around
//!   the start time and leaving after the end, over corridor walk-by
//!   traffic,
//! * [`cafeteria`] — a slow lunch-hour ramp of visitors,
//! * [`random_walk`] — memoryless wandering (the default-lounge pattern),
//! * [`markov`] — the general dwell-and-move walker the other models are
//!   built from.

pub mod cafeteria;
pub mod markov;
pub mod meeting;
pub mod office_case;
pub mod random_walk;
