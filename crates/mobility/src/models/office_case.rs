//! The §7.1 office-case workweek.
//!
//! The paper tracked, over one workweek, every C→D corridor traversal in
//! the Figure 4 environment and where it led:
//!
//! | population | C→D traversals | → A | → B | → F/G |
//! |---|---|---|---|---|
//! | faculty member | 127 | 94 | 20 | 13 |
//! | three students | 218 | 12 | 173 | 33 |
//! | everyone (incl. above) | 1384 | 127+12+39 | 20+173+17 | rest |
//!
//! (39 handoffs into A and 17 into B came from users other than the five
//! tracked ones.)
//!
//! This generator reproduces those counts **exactly** — destinations are
//! dealt from a shuffled deck rather than sampled independently — so the
//! §7.1 experiment prints the same table the paper does, while arrival
//! times, dwell times and return trips are randomised.

use arm_net::ids::PortableId;
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::environment::Figure4;
use crate::trace::MobilityTrace;

use super::markov::Walker;

/// Where a C→D traversal ends up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Destination {
    OfficeA,
    OfficeB,
    FarCorridor,
}

/// Counts for one population's traversals.
#[derive(Clone, Copy, Debug)]
pub struct FanOut {
    /// Traversals ending in office A.
    pub to_a: usize,
    /// Traversals ending in office B.
    pub to_b: usize,
    /// Traversals continuing to F or G.
    pub to_fg: usize,
}

impl FanOut {
    /// Total traversals.
    pub fn total(&self) -> usize {
        self.to_a + self.to_b + self.to_fg
    }
}

/// Parameters of the workweek generator; defaults are the paper's counts.
#[derive(Clone, Copy, Debug)]
pub struct OfficeCaseParams {
    /// The faculty member's traversals (paper: 94/20/13 = 127).
    pub faculty: FanOut,
    /// The three students' combined traversals (paper: 12/173/33 = 218).
    pub students: FanOut,
    /// Everyone else's traversals (paper: 1384 total C→D, of which
    /// 39 → A and 17 → B from non-tracked users; the rest walk on).
    pub others: FanOut,
    /// Size of the anonymous crowd.
    pub n_others: usize,
    /// Length of the observed period (paper: one workweek; we model
    /// 5 × 8 working hours).
    pub week: SimDuration,
}

impl Default for OfficeCaseParams {
    fn default() -> Self {
        OfficeCaseParams {
            faculty: FanOut {
                to_a: 94,
                to_b: 20,
                to_fg: 13,
            },
            students: FanOut {
                to_a: 12,
                to_b: 173,
                to_fg: 33,
            },
            others: FanOut {
                to_a: 39,
                to_b: 17,
                to_fg: 1384 - 127 - 218 - 39 - 17,
            },
            n_others: 40,
            week: SimDuration::from_secs(5 * 8 * 3600),
        }
    }
}

/// Generate the workweek trace on the Figure 4 environment.
pub fn generate(f4: &Figure4, params: &OfficeCaseParams, rng: &mut SimRng) -> MobilityTrace {
    let rng = rng.split("office-case");
    let mut trace = MobilityTrace::new();

    // Faculty.
    trace = trace.merge(person_trace(
        f4,
        f4.faculty,
        &deal(&params.faculty, &mut rng.split("faculty-deck")),
        params.week,
        &mut rng.split("faculty"),
    ));
    // Students: split their combined deck round-robin across the three.
    let student_deck = deal(&params.students, &mut rng.split("student-deck"));
    let mut per_student: Vec<Vec<Destination>> = vec![Vec::new(); f4.students.len()];
    for (i, d) in student_deck.into_iter().enumerate() {
        per_student[i % f4.students.len()].push(d);
    }
    for (s, deck) in f4.students.iter().zip(per_student) {
        trace = trace.merge(person_trace(
            f4,
            *s,
            &deck,
            params.week,
            &mut rng.split_index("student", s.0 as u64),
        ));
    }
    // The crowd.
    let other_deck = deal(&params.others, &mut rng.split("other-deck"));
    let mut per_other: Vec<Vec<Destination>> = vec![Vec::new(); params.n_others];
    for (i, d) in other_deck.into_iter().enumerate() {
        per_other[i % params.n_others].push(d);
    }
    for (k, deck) in per_other.into_iter().enumerate() {
        let p = PortableId(100 + k as u32);
        trace = trace.merge(person_trace(
            f4,
            p,
            &deck,
            params.week,
            &mut rng.split_index("other", k as u64),
        ));
    }
    trace
}

/// Deal a shuffled destination deck matching the fan-out exactly.
fn deal(f: &FanOut, rng: &mut SimRng) -> Vec<Destination> {
    let mut deck = Vec::with_capacity(f.total());
    deck.extend(std::iter::repeat(Destination::OfficeA).take(f.to_a));
    deck.extend(std::iter::repeat(Destination::OfficeB).take(f.to_b));
    deck.extend(std::iter::repeat(Destination::FarCorridor).take(f.to_fg));
    rng.shuffle(&mut deck);
    deck
}

/// One person's week: `deck.len()` journeys, each a C→D traversal ending
/// at the dealt destination, followed by a return to C.
fn person_trace(
    f4: &Figure4,
    portable: PortableId,
    deck: &[Destination],
    week: SimDuration,
    rng: &mut SimRng,
) -> MobilityTrace {
    if deck.is_empty() {
        return MobilityTrace::new();
    }
    let slot = week / deck.len() as u64;
    let mut w = Walker::new(&f4.env, portable, SimTime::ZERO);
    w.appear(f4.c);
    let hop = |rng: &mut SimRng| SimDuration::from_secs(rng.int_range(15, 45));
    for (i, dest) in deck.iter().enumerate() {
        // Journey start: jittered within its slot; the walker clock may
        // already be past the nominal start, in which case we go at once.
        let nominal = SimTime::ZERO + slot * i as u64 + slot / 4;
        if nominal > w.now() {
            w.at_time(nominal);
        }
        let t = hop(rng);
        w.step_to(f4.d, t);
        // A short office visit or a walk down the corridor, then return.
        let visit = SimDuration::from_secs(rng.int_range(120, 420));
        match dest {
            Destination::OfficeA => {
                w.step_to(f4.a, hop(rng))
                    .dwell(visit)
                    .step_to(f4.d, hop(rng));
            }
            Destination::OfficeB => {
                w.step_to(f4.e, hop(rng))
                    .step_to(f4.b, hop(rng))
                    .dwell(visit)
                    .step_to(f4.e, hop(rng))
                    .step_to(f4.d, hop(rng));
            }
            Destination::FarCorridor => {
                w.step_to(f4.e, hop(rng)).step_to(f4.f, hop(rng));
                if rng.chance(0.5) {
                    w.step_to(f4.g, hop(rng))
                        .dwell(visit)
                        .step_to(f4.f, hop(rng));
                } else {
                    w.dwell(visit);
                }
                w.step_to(f4.e, hop(rng)).step_to(f4.d, hop(rng));
            }
        }
        w.step_to(f4.c, hop(rng));
    }
    w.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_counts_exactly() {
        let f4 = Figure4::build();
        let params = OfficeCaseParams::default();
        let mut rng = SimRng::new(42);
        let trace = generate(&f4, &params, &mut rng);
        assert!(trace.check_consistency().is_ok());

        // Faculty: 127 C→D, fan-out 94 / 20 / 13.
        assert_eq!(trace.count_transition_of(f4.faculty, f4.c, f4.d), 127);
        assert_eq!(trace.count_transition_of(f4.faculty, f4.d, f4.a), 94);
        assert_eq!(trace.count_transition_of(f4.faculty, f4.e, f4.b), 20);

        // Students combined: 218 C→D, 12 → A, 173 → B.
        let s_cd: usize = f4
            .students
            .iter()
            .map(|s| trace.count_transition_of(*s, f4.c, f4.d))
            .sum();
        let s_a: usize = f4
            .students
            .iter()
            .map(|s| trace.count_transition_of(*s, f4.d, f4.a))
            .sum();
        let s_b: usize = f4
            .students
            .iter()
            .map(|s| trace.count_transition_of(*s, f4.e, f4.b))
            .sum();
        assert_eq!(s_cd, 218);
        assert_eq!(s_a, 12);
        assert_eq!(s_b, 173);

        // Whole population: 1384 C→D; 39 into A and 17 into B from the
        // crowd.
        assert_eq!(trace.count_transition(f4.c, f4.d), 1384);
        let crowd_a = trace.count_transition(f4.d, f4.a) - 94 - 12;
        let crowd_b = trace.count_transition(f4.e, f4.b) - 20 - 173;
        assert_eq!(crowd_a, 39);
        assert_eq!(crowd_b, 17);
    }

    #[test]
    fn deterministic_given_seed() {
        let f4 = Figure4::build();
        let params = OfficeCaseParams::default();
        let t1 = generate(&f4, &params, &mut SimRng::new(7));
        let t2 = generate(&f4, &params, &mut SimRng::new(7));
        assert_eq!(t1.events(), t2.events());
        let t3 = generate(&f4, &params, &mut SimRng::new(8));
        assert_ne!(t1.events(), t3.events());
    }

    #[test]
    fn scaled_down_params_work() {
        let f4 = Figure4::build();
        let params = OfficeCaseParams {
            faculty: FanOut {
                to_a: 5,
                to_b: 1,
                to_fg: 1,
            },
            students: FanOut {
                to_a: 1,
                to_b: 9,
                to_fg: 2,
            },
            others: FanOut {
                to_a: 2,
                to_b: 1,
                to_fg: 20,
            },
            n_others: 5,
            week: SimDuration::from_secs(8 * 3600),
        };
        let trace = generate(&f4, &params, &mut SimRng::new(1));
        assert!(trace.check_consistency().is_ok());
        assert_eq!(trace.count_transition(f4.c, f4.d), 7 + 12 + 23);
    }
}
