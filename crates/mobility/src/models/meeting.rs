//! The Figure 5 meeting-room scenario.
//!
//! "The handoffs into the classes were mostly aggregated in a 10 minute
//! period around the start of the class, while the handoffs out of the
//! classes were mostly aggregated in a 5 minute period after the class."
//! Figure 5 plots, for a 35-student lecture and a 55-student laboratory:
//! (a) handoffs into the classroom at the start, (b) total handoff
//! activity just outside at the same time, (c) handoffs out at the end,
//! (d) total activity outside at the end — "a fraction of the students
//! who walk by the class actually enter".
//!
//! The generator produces attendees converging through the corridor cell
//! outside the classroom, superimposed on a Poisson walk-by stream that
//! never enters — the traffic whose wasteful advance reservations sink
//! the brute-force and aggregate algorithms at high load.

use arm_net::ids::{CellId, PortableId};
use arm_profiles::{CellClass, LoungeKind};
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::environment::IndoorEnvironment;
use crate::trace::MobilityTrace;

use super::markov::Walker;

/// The meeting scenario's floor plan: a corridor W–X–Y with the
/// classroom M off the middle segment X.
#[derive(Clone, Debug)]
pub struct MeetingEnv {
    /// The floor plan.
    pub env: IndoorEnvironment,
    /// West corridor segment (walk-by entry/exit).
    pub w: CellId,
    /// The corridor segment outside the classroom.
    pub x: CellId,
    /// East corridor segment (walk-by entry/exit).
    pub y: CellId,
    /// The classroom (a meeting-room lounge).
    pub m: CellId,
}

impl MeetingEnv {
    /// Build the scenario plan.
    pub fn build() -> Self {
        let mut env = IndoorEnvironment::new();
        let w = env.add_cell("W", CellClass::Corridor);
        let x = env.add_cell("X", CellClass::Corridor);
        let y = env.add_cell("Y", CellClass::Corridor);
        let m = env.add_cell("M", CellClass::Lounge(LoungeKind::MeetingRoom));
        env.connect(w, x);
        env.connect(x, y);
        env.connect(x, m);
        MeetingEnv { env, w, x, y, m }
    }
}

/// Scenario parameters. Defaults model the paper's lecture: class at
/// t = 30 min lasting 50 min, arrivals in the 10 minutes around the
/// start, departures in the 5 minutes after the end.
#[derive(Clone, Copy, Debug)]
pub struct MeetingParams {
    /// Number of attendees (35 for the lecture, 55 for the laboratory).
    pub attendees: usize,
    /// Class start time.
    pub t_start: SimTime,
    /// Class duration.
    pub duration: SimDuration,
    /// Arrivals fall within `[t_start − window, t_start + slack]`.
    pub arrival_window: SimDuration,
    /// Small fraction of late arrivals after the start.
    pub arrival_slack: SimDuration,
    /// Departures fall within `[t_end, t_end + departure_window]`.
    pub departure_window: SimDuration,
    /// Walk-by pedestrians per minute outside the surge windows.
    pub walkby_quiet_per_min: f64,
    /// Walk-by pedestrians per minute during the class-change surges
    /// (around the start and after the end — Figure 5.b/d show the
    /// corridor activity peaking exactly then).
    pub walkby_surge_per_min: f64,
    /// Total simulated span.
    pub span: SimDuration,
}

impl Default for MeetingParams {
    fn default() -> Self {
        MeetingParams {
            attendees: 35,
            t_start: SimTime::from_mins(30),
            duration: SimDuration::from_mins(50),
            arrival_window: SimDuration::from_mins(10),
            arrival_slack: SimDuration::from_mins(2),
            departure_window: SimDuration::from_mins(5),
            walkby_quiet_per_min: 1.0,
            walkby_surge_per_min: 20.0,
            span: SimDuration::from_mins(120),
        }
    }
}

impl MeetingParams {
    /// The walk-by intensity (per minute) at time `t`: surging in the
    /// 10 minutes around the class start and after the end.
    pub fn walkby_intensity(&self, t: SimTime) -> f64 {
        let t_end = self.t_start + self.duration;
        let start_lo = self.t_start.saturating_sub(self.arrival_window);
        let start_hi = self.t_start + self.arrival_slack;
        let end_hi = t_end + SimDuration::from_mins(10);
        if (t >= start_lo && t <= start_hi) || (t >= t_end && t <= end_hi) {
            self.walkby_surge_per_min
        } else {
            self.walkby_quiet_per_min
        }
    }
}

/// First portable id used for attendees; walk-by traffic starts above the
/// attendee range.
pub const ATTENDEE_BASE: u32 = 1000;
/// First portable id used for walk-by pedestrians.
pub const WALKBY_BASE: u32 = 10_000;

/// Generate the meeting trace.
pub fn generate(menv: &MeetingEnv, params: &MeetingParams, rng: &mut SimRng) -> MobilityTrace {
    let rng = rng.split("meeting");
    let mut trace = MobilityTrace::new();
    let t_end = params.t_start + params.duration;
    let hop = |rng: &mut SimRng| SimDuration::from_secs(rng.int_range(10, 30));

    // Attendees.
    for i in 0..params.attendees {
        let p = PortableId(ATTENDEE_BASE + i as u32);
        let mut rng = rng.split_index("attendee", i as u64);
        // Enter the classroom at a time in the arrival window…
        let window = params.arrival_window + params.arrival_slack;
        let enter_at = (params.t_start - params.arrival_window)
            + SimDuration::from_secs_f64(rng.unit() * window.as_secs_f64());
        // …and leave in the departure window.
        let leave_at =
            t_end + SimDuration::from_secs_f64(rng.unit() * params.departure_window.as_secs_f64());
        // Walk in from W or Y through X.
        let from_west = rng.chance(0.5);
        let start = if from_west { menv.w } else { menv.y };
        // Budget two hops before the classroom entry.
        let h1 = hop(&mut rng);
        let h2 = hop(&mut rng);
        let appear_at = enter_at.saturating_sub(h1 + h2);
        let mut wk = Walker::new(&menv.env, p, appear_at);
        wk.appear(start).step_to(menv.x, h1).step_to(menv.m, h2);
        // Sit through the class.
        wk.at_time(leave_at);
        let exit_west = rng.chance(0.5);
        wk.step_to(menv.x, hop(&mut rng))
            .step_to(if exit_west { menv.w } else { menv.y }, hop(&mut rng));
        trace = trace.merge(wk.into_trace());
    }

    // Walk-by stream: a nonhomogeneous Poisson process (thinned against
    // the surge profile), each pedestrian crossing W → X → Y or
    // Y → X → W with a realistic dwell in the corridor segment.
    let mut t = SimTime::ZERO;
    let max_rate = params
        .walkby_surge_per_min
        .max(params.walkby_quiet_per_min)
        .max(1e-9);
    let mut k = 0u32;
    let mut wrng = rng.split("walkby");
    loop {
        t += wrng.exp_duration(SimDuration::from_secs_f64(60.0 / max_rate));
        if t.since(SimTime::ZERO) >= params.span {
            break;
        }
        if !wrng.chance(params.walkby_intensity(t) / max_rate) {
            continue;
        }
        let p = PortableId(WALKBY_BASE + k);
        k += 1;
        let west_to_east = wrng.chance(0.5);
        let (a, b) = if west_to_east {
            (menv.w, menv.y)
        } else {
            (menv.y, menv.w)
        };
        let mut wk = Walker::new(&menv.env, p, t);
        wk.appear(a).step_to(menv.x, hop(&mut wrng));
        // Linger outside the classroom (chat, notice board, …).
        wk.dwell(SimDuration::from_secs(wrng.int_range(30, 90)));
        wk.step_to(b, hop(&mut wrng));
        trace = trace.merge(wk.into_trace());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_cluster_around_start_departures_after_end() {
        let menv = MeetingEnv::build();
        let params = MeetingParams::default();
        let trace = generate(&menv, &params, &mut SimRng::new(5));
        assert!(trace.check_consistency().is_ok());

        // Exactly `attendees` entries into the classroom.
        let entries: Vec<SimTime> = trace
            .events()
            .iter()
            .filter(|e| e.to == menv.m)
            .map(|e| e.time)
            .collect();
        assert_eq!(entries.len(), params.attendees);
        // All entries inside the arrival window (±slack).
        let lo = params.t_start - params.arrival_window;
        let hi = params.t_start + params.arrival_slack;
        assert!(entries.iter().all(|t| *t >= lo && *t <= hi));

        // Exactly `attendees` exits, all within the departure window.
        let t_end = params.t_start + params.duration;
        let exits: Vec<SimTime> = trace
            .events()
            .iter()
            .filter(|e| e.from == Some(menv.m))
            .map(|e| e.time)
            .collect();
        assert_eq!(exits.len(), params.attendees);
        // Small hop time after leave_at is included; allow one hop (30 s).
        let hi_exit = t_end + params.departure_window + SimDuration::from_secs(30);
        assert!(exits.iter().all(|t| *t >= t_end && *t <= hi_exit));
    }

    #[test]
    fn corridor_sees_more_traffic_than_the_classroom() {
        let menv = MeetingEnv::build();
        let params = MeetingParams::default();
        let trace = generate(&menv, &params, &mut SimRng::new(5));
        let into_class = trace.events().iter().filter(|e| e.to == menv.m).count();
        let into_corridor = trace.events().iter().filter(|e| e.to == menv.x).count();
        // Figure 5.b: walk-by traffic means the corridor activity strictly
        // dominates the classroom's.
        assert!(
            into_corridor > into_class,
            "{into_corridor} vs {into_class}"
        );
    }

    #[test]
    fn walkby_rate_scales() {
        let menv = MeetingEnv::build();
        let quiet = MeetingParams {
            walkby_quiet_per_min: 0.5,
            walkby_surge_per_min: 0.5,
            ..Default::default()
        };
        let busy = MeetingParams {
            walkby_quiet_per_min: 8.0,
            walkby_surge_per_min: 8.0,
            ..Default::default()
        };
        let tq = generate(&menv, &quiet, &mut SimRng::new(9));
        let tb = generate(&menv, &busy, &mut SimRng::new(9));
        let walkers =
            |t: &MobilityTrace| t.portables().iter().filter(|p| p.0 >= WALKBY_BASE).count();
        assert!(walkers(&tb) > walkers(&tq) * 4);
    }

    #[test]
    fn walkby_surges_around_class_boundaries() {
        let menv = MeetingEnv::build();
        let params = MeetingParams::default();
        let trace = generate(&menv, &params, &mut SimRng::new(11));
        // Corridor arrivals in the surge window around the start should
        // clearly exceed a mid-class window of equal length.
        let arrivals = trace.arrivals_series(menv.x, SimDuration::from_mins(1));
        let v = arrivals.values();
        let sum = |lo: usize, hi: usize| -> f64 { v.iter().skip(lo).take(hi - lo).sum() };
        let surge = sum(20, 32); // minutes 20–32 (class starts at 30)
        let mid = sum(45, 57); // quiet mid-class window
        assert!(surge > mid * 2.0, "surge {surge} vs mid {mid}");
    }

    #[test]
    fn lab_of_55_has_more_entries() {
        let menv = MeetingEnv::build();
        let lab = MeetingParams {
            attendees: 55,
            ..Default::default()
        };
        let trace = generate(&menv, &lab, &mut SimRng::new(5));
        assert_eq!(trace.events().iter().filter(|e| e.to == menv.m).count(), 55);
    }
}
