// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The general dwell-and-move walker.
//!
//! Every specific model reduces to: a portable dwells in its current cell
//! for a random time, then moves to a neighbour chosen by some policy.
//! [`Walker`] packages that loop; the policy is a closure over the
//! environment, so office workers, corridor crossers and random wanderers
//! differ only in their `next` function and dwell distribution.

use arm_net::ids::{CellId, PortableId};
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::environment::IndoorEnvironment;
use crate::trace::{MobilityTrace, MoveEvent};

/// A scripted walker emitting a consistent movement chain for one
/// portable.
pub struct Walker<'a> {
    env: &'a IndoorEnvironment,
    portable: PortableId,
    at: Option<CellId>,
    now: SimTime,
    trace: MobilityTrace,
}

impl<'a> Walker<'a> {
    /// A walker for `portable` starting at virtual time `start`.
    pub fn new(env: &'a IndoorEnvironment, portable: PortableId, start: SimTime) -> Self {
        Walker {
            env,
            portable,
            at: None,
            now: start,
            trace: MobilityTrace::new(),
        }
    }

    /// Where the walker currently is.
    pub fn position(&self) -> Option<CellId> {
        self.at
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Appear at `cell` (first event) or teleport-check move to it.
    pub fn appear(&mut self, cell: CellId) -> &mut Self {
        assert!(self.at.is_none(), "walker already placed");
        self.trace.push(MoveEvent {
            time: self.now,
            portable: self.portable,
            from: None,
            to: cell,
        });
        self.at = Some(cell);
        self
    }

    /// Wait in place.
    pub fn dwell(&mut self, d: SimDuration) -> &mut Self {
        self.now += d;
        self
    }

    /// Jump the clock to an absolute time (must not go backwards).
    pub fn at_time(&mut self, t: SimTime) -> &mut Self {
        assert!(t >= self.now, "walker time went backwards");
        self.now = t;
        self
    }

    /// Move to a neighbouring cell after `travel` time.
    pub fn step_to(&mut self, next: CellId, travel: SimDuration) -> &mut Self {
        let from = self
            .at
            .expect("precondition: walker must appear before moving");
        assert!(
            self.env.are_neighbors(from, next),
            "{from:?} and {next:?} are not neighbours"
        );
        self.now += travel;
        self.trace.push(MoveEvent {
            time: self.now,
            portable: self.portable,
            from: Some(from),
            to: next,
        });
        self.at = Some(next);
        self
    }

    /// Walk along an explicit cell path with a travel time per hop.
    pub fn walk_path(&mut self, path: &[CellId], per_hop: SimDuration) -> &mut Self {
        for c in path {
            self.step_to(*c, per_hop);
        }
        self
    }

    /// Take `steps` random-neighbour steps with the given dwell mean and
    /// per-hop travel time.
    pub fn wander(
        &mut self,
        rng: &mut SimRng,
        steps: usize,
        mean_dwell: SimDuration,
        travel: SimDuration,
    ) -> &mut Self {
        for _ in 0..steps {
            let here = self
                .at
                .expect("precondition: walker must appear before wandering");
            let neighbors: Vec<CellId> = self.env.neighbors(here).collect();
            if neighbors.is_empty() {
                break;
            }
            let next = neighbors[rng.index(neighbors.len())];
            self.dwell(rng.exp_duration(mean_dwell));
            self.step_to(next, travel);
        }
        self
    }

    /// Finish and return the trace.
    pub fn into_trace(self) -> MobilityTrace {
        self.trace.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Figure4;

    #[test]
    fn scripted_walk_is_consistent() {
        let f4 = Figure4::build();
        let mut w = Walker::new(&f4.env, PortableId(9), SimTime::from_secs(100));
        w.appear(f4.c)
            .dwell(SimDuration::from_secs(30))
            .step_to(f4.d, SimDuration::from_secs(20))
            .walk_path(&[f4.e, f4.b], SimDuration::from_secs(20));
        let t = w.into_trace();
        assert!(t.check_consistency().is_ok());
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_transition(f4.c, f4.d), 1);
        assert_eq!(t.count_transition(f4.e, f4.b), 1);
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn illegal_step_panics() {
        let f4 = Figure4::build();
        let mut w = Walker::new(&f4.env, PortableId(9), SimTime::ZERO);
        w.appear(f4.a).step_to(f4.b, SimDuration::from_secs(10));
    }

    #[test]
    fn wander_stays_on_the_graph() {
        let f4 = Figure4::build();
        let mut rng = SimRng::new(11);
        let mut w = Walker::new(&f4.env, PortableId(9), SimTime::ZERO);
        w.appear(f4.c).wander(
            &mut rng,
            50,
            SimDuration::from_secs(60),
            SimDuration::from_secs(15),
        );
        let t = w.into_trace();
        assert!(t.check_consistency().is_ok());
        assert_eq!(t.len(), 51);
    }

    #[test]
    fn at_time_jumps_forward() {
        let f4 = Figure4::build();
        let mut w = Walker::new(&f4.env, PortableId(9), SimTime::ZERO);
        w.appear(f4.c)
            .at_time(SimTime::from_mins(10))
            .step_to(f4.d, SimDuration::from_secs(10));
        let t = w.into_trace();
        assert_eq!(
            t.events()[1].time,
            SimTime::from_mins(10) + SimDuration::from_secs(10)
        );
    }
}
