// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Cell maps.
//!
//! An [`IndoorEnvironment`] is the logical floor plan: cells with a
//! class, symmetric neighbour relations, and (for offices) regular
//! occupants. It materialises into an `arm-net` topology (one base
//! station per cell on a backbone star) with **identical cell ids**, so
//! the profile/reservation layers can use one id space throughout.

use std::collections::BTreeSet;

use arm_net::ids::{CellId, PortableId, ZoneId};
use arm_net::topology::Topology;
use arm_net::Network;
use arm_profiles::{CellClass, LoungeKind};
use serde::{Deserialize, Serialize};

/// One cell of the floor plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellInfo {
    /// Human-readable name ("A", "corridor-3", …).
    pub name: String,
    /// Location-dependent class.
    pub class: CellClass,
    /// Symmetric neighbour set.
    pub neighbors: BTreeSet<CellId>,
    /// Regular occupants (offices).
    pub occupants: BTreeSet<PortableId>,
    /// Zone this cell belongs to (default: zone 0).
    pub zone: ZoneId,
}

/// A logical floor plan.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IndoorEnvironment {
    cells: Vec<CellInfo>,
}

impl IndoorEnvironment {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a cell; ids are dense and assigned in call order.
    pub fn add_cell(&mut self, name: impl Into<String>, class: CellClass) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cells.push(CellInfo {
            name: name.into(),
            class,
            neighbors: BTreeSet::new(),
            occupants: BTreeSet::new(),
            zone: ZoneId(0),
        });
        id
    }

    /// Assign a cell to a zone (§3.4.1; everything defaults to zone 0).
    pub fn set_zone(&mut self, cell: CellId, zone: ZoneId) {
        self.cells[cell.index()].zone = zone;
    }

    /// Declare a symmetric neighbour relation (handoff possible between
    /// the two cells).
    pub fn connect(&mut self, a: CellId, b: CellId) {
        assert_ne!(a, b, "a cell is not its own neighbour");
        self.cells[a.index()].neighbors.insert(b);
        self.cells[b.index()].neighbors.insert(a);
    }

    /// Register a regular occupant of an office cell.
    pub fn add_occupant(&mut self, cell: CellId, p: PortableId) {
        debug_assert!(self.cells[cell.index()].class.tracks_occupants());
        self.cells[cell.index()].occupants.insert(p);
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Cell metadata.
    pub fn cell(&self, c: CellId) -> &CellInfo {
        &self.cells[c.index()]
    }

    /// All cells in id order.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &CellInfo)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Neighbours of a cell.
    pub fn neighbors(&self, c: CellId) -> impl Iterator<Item = CellId> + '_ {
        self.cells[c.index()].neighbors.iter().copied()
    }

    /// Are `a` and `b` neighbours?
    pub fn are_neighbors(&self, a: CellId, b: CellId) -> bool {
        self.cells[a.index()].neighbors.contains(&b)
    }

    /// Cells of a given class.
    pub fn cells_of_class(&self, class: CellClass) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// Find a cell by name.
    pub fn by_name(&self, name: &str) -> Option<CellId> {
        self.cells().find(|(_, c)| c.name == name).map(|(id, _)| id)
    }

    /// Materialise into a network: one cell per environment cell (same
    /// ids), base stations on a backbone star around one switch.
    ///
    /// `cell_throughput` is the shared-medium capacity per cell (kbps;
    /// §7.1 uses 1600), `wireless_error` the per-hop packet error
    /// probability, `backbone_capacity` the wired link speed.
    pub fn build_network(
        &self,
        cell_throughput: f64,
        wireless_error: f64,
        backbone_capacity: f64,
    ) -> Network {
        let mut topo = Topology::new();
        let sw = topo.add_switch("backbone");
        for (_, info) in self.cells() {
            let c = topo.add_cell(&info.name, cell_throughput, wireless_error);
            topo.add_wired_duplex(sw, topo.base_station(c), backbone_capacity, 0.0);
        }
        Network::new(topo)
    }

    /// Seed a profile server with every cell (classes, neighbours,
    /// occupants).
    pub fn seed_profiles(&self, server: &mut arm_profiles::ProfileServer) {
        for (id, info) in self.cells() {
            let profile = arm_profiles::CellProfile::with_default_capacity(id, info.class)
                .with_neighbors(info.neighbors.iter().copied())
                .with_occupants(info.occupants.iter().copied());
            server.register_cell(profile);
        }
    }

    /// Seed a zoned universe: every cell registered under its assigned
    /// zone (§3.4.1).
    pub fn seed_zoned_profiles(&self, zones: &mut arm_profiles::ZonedProfiles) {
        for (id, info) in self.cells() {
            let profile = arm_profiles::CellProfile::with_default_capacity(id, info.class)
                .with_neighbors(info.neighbors.iter().copied())
                .with_occupants(info.occupants.iter().copied());
            zones.register_cell(info.zone, profile);
        }
    }
}

/// The paper's Figure 4 environment: faculty office **A**, student office
/// **B**, corridor cells **C–G**, arranged so the measured movements make
/// sense: C–D–E–F–G in a line, A off D, B off E.
#[derive(Clone, Debug)]
pub struct Figure4 {
    /// The floor plan.
    pub env: IndoorEnvironment,
    /// Faculty office A.
    pub a: CellId,
    /// Student office B.
    pub b: CellId,
    /// Corridor cells C, D, E, F, G.
    pub c: CellId,
    /// Corridor D (adjacent to office A).
    pub d: CellId,
    /// Corridor E (adjacent to office B).
    pub e: CellId,
    /// Corridor F.
    pub f: CellId,
    /// Corridor G.
    pub g: CellId,
    /// The faculty member (occupant of A, also occupant of B per §7.1).
    pub faculty: PortableId,
    /// The three students (occupants of B).
    pub students: [PortableId; 3],
}

impl Figure4 {
    /// Build the Figure 4 floor plan with its §7.1 cast.
    pub fn build() -> Self {
        let mut env = IndoorEnvironment::new();
        let a = env.add_cell("A", CellClass::Office);
        let b = env.add_cell("B", CellClass::Office);
        let c = env.add_cell("C", CellClass::Corridor);
        let d = env.add_cell("D", CellClass::Corridor);
        let e = env.add_cell("E", CellClass::Corridor);
        let f = env.add_cell("F", CellClass::Corridor);
        let g = env.add_cell("G", CellClass::Corridor);
        env.connect(c, d);
        env.connect(d, e);
        env.connect(e, f);
        env.connect(f, g);
        env.connect(a, d);
        env.connect(b, e);
        let faculty = PortableId(0);
        let students = [PortableId(1), PortableId(2), PortableId(3)];
        env.add_occupant(a, faculty);
        // §7.1: the student office has four regular occupants — three
        // students and the faculty member.
        env.add_occupant(b, faculty);
        for s in students {
            env.add_occupant(b, s);
        }
        Figure4 {
            env,
            a,
            b,
            c,
            d,
            e,
            f,
            g,
            faculty,
            students,
        }
    }
}

/// A parametric office wing: `n_offices` offices along a corridor of
/// `n_offices` segments, a meeting room at one end and a cafeteria plus a
/// default lounge at the other — the generic scenario for scaling
/// experiments beyond Figure 4.
pub fn office_wing(n_offices: usize) -> IndoorEnvironment {
    assert!(n_offices >= 1);
    let mut env = IndoorEnvironment::new();
    let corridor: Vec<CellId> = (0..n_offices)
        .map(|i| env.add_cell(format!("corridor-{i}"), CellClass::Corridor))
        .collect();
    for w in corridor.windows(2) {
        env.connect(w[0], w[1]);
    }
    for (i, seg) in corridor.iter().enumerate() {
        let office = env.add_cell(format!("office-{i}"), CellClass::Office);
        env.connect(office, *seg);
        env.add_occupant(office, PortableId(i as u32));
    }
    let meeting = env.add_cell("meeting-room", CellClass::Lounge(LoungeKind::MeetingRoom));
    env.connect(meeting, corridor[0]);
    let cafeteria = env.add_cell("cafeteria", CellClass::Lounge(LoungeKind::Cafeteria));
    env.connect(
        cafeteria,
        *corridor.last().expect("invariant: non-empty corridor"),
    );
    let lounge = env.add_cell("lounge", CellClass::Lounge(LoungeKind::Default));
    env.connect(
        lounge,
        *corridor.last().expect("invariant: non-empty corridor"),
    );
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_adjacency_matches_the_measured_movements() {
        let f4 = Figure4::build();
        let env = &f4.env;
        // C → D is the tracked corridor traversal.
        assert!(env.are_neighbors(f4.c, f4.d));
        // From D one can enter A, or continue to E.
        assert!(env.are_neighbors(f4.d, f4.a));
        assert!(env.are_neighbors(f4.d, f4.e));
        // From E one can enter B, or continue toward F → G.
        assert!(env.are_neighbors(f4.e, f4.b));
        assert!(env.are_neighbors(f4.e, f4.f));
        assert!(env.are_neighbors(f4.f, f4.g));
        // Offices are not directly adjacent.
        assert!(!env.are_neighbors(f4.a, f4.b));
        // Cast: faculty occupies A and B; students occupy B.
        assert!(env.cell(f4.a).occupants.contains(&f4.faculty));
        assert!(env.cell(f4.b).occupants.contains(&f4.faculty));
        for s in f4.students {
            assert!(env.cell(f4.b).occupants.contains(&s));
        }
    }

    #[test]
    fn network_materialisation_aligns_ids() {
        let f4 = Figure4::build();
        let net = f4.env.build_network(1600.0, 0.01, 100_000.0);
        assert_eq!(net.topology().cell_count(), f4.env.cell_count());
        for (id, info) in f4.env.cells() {
            // Wireless capacity as configured, name propagated.
            let wl = net.topology().wireless_link(id);
            assert_eq!(net.link(wl).capacity(), 1600.0);
            let bs = net.topology().base_station(id);
            assert!(net.topology().node(bs).name.contains(&info.name));
        }
    }

    #[test]
    fn profile_seeding_copies_classes_and_occupants() {
        let f4 = Figure4::build();
        let mut server = arm_profiles::ProfileServer::new(arm_net::ids::ZoneId(0));
        f4.env.seed_profiles(&mut server);
        assert_eq!(server.cell(f4.a).unwrap().class, CellClass::Office);
        assert!(server.cell(f4.a).unwrap().is_occupant(f4.faculty));
        assert_eq!(server.cell(f4.c).unwrap().class, CellClass::Corridor);
        assert!(server.cell(f4.d).unwrap().neighbors.contains(&f4.e));
    }

    #[test]
    fn office_wing_structure() {
        let env = office_wing(4);
        // 4 corridors + 4 offices + meeting + cafeteria + lounge.
        assert_eq!(env.cell_count(), 11);
        assert_eq!(env.cells_of_class(CellClass::Office).len(), 4);
        assert_eq!(env.cells_of_class(CellClass::Corridor).len(), 4);
        assert_eq!(
            env.cells_of_class(CellClass::Lounge(LoungeKind::MeetingRoom))
                .len(),
            1
        );
        let m = env.by_name("meeting-room").unwrap();
        let c0 = env.by_name("corridor-0").unwrap();
        assert!(env.are_neighbors(m, c0));
        assert!(env.by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "not its own neighbour")]
    fn self_loop_rejected() {
        let mut env = IndoorEnvironment::new();
        let c = env.add_cell("x", CellClass::Corridor);
        env.connect(c, c);
    }
}
