//! Property-based tests: every mobility generator produces consistent,
//! deterministic traces for arbitrary parameters.

use arm_mobility::channel::{self, ChannelParams};
use arm_mobility::environment::{office_wing, Figure4};
use arm_mobility::models::cafeteria::{self, CafeteriaEnv, CafeteriaParams};
use arm_mobility::models::meeting::{self, MeetingEnv, MeetingParams};
use arm_mobility::models::office_case::{self, FanOut, OfficeCaseParams};
use arm_mobility::models::random_walk::{self, RandomWalkParams};
use arm_mobility::workload::{poisson_arrivals, ConnTypeSpec};
use arm_net::ids::CellId;
use arm_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The office-case generator reproduces arbitrary fan-out counts
    /// exactly and stays physically consistent.
    #[test]
    fn office_case_exact_for_any_counts(
        fa in 0usize..20, fb in 0usize..20, ffg in 0usize..10,
        sa in 0usize..10, sb in 0usize..30, sfg in 0usize..10,
        oa in 0usize..10, ob in 0usize..10, ofg in 0usize..40,
        n_others in 1usize..8,
        seed in any::<u64>(),
    ) {
        let params = OfficeCaseParams {
            faculty: FanOut { to_a: fa, to_b: fb, to_fg: ffg },
            students: FanOut { to_a: sa, to_b: sb, to_fg: sfg },
            others: FanOut { to_a: oa, to_b: ob, to_fg: ofg },
            n_others,
            week: SimDuration::from_secs(8 * 3600),
        };
        let f4 = Figure4::build();
        let trace = office_case::generate(&f4, &params, &mut SimRng::new(seed));
        prop_assert!(trace.check_consistency().is_ok());
        let faculty_cd = trace.count_transition_of(f4.faculty, f4.c, f4.d);
        prop_assert_eq!(faculty_cd, fa + fb + ffg);
        let total_cd = trace.count_transition(f4.c, f4.d);
        prop_assert_eq!(
            total_cd,
            fa + fb + ffg + sa + sb + sfg + oa + ob + ofg
        );
        prop_assert_eq!(trace.count_transition_of(f4.faculty, f4.d, f4.a), fa);
    }

    /// Meeting traces: exact attendance, clustered arrivals, consistency.
    #[test]
    fn meeting_trace_consistent(
        attendees in 1usize..40,
        walkby in 0.0f64..12.0,
        seed in any::<u64>(),
    ) {
        let menv = MeetingEnv::build();
        let params = MeetingParams {
            attendees,
            walkby_quiet_per_min: walkby / 4.0,
            walkby_surge_per_min: walkby,
            ..Default::default()
        };
        let trace = meeting::generate(&menv, &params, &mut SimRng::new(seed));
        prop_assert!(trace.check_consistency().is_ok());
        let entries = trace.events().iter().filter(|e| e.to == menv.m).count();
        prop_assert_eq!(entries, attendees);
        let exits = trace.events().iter().filter(|e| e.from == Some(menv.m)).count();
        prop_assert_eq!(exits, attendees);
    }

    /// Cafeteria traces: balanced in/out, consistent, all inside the span.
    #[test]
    fn cafeteria_trace_consistent(
        peak in 0.5f64..8.0,
        stay_mins in 5u64..40,
        seed in any::<u64>(),
    ) {
        let cenv = CafeteriaEnv::build();
        let params = CafeteriaParams {
            peak_per_min: peak,
            mean_stay: SimDuration::from_mins(stay_mins),
            ..Default::default()
        };
        let trace = cafeteria::generate(&cenv, &params, &mut SimRng::new(seed));
        prop_assert!(trace.check_consistency().is_ok());
        let ins = trace.events().iter().filter(|e| e.to == cenv.f).count();
        let outs = trace.events().iter().filter(|e| e.from == Some(cenv.f)).count();
        prop_assert_eq!(ins, outs);
    }

    /// Random walks: consistent and deterministic per seed on arbitrary
    /// wings.
    #[test]
    fn random_walk_consistent(
        offices in 1usize..6,
        population in 1usize..25,
        seed in any::<u64>(),
    ) {
        let env = office_wing(offices);
        let params = RandomWalkParams {
            population,
            span: SimDuration::from_mins(40),
            ..Default::default()
        };
        let a = random_walk::generate(&env, &params, &mut SimRng::new(seed));
        prop_assert!(a.check_consistency().is_ok());
        let b = random_walk::generate(&env, &params, &mut SimRng::new(seed));
        prop_assert_eq!(a.events(), b.events());
    }

    /// Channel schedules alternate fade/recover, stay sorted, and end
    /// recovered.
    #[test]
    fn channel_schedule_wellformed(
        good_secs in 30u64..600,
        bad_secs in 5u64..120,
        frac in 0.1f64..0.95,
        seed in any::<u64>(),
    ) {
        let params = ChannelParams {
            mean_good: SimDuration::from_secs(good_secs),
            mean_bad: SimDuration::from_secs(bad_secs),
            bad_fraction: frac,
        };
        let evs = channel::generate(
            CellId(0),
            &params,
            SimDuration::from_mins(120),
            &mut SimRng::new(seed),
        )
        .expect("in-range fraction");
        prop_assert!(evs.windows(2).all(|w| w[0].time <= w[1].time));
        for (i, e) in evs.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!((e.effective_fraction - frac).abs() < 1e-12);
            } else {
                prop_assert!((e.effective_fraction - 1.0).abs() < 1e-12);
            }
        }
        if let Some(last) = evs.last() {
            prop_assert_eq!(last.effective_fraction, 1.0);
        }
    }

    /// Poisson workload arrivals are sorted, unique, deterministic, and
    /// scale with the span.
    #[test]
    fn workload_arrivals_wellformed(span_units in 50.0f64..400.0, seed in any::<u64>()) {
        let cells = [CellId(0), CellId(1)];
        let types = ConnTypeSpec::fig6_types();
        let span = SimDuration::from_secs_f64(span_units);
        let unit = SimDuration::from_secs(1);
        let a = poisson_arrivals(&cells, &types, span, unit, &mut SimRng::new(seed));
        let b = poisson_arrivals(&cells, &types, span, unit, &mut SimRng::new(seed));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(a.iter().all(|r| r.time < SimTime::ZERO + span));
        // Expected count ≈ (30+1)×2×span; allow wide noise bounds.
        let expect = 62.0 * span_units;
        prop_assert!((a.len() as f64) > expect * 0.7);
        prop_assert!((a.len() as f64) < expect * 1.3);
    }
}
