//! # arm-attrs — inert marker attributes for the static-analysis layer
//!
//! The attributes here expand to their input unchanged; they exist so
//! that policy machine-checked by `arm-check` (`cargo xtask check`) can
//! be keyed on explicit, compiler-verified annotations instead of name
//! conventions. Because they are real proc-macro attributes, a typo'd
//! annotation is a compile error, not a silently skipped rule.

use proc_macro::TokenStream;

/// Marks a function as a *mutation site that touches allocations*: it
/// admits, squeezes, reroutes, terminates, or otherwise moves rate state
/// that the resident [`IncrementalMaxmin`] engine caches.
///
/// The `marks-dirty` rule of `arm-check` enforces, on every function
/// carrying this attribute, that its body reaches one of the engine's
/// invalidation methods (`mark_conn_dirty`, `mark_link_dirty`,
/// `touch_link`, `sync_network`, `upsert_conn`, `remove_conn`,
/// `set_link_excess`) — directly or through another annotated function —
/// and, conversely, that no un-annotated function in an allocation
/// module calls the raw ledger mutators. See `DESIGN.md` §8.
///
/// [`IncrementalMaxmin`]: ../arm_qos/maxmin/incremental/struct.IncrementalMaxmin.html
#[proc_macro_attribute]
pub fn marks_dirty(args: TokenStream, item: TokenStream) -> TokenStream {
    // Inert: reject arguments (the rule key is the attribute itself),
    // pass the item through untouched.
    if !args.is_empty() {
        let mut err: TokenStream =
            "compile_error!(\"#[arm_attrs::marks_dirty] takes no arguments\");"
                .parse()
                .unwrap_or_default();
        err.extend(item);
        return err;
    }
    item
}
