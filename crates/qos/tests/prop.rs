//! Property-based tests for the maxmin machinery — most importantly
//! Theorem 1: the distributed event-driven protocol converges to the
//! centralized maxmin optimum on arbitrary topologies.

use arm_net::ids::{ConnId, LinkId};
use arm_qos::maxmin::advertised::{advertised_rate, advertised_rate_for};
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{Engine, SimDuration, SimTime};
use proptest::prelude::*;

/// Strategy: a random problem with `n_links` links of random capacity and
/// `n_conns` connections over random non-empty link subsets with random
/// (sometimes finite) demands.
fn problem_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<(f64, Vec<usize>)>)> {
    (2usize..6, 1usize..8).prop_flat_map(|(n_links, n_conns)| {
        let caps = prop::collection::vec(0.5f64..50.0, n_links);
        let conns = prop::collection::vec(
            (
                prop_oneof![Just(1000.0f64), 0.1f64..20.0],
                prop::collection::vec(0usize..n_links, 1..=n_links),
            ),
            n_conns,
        );
        (caps, conns)
    })
}

fn build_problem(caps: &[f64], conns: &[(f64, Vec<usize>)]) -> MaxminProblem {
    let mut p = MaxminProblem::default();
    for (i, c) in caps.iter().enumerate() {
        p.link_excess.insert(LinkId(i as u32), *c);
    }
    for (i, (demand, links)) in conns.iter().enumerate() {
        let mut ls: Vec<LinkId> = links.iter().map(|l| LinkId(*l as u32)).collect();
        ls.sort_unstable();
        ls.dedup();
        p.conns.insert(
            ConnId(i as u32),
            ConnDemand {
                demand: *demand,
                links: ls,
            },
        );
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The centralized solver always produces a maxmin-optimal,
    /// feasible allocation.
    #[test]
    fn centralized_solver_is_maxmin((caps, conns) in problem_strategy()) {
        let p = build_problem(&caps, &conns);
        let a = p.solve();
        prop_assert!(p.verify_maxmin(&a).is_ok(), "{:?}", p.verify_maxmin(&a));
    }

    /// Theorem 1: the distributed protocol (both variants) converges to
    /// the centralized optimum from cold start on random topologies.
    #[test]
    fn distributed_matches_centralized((caps, conns) in problem_strategy()) {
        let p = build_problem(&caps, &conns);
        let expect = p.solve();
        for variant in [Variant::Flooding, Variant::Refined] {
            let mut proto = DistributedMaxmin::new(variant, SimDuration::from_millis(1));
            for (l, cap) in &p.link_excess {
                proto.add_link(*l, *cap);
            }
            for (c, d) in &p.conns {
                proto.add_conn(*c, d.links.clone(), d.demand);
            }
            let mut engine = Engine::new(proto).with_event_budget(5_000_000);
            for (l, cap) in &p.link_excess {
                engine.schedule_at(SimTime::ZERO, Ev::ChangeExcess { link: *l, excess: *cap });
            }
            let stop = engine.run();
            prop_assert_eq!(stop, arm_sim::StopCondition::QueueEmpty);
            prop_assert!(engine.model().is_quiescent());
            for (c, x) in &expect {
                let g = engine.model().rates().get(c).copied().unwrap_or(0.0);
                prop_assert!(
                    (g - x).abs() < 1e-6,
                    "{:?}: {:?} got {} want {} (expect {:?}, got {:?})",
                    variant, c, g, x, expect, engine.model().rates()
                );
            }
        }
    }

    /// Theorem 1, steady-state clause: after convergence, a capacity
    /// perturbation re-converges to the new optimum.
    #[test]
    fn distributed_reconverges_after_perturbation(
        (caps, conns) in problem_strategy(),
        perturb_idx in 0usize..6,
        factor in 0.3f64..3.0,
    ) {
        let p = build_problem(&caps, &conns);
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        for (l, cap) in &p.link_excess {
            proto.add_link(*l, *cap);
        }
        for (c, d) in &p.conns {
            proto.add_conn(*c, d.links.clone(), d.demand);
        }
        let mut engine = Engine::new(proto).with_event_budget(5_000_000);
        for (l, cap) in &p.link_excess {
            engine.schedule_at(SimTime::ZERO, Ev::ChangeExcess { link: *l, excess: *cap });
        }
        engine.run();
        // Perturb one link.
        let target = LinkId((perturb_idx % caps.len()) as u32);
        let new_cap = caps[target.0 as usize] * factor;
        let mut p2 = p.clone();
        p2.link_excess.insert(target, new_cap);
        engine.schedule_at(engine.now(), Ev::ChangeExcess { link: target, excess: new_cap });
        let stop = engine.run();
        prop_assert_eq!(stop, arm_sim::StopCondition::QueueEmpty);
        let expect = p2.solve();
        for (c, x) in &expect {
            let g = engine.model().rates().get(c).copied().unwrap_or(0.0);
            prop_assert!(
                (g - x).abs() < 1e-6,
                "{:?} got {} want {} after perturbing {:?} to {}",
                c, g, x, target, new_cap
            );
        }
    }

    /// Robustness clause of Theorem 1: with seeded control-packet loss
    /// and reordering delay injected into every delivery, the protocol
    /// still quiesces and converges to the centralized optimum — phase
    /// retransmission with capped exponential backoff recovers any
    /// finite loss pattern (loss rate < 1).
    #[test]
    fn distributed_survives_arbitrary_packet_loss(
        (caps, conns) in problem_strategy(),
        seed in any::<u64>(),
        loss in 0.0f64..0.85,
        delay_prob in 0.0f64..0.85,
    ) {
        let p = build_problem(&caps, &conns);
        let expect = p.solve();
        for variant in [Variant::Flooding, Variant::Refined] {
            let mut proto = DistributedMaxmin::new(variant, SimDuration::from_millis(1));
            proto.set_control_faults(seed, loss, delay_prob);
            for (l, cap) in &p.link_excess {
                proto.add_link(*l, *cap);
            }
            for (c, d) in &p.conns {
                proto.add_conn(*c, d.links.clone(), d.demand);
            }
            let mut engine = Engine::new(proto).with_event_budget(5_000_000);
            for (l, cap) in &p.link_excess {
                engine.schedule_at(SimTime::ZERO, Ev::ChangeExcess { link: *l, excess: *cap });
            }
            let stop = engine.run();
            prop_assert_eq!(
                stop,
                arm_sim::StopCondition::QueueEmpty,
                "lossy run must quiesce (seed {}, loss {}, delay {})",
                seed, loss, delay_prob
            );
            prop_assert!(engine.model().is_quiescent());
            for (c, x) in &expect {
                let g = engine.model().rates().get(c).copied().unwrap_or(0.0);
                prop_assert!(
                    (g - x).abs() < 1e-6,
                    "{:?} under loss {}: {:?} got {} want {} (rates {:?})",
                    variant, loss, c, g, x, engine.model().rates()
                );
            }
        }
    }

    /// The advertised rate is always within [0, excess] and is monotone
    /// in the excess capacity.
    #[test]
    fn advertised_rate_bounds(
        excess in 0.0f64..100.0,
        bump in 0.0f64..50.0,
        recorded in prop::collection::vec(0.0f64..40.0, 0..8),
    ) {
        let mu = advertised_rate(excess, &recorded);
        prop_assert!(mu >= 0.0);
        prop_assert!(mu <= excess + 1e-9);
        let mu2 = advertised_rate(excess + bump, &recorded);
        prop_assert!(mu2 >= mu - 1e-9, "monotone in excess: {mu2} < {mu}");
    }

    /// The subject-specific quote never falls below the plain equal split
    /// and never exceeds the excess.
    #[test]
    fn advertised_rate_for_bounds(
        excess in 0.0f64..100.0,
        others in prop::collection::vec(0.0f64..40.0, 0..8),
    ) {
        let mu = advertised_rate_for(excess, &others);
        prop_assert!(mu >= 0.0);
        prop_assert!(mu <= excess + 1e-9);
        let equal_split = excess / (others.len() + 1) as f64;
        prop_assert!(mu >= equal_split - 1e-9, "{mu} < equal split {equal_split}");
    }
}

// ---------------------------------------------------------------------
// Scheduler properties (Table 2's disciplines)
// ---------------------------------------------------------------------

use arm_qos::schedulers::traffic::{conforms, greedy, random_conformant};
use arm_qos::schedulers::{gps, rcsp, wfq};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PGPS lag bound: WFQ departure ≤ GPS departure + L_max/C, for
    /// arbitrary conformant flows sharing a link.
    #[test]
    fn wfq_lags_gps_by_at_most_one_packet(
        seed in any::<u64>(),
        flows in prop::collection::vec((1.0f64..10.0, 10.0f64..60.0), 1..4),
        load in 0.4f64..1.0,
    ) {
        let total_rho: f64 = flows.iter().map(|(_, r)| r).sum();
        let capacity = total_rho * 1.2;
        let l_max = 1.0;
        let mut rng = arm_sim::SimRng::new(seed);
        let mut pkts = Vec::new();
        for (f, (sigma, rho)) in flows.iter().enumerate() {
            pkts.extend(random_conformant(f, *sigma, *rho, l_max, load, 3.0, &mut rng));
        }
        prop_assume!(!pkts.is_empty());
        let weights: Vec<f64> = flows.iter().map(|(_, r)| *r).collect();
        let g = gps::finish_times(&pkts, &weights, capacity);
        let w = wfq::simulate(&pkts, &weights, capacity);
        for (gd, wd) in g.iter().zip(&w) {
            prop_assert!(
                wd.departure <= gd.departure + l_max / capacity + 1e-6,
                "lag bound violated: {} vs {}",
                wd.departure,
                gd.departure
            );
        }
    }

    /// The Table 2 WFQ delay bound holds for greedy (worst-case) sources.
    #[test]
    fn wfq_table2_bound_on_greedy_sources(
        flows in prop::collection::vec((0.5f64..8.0, 16.0f64..64.0), 1..4),
    ) {
        let total_rho: f64 = flows.iter().map(|(_, r)| r).sum();
        let capacity = total_rho * 1.1;
        let l_max = 1.0;
        let mut pkts = Vec::new();
        for (f, (sigma, rho)) in flows.iter().enumerate() {
            pkts.extend(greedy(f, *sigma, *rho, l_max, 0.0, 1.5));
        }
        let weights: Vec<f64> = flows.iter().map(|(_, r)| *r).collect();
        let d = wfq::simulate(&pkts, &weights, capacity);
        for (f, (sigma, rho)) in flows.iter().enumerate() {
            let bound = (sigma + l_max) / rho + l_max / capacity + 1e-6;
            for x in d.iter().filter(|x| x.packet.flow == f) {
                prop_assert!(x.delay() <= bound, "flow {f}: {} > {bound}", x.delay());
            }
        }
    }

    /// The RCSP regulator's output always conforms to the declared
    /// envelope (plus the one-packet transmission quantum), no matter how
    /// badly the input violates it.
    #[test]
    fn rcsp_regulator_output_is_conformant(
        seed in any::<u64>(),
        sigma in 1.0f64..8.0,
        rho in 10.0f64..60.0,
        n_burst in 1usize..20,
    ) {
        let l_max = 1.0;
        // A violating input: n_burst maximal packets all at t = 0.
        let pkts: Vec<_> = (0..n_burst)
            .map(|_| arm_qos::schedulers::Packet { flow: 0, size: l_max, arrival: 0.0 })
            .collect();
        let flows = [rcsp::RcspFlow { sigma, rho, priority: 0 }];
        let (deps, _) = rcsp::simulate(&pkts, &flows, 10_000.0);
        let out: Vec<_> = deps
            .iter()
            .map(|d| arm_qos::schedulers::Packet {
                flow: 0,
                size: d.packet.size,
                arrival: d.departure,
            })
            .collect();
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("no NaN"));
        prop_assert!(conforms(&sorted, sigma + l_max, rho));
        let _ = seed;
    }

    /// GPS conserves work: within one busy period starting at t = 0 with
    /// all arrivals at 0, the last departure equals total bits / C.
    #[test]
    fn gps_work_conservation(
        sizes in prop::collection::vec(0.1f64..5.0, 1..20),
        capacity in 5.0f64..100.0,
    ) {
        let pkts: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| arm_qos::schedulers::Packet {
                flow: i % 3,
                size: *s,
                arrival: 0.0,
            })
            .collect();
        let d = gps::finish_times(&pkts, &[1.0, 2.0, 3.0], capacity);
        let last = d.iter().map(|x| x.departure).fold(0.0, f64::max);
        let total: f64 = sizes.iter().sum();
        prop_assert!((last - total / capacity).abs() < 1e-6);
    }
}
