//! Differential property tests for the incremental maxmin engine: after
//! an arbitrary sequence of admit/depart/capacity-change events, the
//! resident allocation must match `MaxminProblem::solve` from scratch
//! (to 1e-9 — in fact bit-for-bit) and `verify_maxmin` must hold.

use arm_net::ids::{ConnId, LinkId};
use arm_qos::maxmin::incremental::IncrementalMaxmin;
use proptest::prelude::*;

/// One churn event against the engine.
#[derive(Clone, Debug)]
enum Event {
    /// Admit a new connection, or re-admit/renegotiate an existing id
    /// with new demand and route (a handoff is exactly this).
    Admit {
        conn: u32,
        demand: f64,
        links: Vec<u32>,
    },
    /// Depart (no-op if the id is unknown — engines must tolerate it).
    Depart { conn: u32 },
    /// A link's excess capacity changes (fade, claim churn, restoration).
    SetCapacity { link: u32, excess: f64 },
}

const N_LINKS: u32 = 5;
const N_CONN_IDS: u32 = 12;

fn demand_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1000.0f64), Just(0.0f64), 0.1f64..20.0]
}

fn links_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..N_LINKS, 1..=3).prop_map(|mut ls| {
        ls.sort_unstable();
        ls.dedup();
        ls
    })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..N_CONN_IDS, demand_strategy(), links_strategy()).prop_map(|(conn, demand, links)| {
            Event::Admit {
                conn,
                demand,
                links,
            }
        }),
        (0..N_CONN_IDS).prop_map(|conn| Event::Depart { conn }),
        (0..N_LINKS, prop_oneof![Just(0.0f64), 0.5f64..50.0])
            .prop_map(|(link, excess)| Event::SetCapacity { link, excess }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole's correctness anchor: incremental == from-scratch
    /// after every prefix of a random event sequence, and the result is
    /// always maxmin-optimal.
    #[test]
    fn incremental_matches_fresh_solve_after_any_event_sequence(
        caps in prop::collection::vec(0.5f64..50.0, N_LINKS as usize),
        events in prop::collection::vec(event_strategy(), 1..24),
    ) {
        let mut engine = IncrementalMaxmin::new();
        for (i, c) in caps.iter().enumerate() {
            engine.set_link_excess(LinkId(i as u32), *c);
        }
        for ev in &events {
            match ev {
                Event::Admit { conn, demand, links } => {
                    let ls: Vec<LinkId> = links.iter().map(|l| LinkId(*l)).collect();
                    engine.upsert_conn(ConnId(*conn), *demand, &ls);
                }
                Event::Depart { conn } => engine.remove_conn(ConnId(*conn)),
                Event::SetCapacity { link, excess } => {
                    engine.set_link_excess(LinkId(*link), *excess);
                }
            }
            let fresh = engine.as_problem().solve();
            let incremental = engine.resolve().clone();
            prop_assert_eq!(
                fresh.len(),
                incremental.len(),
                "allocation key sets diverged after {:?}",
                ev
            );
            for (c, want) in &fresh {
                let got = incremental[c];
                prop_assert!(
                    (got - want).abs() <= 1e-9,
                    "{:?} after {:?}: incremental {} vs fresh {}",
                    c, ev, got, want
                );
                prop_assert!(
                    got.to_bits() == want.to_bits(),
                    "{:?} after {:?}: not bit-identical ({} vs {})",
                    c, ev, got, want
                );
            }
            let verdict = engine.as_problem().verify_maxmin(&incremental);
            prop_assert!(verdict.is_ok(), "not maxmin after {:?}: {:?}", ev, verdict);
        }
    }

    /// Churn-aware caching: replaying the same inputs dirties nothing,
    /// so a pure re-resolve is a cache hit and leaves the allocation
    /// untouched.
    #[test]
    fn identical_inputs_do_not_dirty(
        caps in prop::collection::vec(0.5f64..50.0, N_LINKS as usize),
        conns in prop::collection::vec((demand_strategy(), links_strategy()), 1..8),
    ) {
        let mut engine = IncrementalMaxmin::new();
        for (i, c) in caps.iter().enumerate() {
            engine.set_link_excess(LinkId(i as u32), *c);
        }
        for (i, (demand, links)) in conns.iter().enumerate() {
            let ls: Vec<LinkId> = links.iter().map(|l| LinkId(*l)).collect();
            engine.upsert_conn(ConnId(i as u32), *demand, &ls);
        }
        engine.resolve();
        let before = engine.stats;
        // Replay everything verbatim.
        for (i, c) in caps.iter().enumerate() {
            engine.set_link_excess(LinkId(i as u32), *c);
        }
        for (i, (demand, links)) in conns.iter().enumerate() {
            let ls: Vec<LinkId> = links.iter().map(|l| LinkId(*l)).collect();
            engine.upsert_conn(ConnId(i as u32), *demand, &ls);
        }
        prop_assert!(!engine.is_dirty(), "verbatim replay must not dirty");
        engine.resolve();
        prop_assert_eq!(engine.stats.cache_hits, before.cache_hits + 1);
        prop_assert_eq!(engine.stats.incremental_solves, before.incremental_solves);
    }
}
