//! The maxmin optimality criterion (§5.2) and its solvers.
//!
//! The paper distributes *excess* bandwidth — capacity beyond the
//! guaranteed floors and advance reservations — among connections
//! according to the maxmin criterion, "fair in the sense that all
//! connections constrained by a bottleneck link get an equal share of
//! this bottleneck capacity; efficient in the sense that the bottleneck
//! resource is utilized up to its capacity".
//!
//! Submodules:
//!
//! * [`advertised`] — the advertised-rate `μ_l` computation with the
//!   restricted-set two-pass refinement (§5.3.1),
//! * [`centralized`] — a water-filling reference solver used as ground
//!   truth for Theorem 1 convergence tests and by the synchronous
//!   conflict-resolution path,
//! * [`distributed`] — the event-driven ADVERTISE/UPDATE protocol of
//!   §5.3.1, in both the flooding base variant and the `M(l)`-restricted
//!   refinement,
//! * [`incremental`] — a resident engine that keeps the solved
//!   allocation, reverse link→connection index, and per-link bottleneck
//!   sets `M(l)` between events and re-fills only the dirty region's
//!   transitive closure, bit-identical to a from-scratch solve.
//!
//! ## Bottleneck definitions (§5.2)
//!
//! With `b'_(av,j),l` the excess bandwidth available to connection `j` at
//! link `l`, a link `l` is a **connection bottleneck** for an unsatisfied
//! `j` if it minimises `b'_(av,j),i` over `j`'s path. A link is a
//! **network bottleneck** if it minimises `b'_av,i / N_i` over all links
//! (applied recursively after removing satisfied connections). Every
//! network bottleneck is a connection bottleneck for all its connections;
//! the converse need not hold. These predicates are exposed from
//! [`centralized`] and verified in tests.

pub mod advertised;
pub mod centralized;
pub mod distributed;
pub mod incremental;
