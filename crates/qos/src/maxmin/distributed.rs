// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The event-driven distributed rate-allocation protocol (§5.3.1).
//!
//! Adapted from Charny/Clark/Jain's explicit-rate congestion-control
//! scheme \[8\], re-cast by the paper as an *event-driven* protocol that
//! initiates adaptation "upon handoffs and dynamically changing network
//! capacities" rather than periodically.
//!
//! Mechanics implemented here, per the paper's description:
//!
//! * every link keeps **recorded rates** (last stamped rate fixed for
//!   each of its connections) and derives its **advertised rate** from
//!   them; the rate quoted *to* a connection is computed "under the
//!   assumption that this switch is a bottleneck for this connection"
//!   (the subject is never classified restricted —
//!   [`advertised_rate_for`]),
//! * a switch detecting a bandwidth change **initiates two ADVERTISE
//!   packets per affected connection** (upstream + downstream); each
//!   carries a **stamped rate** that every link on the path clamps down
//!   to its own advertised rate, and each is forwarded back to the
//!   initiator from the source/destination,
//! * the initiator repeats the round trip — **four round trips** per the
//!   paper's convergence argument — then emits **UPDATE** packets fixing
//!   the connection's rate to the minimum of the two latest returned
//!   stamped rates,
//! * **`M(l)` maintenance**: a link adds the connection to its bottleneck
//!   set when the stamp was clamped at this link (`μ_l < b_stamp`) and
//!   removes it when the stamp arrived already lower (`μ_l > b_stamp`),
//! * **secondary initiations**: when a link's advertised rate moves, it
//!   initiates ADVERTISE processes for other connections — *all* of them
//!   in the [`Variant::Flooding`] base version; only those that can
//!   actually change (the bottlenecked set on upgrades, the
//!   over-consuming set on downgrades) in the [`Variant::Refined`]
//!   version.
//!
//! ## Serialization of adaptation processes
//!
//! The paper equips ADVERTISE packets with "a global ID and a sequence
//! number … to avoid possible infinite loop due to the flooding
//! mechanism", without spelling the mechanism out. We realise that
//! ordering requirement by serialising adaptation processes: one
//! (initiator, connection) session's packets are in flight at a time,
//! and further initiations queue FIFO. In a deterministic simulator this
//! is not merely convenient — fully concurrent sessions can lock into a
//! sustained oscillation (two sessions repeatedly observing each other's
//! optimistic transients at exactly the same virtual instants), which is
//! an artifact no real network with jittered latencies would exhibit.
//! Serialised, the protocol is a Gauss–Seidel iteration on the maxmin
//! fixed point and converges; Theorem 1's claim — convergence to the
//! maxmin optimum in finitely many steps — is asserted against the
//! centralized solver in this module's tests.
//!
//! The protocol is control-plane only: it converges on an excess rate per
//! connection ([`DistributedMaxmin::rates`]), which the caller applies to
//! the ledgers (see [`crate::maxmin::centralized::apply_allocation`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use arm_net::ids::{ConnId, LinkId};
use arm_obs::{ObsEvent, SharedObs};
use arm_sim::engine::{Ctx, Model};
use arm_sim::{SimDuration, SimRng};

use super::advertised::advertised_rate_for_iter;

/// Rate agreement tolerance: changes smaller than this don't trigger
/// further control traffic (prevents float-noise loops).
const TOL: f64 = 1e-7;

/// Base (flooding) algorithm or the `M(l)`-restricted refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// "Essentially floods the network with ADVERTISE packets."
    Flooding,
    /// Initiates only toward connections that can actually change.
    Refined,
}

/// Direction of travel along a connection's route (index order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    /// Toward route index 0 (the source).
    Up,
    /// Toward the last route index (the destination).
    Down,
}

/// Leg of the round trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Leg {
    /// Outbound from the initiator toward the end of the route.
    Out,
    /// Bouncing back toward the initiator.
    Back,
}

/// An in-flight control packet.
#[derive(Clone, Debug)]
pub struct Packet {
    conn: ConnId,
    /// Stamped rate (excess kbps).
    stamped: f64,
    /// Index into the connection's link list the packet is delivered at.
    pos: usize,
    dir: Dir,
    leg: Leg,
    origin: LinkId,
    /// Global id of the adaptation process this packet belongs to.
    gid: u64,
    /// Round-trip phase (1–4) the packet belongs to; a retransmitted
    /// round ignores stragglers from the aborted one.
    phase: u32,
    /// Retransmission attempt of that phase the packet was sent in.
    attempt: u32,
    /// The packet has not yet had its fault fate rolled. Faults are
    /// decided once per packet (end-to-end), not per hop, so the loss
    /// probability seen by a round trip is independent of route length.
    fresh: bool,
    is_update: bool,
}

/// Protocol events.
#[derive(Clone, Debug)]
pub enum Ev {
    /// Deliver a control packet to the link at its `pos`.
    Deliver(Packet),
    /// A link's excess capacity changed (wireless fade, handoff,
    /// admission, departure).
    ChangeExcess {
        /// Affected link.
        link: LinkId,
        /// New excess capacity `b'_av,l`.
        excess: f64,
    },
    /// Retransmission timer for one phase attempt of a session. Armed
    /// only when a fault drops one of that attempt's ADVERTISE packets,
    /// so the event never exists in a fault-free run.
    Timeout {
        /// Session the timer guards.
        gid: u64,
        /// Phase the lost packet belonged to.
        phase: u32,
        /// Attempt the lost packet belonged to.
        attempt: u32,
    },
}

/// Seeded control-plane fault state (loss + reordering delay).
#[derive(Clone, Debug)]
struct ControlFaults {
    rng: SimRng,
    loss: f64,
    delay_prob: f64,
}

/// What fault injection decided for one delivery.
enum Fate {
    Deliver,
    Drop,
    Delay(SimDuration),
}

/// Per-link control state.
#[derive(Clone, Debug, Default)]
struct LinkCtl {
    excess: f64,
    conns: BTreeSet<ConnId>,
    /// Last fixed (UPDATEd) stamped rate per connection.
    recorded: BTreeMap<ConnId, f64>,
    /// `M(l)`: connections that consider this link their bottleneck.
    bottleneck_set: BTreeSet<ConnId>,
}

impl LinkCtl {
    /// The rate this link quotes to `subject` (treated as unrestricted).
    /// Allocation-free: the recorded rates are re-walked per fixed-point
    /// round instead of collected, since this runs per packet.
    fn mu_for(&self, subject: ConnId) -> f64 {
        let n_others = self.conns.len() - usize::from(self.conns.contains(&subject));
        advertised_rate_for_iter(self.excess, n_others, || {
            self.conns
                .iter()
                .filter(move |c| **c != subject)
                .map(|c| self.recorded.get(c).copied().unwrap_or(0.0))
        })
    }
}

/// One four-round-trip adaptation process.
#[derive(Clone, Debug)]
struct Session {
    origin: LinkId,
    conn: ConnId,
    phase: u32,
    /// Retransmission attempt of the current phase (0 = original send).
    attempt: u32,
    up_returned: Option<f64>,
    down_returned: Option<f64>,
    gid: u64,
}

/// Per-connection control state.
#[derive(Clone, Debug)]
struct ConnCtl {
    links: Vec<LinkId>,
    demand: f64,
}

/// Counters for the flooding-vs-refined overhead comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// ADVERTISE packet hop deliveries.
    pub advertise_hops: u64,
    /// UPDATE packet hop deliveries.
    pub update_hops: u64,
    /// Adaptation processes run.
    pub sessions: u64,
    /// Control packets killed by fault injection.
    pub packets_lost: u64,
    /// Control packets given a fault-injected extra delay.
    pub packets_delayed: u64,
    /// Phase retransmissions after a loss-recovery timeout.
    pub retransmits: u64,
}

/// The protocol state machine; drive it with [`arm_sim::Engine`].
#[derive(Clone, Debug)]
pub struct DistributedMaxmin {
    variant: Variant,
    hop_latency: SimDuration,
    links: BTreeMap<LinkId, LinkCtl>,
    conns: BTreeMap<ConnId, ConnCtl>,
    /// The one process whose packets are in flight.
    active: Option<Session>,
    /// FIFO of processes waiting their turn (deduplicated).
    pending: VecDeque<(LinkId, ConnId)>,
    pending_set: BTreeSet<(LinkId, ConnId)>,
    /// A wake-up arrived for the active session; rerun it on completion.
    active_restart: bool,
    /// Source-visible converged excess rate per connection.
    rates: BTreeMap<ConnId, f64>,
    next_gid: u64,
    stats: ProtocolStats,
    /// Fault injection; `None` (the default) leaves every code path and
    /// event sequence bit-identical to the pristine protocol.
    faults: Option<ControlFaults>,
    /// Passive observer; `None` (the default) costs one branch per
    /// packet and never perturbs the protocol.
    obs: Option<SharedObs>,
}

impl DistributedMaxmin {
    /// A protocol instance with the given variant and per-hop control
    /// latency.
    pub fn new(variant: Variant, hop_latency: SimDuration) -> Self {
        DistributedMaxmin {
            variant,
            hop_latency,
            links: BTreeMap::new(),
            conns: BTreeMap::new(),
            active: None,
            pending: VecDeque::new(),
            pending_set: BTreeSet::new(),
            active_restart: false,
            rates: BTreeMap::new(),
            next_gid: 0,
            stats: ProtocolStats::default(),
            faults: None,
            obs: None,
        }
    }

    /// Attach a shared observer; ADVERTISE sends and UPDATE receives
    /// are emitted as typed events from then on.
    pub fn attach_obs(&mut self, obs: SharedObs) {
        self.obs = Some(obs);
    }

    /// Install (or retune) seeded control-plane fault injection: each
    /// control packet is independently dropped end-to-end with
    /// probability `loss` and, surviving that, delayed — reordering it
    /// against its peers — with probability `delay_prob`. Lost
    /// ADVERTISE packets are recovered by per-phase retransmission with
    /// capped exponential backoff, so the protocol still converges
    /// under any `loss < 1`. Retuning keeps the existing fault rng
    /// stream so a scenario stays deterministic across windows.
    pub fn set_control_faults(&mut self, seed: u64, loss: f64, delay_prob: f64) {
        let loss = loss.clamp(0.0, 0.999);
        let delay_prob = delay_prob.clamp(0.0, 0.999);
        match &mut self.faults {
            Some(f) => {
                f.loss = loss;
                f.delay_prob = delay_prob;
            }
            None => {
                self.faults = Some(ControlFaults {
                    rng: SimRng::new(seed).split("ctrl-faults"),
                    loss,
                    delay_prob,
                });
            }
        }
    }

    /// Remove fault injection; packets already in flight (including any
    /// armed recovery timers) drain normally.
    pub fn clear_control_faults(&mut self) {
        self.faults = None;
    }

    /// Decide a packet's fate under the installed faults. Rolled only
    /// at its first delivery (`fresh`), once per packet.
    fn roll_fault(&mut self, pkt: &Packet) -> Fate {
        let Some(f) = &mut self.faults else {
            return Fate::Deliver;
        };
        if !pkt.fresh {
            return Fate::Deliver;
        }
        if f.loss > 0.0 && f.rng.chance(f.loss) {
            return Fate::Drop;
        }
        if f.delay_prob > 0.0 && f.rng.chance(f.delay_prob) {
            let extra_hops = 1 + f.rng.int_range(0, 3);
            return Fate::Delay(self.hop_latency * extra_hops);
        }
        Fate::Deliver
    }

    /// A fault killed `pkt`. If it was an ADVERTISE of the active
    /// session, arm the recovery timer that will retransmit the phase;
    /// stale packets and UPDATEs (whose recorded rates were already
    /// fixed synchronously) need no recovery.
    fn arm_recovery(&mut self, pkt: &Packet, ctx: &mut Ctx<'_, Ev>) {
        if pkt.is_update {
            return;
        }
        let live = self
            .active
            .as_ref()
            .is_some_and(|s| s.gid == pkt.gid && s.phase == pkt.phase);
        if live {
            ctx.schedule_after(
                self.retransmit_backoff(pkt.conn, pkt.attempt),
                Ev::Timeout {
                    gid: pkt.gid,
                    phase: pkt.phase,
                    attempt: pkt.attempt,
                },
            );
        }
    }

    /// Capped exponential backoff before retransmitting a phase: a
    /// generous round-trip estimate, doubled per attempt up to 2⁵×.
    fn retransmit_backoff(&self, conn: ConnId, attempt: u32) -> SimDuration {
        let hops = self.conns.get(&conn).map_or(1, |c| c.links.len()) as u64;
        let base = self.hop_latency * (2 * hops + 4);
        base.saturating_mul(1u64 << attempt.min(5))
    }

    /// Declare a link and its initial excess capacity.
    pub fn add_link(&mut self, link: LinkId, excess: f64) {
        self.links.entry(link).or_default().excess = excess.max(0.0);
    }

    /// Register a connection with its route (link sequence) and excess
    /// demand `b_max − b_min`. Its initial recorded rate is 0 everywhere.
    pub fn add_conn(&mut self, conn: ConnId, links: Vec<LinkId>, demand: f64) {
        for l in &links {
            let ctl = self.links.entry(*l).or_default();
            ctl.conns.insert(conn);
            ctl.recorded.insert(conn, 0.0);
        }
        self.conns.insert(
            conn,
            ConnCtl {
                links,
                demand: demand.max(0.0),
            },
        );
        self.rates.insert(conn, 0.0);
    }

    /// Remove a connection (termination or handoff away).
    pub fn remove_conn(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.remove(&conn) {
            for l in &c.links {
                if let Some(ctl) = self.links.get_mut(l) {
                    ctl.conns.remove(&conn);
                    ctl.recorded.remove(&conn);
                    ctl.bottleneck_set.remove(&conn);
                }
            }
        }
        self.rates.remove(&conn);
        self.pending.retain(|(_, c)| *c != conn);
        self.pending_set.retain(|(_, c)| *c != conn);
        // An active session for the connection drains harmlessly: its
        // packets find the session gone and are dropped; the next event
        // (or an explicit ChangeExcess from the caller) resumes the queue.
        if self.active.as_ref().map(|s| s.conn) == Some(conn) {
            self.active = None;
            self.active_restart = false;
        }
    }

    /// Converged excess rates (meaningful once the event queue drains).
    pub fn rates(&self) -> &BTreeMap<ConnId, f64> {
        &self.rates
    }

    /// Message/session counters.
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    /// The rate `link` currently quotes to `conn`.
    pub fn link_mu_for(&self, link: LinkId, conn: ConnId) -> f64 {
        self.links.get(&link).map_or(0.0, |l| l.mu_for(conn))
    }

    /// Current `M(l)` of a link.
    pub fn bottleneck_set(&self, link: LinkId) -> Vec<ConnId> {
        self.links
            .get(&link)
            .map(|l| l.bottleneck_set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Is the protocol quiescent (no process active or queued)?
    pub fn is_quiescent(&self) -> bool {
        self.active.is_none() && self.pending.is_empty()
    }

    // ------------------------------------------------------------------
    // Process scheduling
    // ------------------------------------------------------------------

    /// Request an adaptation process for `conn` initiated at `origin`.
    fn request_session(&mut self, origin: LinkId, conn: ConnId, ctx: &mut Ctx<'_, Ev>) {
        let key = (origin, conn);
        if let Some(active) = &self.active {
            if (active.origin, active.conn) == key {
                // Don't disturb the in-flight process; rerun afterwards.
                self.active_restart = true;
                return;
            }
        }
        if self.pending_set.insert(key) {
            self.pending.push_back(key);
        }
        self.maybe_activate(ctx);
    }

    /// Start the next queued process if none is active.
    fn maybe_activate(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.active.is_some() {
            return;
        }
        while let Some((origin, conn)) = self.pending.pop_front() {
            self.pending_set.remove(&(origin, conn));
            // Skip stale requests for gone connections or detached pairs.
            let valid = self
                .conns
                .get(&conn)
                .is_some_and(|c| c.links.contains(&origin));
            if !valid {
                continue;
            }
            let gid = self.next_gid;
            self.next_gid += 1;
            self.stats.sessions += 1;
            self.active = Some(Session {
                origin,
                conn,
                phase: 1,
                attempt: 0,
                up_returned: None,
                down_returned: None,
                gid,
            });
            self.active_restart = false;
            self.launch_phase(ctx);
            return;
        }
    }

    /// Send the two ADVERTISE packets of the active session's phase.
    fn launch_phase(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let (origin, conn, gid, phase, attempt) = {
            let s = self
                .active
                .as_ref()
                .expect("invariant: launch with active session");
            (s.origin, s.conn, s.gid, s.phase, s.attempt)
        };
        let cctl = self
            .conns
            .get(&conn)
            .expect("invariant: validated at activation");
        let pos = cctl
            .links
            .iter()
            .position(|l| *l == origin)
            .expect("invariant: validated at activation");
        let n = cctl.links.len();
        // The initiator stamps its own quote for the connection, capped
        // by the connection's residual demand (the paper's artificial
        // `b_max` entry link).
        let stamped = self.links[&origin].mu_for(conn).min(cctl.demand);
        let up = Packet {
            conn,
            stamped,
            pos,
            dir: Dir::Up,
            leg: if pos == 0 { Leg::Back } else { Leg::Out },
            origin,
            gid,
            phase,
            attempt,
            fresh: true,
            is_update: false,
        };
        let down = Packet {
            conn,
            stamped,
            pos,
            dir: Dir::Down,
            leg: if pos + 1 == n { Leg::Back } else { Leg::Out },
            origin,
            gid,
            phase,
            attempt,
            fresh: true,
            is_update: false,
        };
        ctx.schedule_after(self.hop_latency, Ev::Deliver(up));
        ctx.schedule_after(self.hop_latency, Ev::Deliver(down));
        if let Some(o) = &self.obs {
            let t = ctx.now();
            let mut o = o.borrow_mut();
            // One event per ADVERTISE packet sent (upstream + downstream).
            for _ in 0..2 {
                o.emit_with(|| ObsEvent::AdvertiseSent {
                    t,
                    conn,
                    link: origin,
                    rate_kbps: stamped,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    fn process_advertise(&mut self, mut pkt: Packet, ctx: &mut Ctx<'_, Ev>) {
        self.stats.advertise_hops += 1;
        // Stale packets of finished/cancelled processes are dropped.
        let live = self.active.as_ref().is_some_and(|s| s.gid == pkt.gid);
        if !live {
            self.maybe_activate(ctx);
            return;
        }
        // Borrow only the scalars the hop needs — no per-packet clone of
        // the connection control block.
        let (lid, n, origin_pos) = match self.conns.get(&pkt.conn) {
            Some(c) => (
                c.links[pkt.pos],
                c.links.len(),
                c.links.iter().position(|l| *l == pkt.origin).unwrap_or(0),
            ),
            None => {
                self.maybe_activate(ctx);
                return;
            }
        };
        {
            let ctl = self
                .links
                .get_mut(&lid)
                .expect("invariant: link registered");
            let mu = ctl.mu_for(pkt.conn);
            // `M(l)` maintenance: add j if μ_l ≤ b_stamp (this link binds
            // the connection), remove j if μ_l > b_stamp (it is clamped
            // harder elsewhere).
            if mu <= pkt.stamped + TOL {
                ctl.bottleneck_set.insert(pkt.conn);
            } else {
                ctl.bottleneck_set.remove(&pkt.conn);
            }
            // Clamp the stamped rate down to the advertised rate.
            if pkt.stamped >= mu {
                pkt.stamped = mu;
            }
        }
        self.forward(pkt, n, origin_pos, ctx);
    }

    fn forward(&mut self, mut pkt: Packet, n: usize, origin_pos: usize, ctx: &mut Ctx<'_, Ev>) {
        match (pkt.leg, pkt.dir) {
            (Leg::Out, Dir::Up) => {
                if pkt.pos == 0 {
                    // Bounced at the source; head back to the initiator.
                    pkt.leg = Leg::Back;
                    if pkt.pos == origin_pos {
                        self.arrive_back(pkt, ctx);
                    } else {
                        pkt.pos += 1;
                        ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                    }
                } else {
                    pkt.pos -= 1;
                    ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                }
            }
            (Leg::Out, Dir::Down) => {
                if pkt.pos + 1 == n {
                    pkt.leg = Leg::Back;
                    if pkt.pos == origin_pos {
                        self.arrive_back(pkt, ctx);
                    } else {
                        pkt.pos -= 1;
                        ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                    }
                } else {
                    pkt.pos += 1;
                    ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                }
            }
            (Leg::Back, Dir::Up) => {
                if pkt.pos >= origin_pos {
                    self.arrive_back(pkt, ctx);
                } else {
                    pkt.pos += 1;
                    ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                }
            }
            (Leg::Back, Dir::Down) => {
                if pkt.pos <= origin_pos {
                    self.arrive_back(pkt, ctx);
                } else {
                    pkt.pos -= 1;
                    ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
                }
            }
        }
    }

    /// A returned ADVERTISE reaches its initiator.
    fn arrive_back(&mut self, pkt: Packet, ctx: &mut Ctx<'_, Ev>) {
        let session = match &mut self.active {
            // Stragglers from an earlier phase or an aborted attempt
            // (possible only under fault injection) are ignored; the
            // retransmitted round supersedes them.
            Some(s) if s.gid == pkt.gid && s.phase == pkt.phase && s.attempt == pkt.attempt => s,
            _ => return,
        };
        match pkt.dir {
            Dir::Up => session.up_returned = Some(pkt.stamped),
            Dir::Down => session.down_returned = Some(pkt.stamped),
        }
        if let (Some(u), Some(d)) = (session.up_returned, session.down_returned) {
            if session.phase < 4 {
                session.phase += 1;
                session.attempt = 0;
                session.up_returned = None;
                session.down_returned = None;
                self.launch_phase(ctx);
            } else {
                let (origin, conn) = (session.origin, session.conn);
                let rate = u.min(d);
                self.active = None;
                self.complete_session(origin, conn, rate, ctx);
            }
        }
    }

    /// Fix the converged rate: update every link's recorded rate, emit
    /// UPDATE packets, wake affected connections, start the next process.
    fn complete_session(&mut self, origin: LinkId, conn: ConnId, rate: f64, ctx: &mut Ctx<'_, Ev>) {
        // Take the route out of the control block for the duration (and
        // restore it below) instead of cloning it. The loops in between
        // touch other connections' blocks only: `wake_inconsistent`
        // excludes `conn` itself from re-requests.
        let links = match self.conns.get_mut(&conn) {
            Some(c) => std::mem::take(&mut c.links),
            None => {
                self.maybe_activate(ctx);
                return;
            }
        };
        let old_rate = self.rates.insert(conn, rate).unwrap_or(0.0);
        // Synchronously fix the recorded rates (the UPDATE packets below
        // carry the same value; any switch receiving UPDATE and ADVERTISE
        // simultaneously acts on the UPDATE first — trivially satisfied).
        let changed = (rate - old_rate).abs() > TOL;
        for l in &links {
            let ctl = self.links.get_mut(l).expect("invariant: link registered");
            ctl.recorded.insert(conn, rate);
        }
        if changed {
            // UPDATE packets for accounting and latency realism.
            self.send_updates(origin, conn, rate, &links, ctx);
            // Wake-ups per the variant's policy on every link the rate
            // change touched.
            for l in &links {
                self.wake_inconsistent(*l, Some(conn), ctx);
            }
        }
        // Restore the route before anything re-inspects this connection.
        let demand = {
            let c = self
                .conns
                .get_mut(&conn)
                .expect("invariant: not removed above");
            c.links = links;
            c.demand
        };
        // Honour wake-ups that arrived while this process was in flight.
        if self.active_restart {
            self.active_restart = false;
            let want = self.links[&origin].mu_for(conn).min(demand);
            if (rate - want).abs() > TOL {
                self.request_session(origin, conn, ctx);
            }
        }
        self.maybe_activate(ctx);
    }

    /// Initiate processes toward the connections at `lid` the variant's
    /// policy selects after a state change there: all of them under
    /// flooding; under the refinement only those whose rate can actually
    /// change — the bottlenecked set that could take more (the paper's
    /// `M(l)` upgrade targets) and the over-consumers that must shrink.
    fn wake_inconsistent(&mut self, lid: LinkId, exclude: Option<ConnId>, ctx: &mut Ctx<'_, Ev>) {
        let Some(ctl) = self.links.get(&lid) else {
            return;
        };
        let candidates: Vec<ConnId> = match self.variant {
            Variant::Flooding => ctl.conns.iter().copied().collect(),
            Variant::Refined => ctl
                .conns
                .iter()
                .filter(|c| {
                    let r = ctl.recorded.get(c).copied().unwrap_or(0.0);
                    let demand = self.conns.get(c).map_or(0.0, |cc| cc.demand);
                    let mu = ctl.mu_for(**c);
                    (r < mu - TOL && r < demand - TOL) || r > mu + TOL
                })
                .copied()
                .collect(),
        };
        for t in candidates {
            if Some(t) != exclude {
                self.request_session(lid, t, ctx);
            }
        }
    }

    /// Emit UPDATE packets fixing `conn`'s rate along its whole route
    /// (`links`, passed by the caller who already holds it).
    fn send_updates(
        &mut self,
        origin: LinkId,
        conn: ConnId,
        rate: f64,
        links: &[LinkId],
        ctx: &mut Ctx<'_, Ev>,
    ) {
        let Some(pos) = links.iter().position(|l| *l == origin) else {
            return;
        };
        let gid = self.next_gid;
        self.next_gid += 1;
        let n = links.len();
        if pos > 0 {
            ctx.schedule_after(
                self.hop_latency,
                Ev::Deliver(Packet {
                    conn,
                    stamped: rate,
                    pos: pos - 1,
                    dir: Dir::Up,
                    leg: Leg::Out,
                    origin,
                    gid,
                    phase: 0,
                    attempt: 0,
                    fresh: true,
                    is_update: true,
                }),
            );
        }
        if pos + 1 < n {
            ctx.schedule_after(
                self.hop_latency,
                Ev::Deliver(Packet {
                    conn,
                    stamped: rate,
                    pos: pos + 1,
                    dir: Dir::Down,
                    leg: Leg::Out,
                    origin,
                    gid,
                    phase: 0,
                    attempt: 0,
                    fresh: true,
                    is_update: true,
                }),
            );
        }
    }

    fn process_update(&mut self, mut pkt: Packet, ctx: &mut Ctx<'_, Ev>) {
        self.stats.update_hops += 1;
        // Only the link at the packet's position and the route length are
        // needed — borrow, don't clone.
        let (lid, n) = match self.conns.get(&pkt.conn) {
            Some(c) => (c.links[pkt.pos], c.links.len()),
            None => return,
        };
        if let Some(o) = &self.obs {
            let t = ctx.now();
            o.borrow_mut().emit_with(|| ObsEvent::UpdateRecv {
                t,
                conn: pkt.conn,
                link: lid,
                rate_kbps: pkt.stamped,
            });
        }
        // Recording is idempotent (complete_session already fixed it);
        // the packet exists for overhead accounting and latency realism.
        if let Some(ctl) = self.links.get_mut(&lid) {
            ctl.recorded.insert(pkt.conn, pkt.stamped);
        }
        match pkt.dir {
            Dir::Up if pkt.pos > 0 => {
                pkt.pos -= 1;
                ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
            }
            Dir::Down if pkt.pos + 1 < n => {
                pkt.pos += 1;
                ctx.schedule_after(self.hop_latency, Ev::Deliver(pkt));
            }
            _ => {}
        }
    }
}

impl Model for DistributedMaxmin {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Deliver(mut pkt) => {
                match self.roll_fault(&pkt) {
                    Fate::Drop => {
                        self.stats.packets_lost += 1;
                        if let Some(o) = &self.obs {
                            let t = ctx.now();
                            o.borrow_mut().emit_with(|| ObsEvent::FaultInjected {
                                t,
                                fault: "control-packet-lost".to_string(),
                            });
                        }
                        self.arm_recovery(&pkt, ctx);
                        return;
                    }
                    Fate::Delay(extra) => {
                        self.stats.packets_delayed += 1;
                        pkt.fresh = false;
                        ctx.schedule_after(extra, Ev::Deliver(pkt));
                        return;
                    }
                    Fate::Deliver => {}
                }
                pkt.fresh = false;
                if pkt.is_update {
                    self.process_update(pkt, ctx);
                } else {
                    self.process_advertise(pkt, ctx);
                }
            }
            Ev::Timeout {
                gid,
                phase,
                attempt,
            } => {
                let stalled = self
                    .active
                    .as_ref()
                    .is_some_and(|s| s.gid == gid && s.phase == phase && s.attempt == attempt);
                if stalled {
                    let s = self.active.as_mut().expect("invariant: checked above");
                    s.attempt += 1;
                    s.up_returned = None;
                    s.down_returned = None;
                    self.stats.retransmits += 1;
                    self.launch_phase(ctx);
                }
            }
            Ev::ChangeExcess { link, excess } => {
                let increase = {
                    let ctl = self.links.entry(link).or_default();
                    let inc = excess > ctl.excess;
                    ctl.excess = excess.max(0.0);
                    inc
                };
                let _ = increase;
                self.wake_inconsistent(link, None, ctx);
                self.maybe_activate(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmin::centralized::{ConnDemand, MaxminProblem};
    use arm_sim::{Engine, SimTime};

    fn lid(i: u32) -> LinkId {
        LinkId(i)
    }
    fn cid(i: u32) -> ConnId {
        ConnId(i)
    }

    /// Build protocol + reference problem from the same description, fire
    /// ChangeExcess on every link at t=0, run to quiescence, and compare.
    fn run_and_compare(
        variant: Variant,
        links: &[(u32, f64)],
        conns: &[(u32, f64, &[u32])],
    ) -> (BTreeMap<ConnId, f64>, ProtocolStats) {
        let mut proto = DistributedMaxmin::new(variant, SimDuration::from_millis(1));
        let mut problem = MaxminProblem::default();
        for (l, cap) in links {
            proto.add_link(lid(*l), *cap);
            problem.link_excess.insert(lid(*l), *cap);
        }
        for (c, demand, ls) in conns {
            let route: Vec<LinkId> = ls.iter().map(|l| lid(*l)).collect();
            proto.add_conn(cid(*c), route.clone(), *demand);
            problem.conns.insert(
                cid(*c),
                ConnDemand {
                    demand: *demand,
                    links: route,
                },
            );
        }
        let mut engine = Engine::new(proto).with_event_budget(2_000_000);
        for (l, cap) in links {
            engine.schedule_at(
                SimTime::ZERO,
                Ev::ChangeExcess {
                    link: lid(*l),
                    excess: *cap,
                },
            );
        }
        let stop = engine.run();
        assert_eq!(
            stop,
            arm_sim::StopCondition::QueueEmpty,
            "protocol quiesces"
        );
        assert!(engine.model().is_quiescent());
        let expect = problem.solve();
        let got = engine.model().rates().clone();
        for (c, x) in &expect {
            let g = got.get(c).copied().unwrap_or(0.0);
            assert!(
                (g - x).abs() < 1e-6,
                "{variant:?}: {c:?} got {g}, want {x}\nall: {got:?}\nexpect: {expect:?}"
            );
        }
        (got, engine.model().stats())
    }

    #[test]
    fn single_link_even_split_converges() {
        for v in [Variant::Flooding, Variant::Refined] {
            run_and_compare(
                v,
                &[(0, 30.0)],
                &[(0, 100.0, &[0]), (1, 100.0, &[0]), (2, 100.0, &[0])],
            );
        }
    }

    #[test]
    fn finite_demands_respected() {
        for v in [Variant::Flooding, Variant::Refined] {
            run_and_compare(
                v,
                &[(0, 30.0)],
                &[(0, 4.0, &[0]), (1, 100.0, &[0]), (2, 100.0, &[0])],
            );
        }
    }

    #[test]
    fn classic_two_link_chain_converges() {
        for v in [Variant::Flooding, Variant::Refined] {
            run_and_compare(
                v,
                &[(0, 10.0), (1, 4.0)],
                &[(0, 100.0, &[0, 1]), (1, 100.0, &[0]), (2, 100.0, &[1])],
            );
        }
    }

    #[test]
    fn three_link_mesh_converges() {
        for v in [Variant::Flooding, Variant::Refined] {
            run_and_compare(
                v,
                &[(0, 12.0), (1, 6.0), (2, 9.0)],
                &[
                    (0, 100.0, &[0, 1, 2]),
                    (1, 100.0, &[0]),
                    (2, 100.0, &[1]),
                    (3, 100.0, &[2]),
                ],
            );
        }
    }

    #[test]
    fn five_link_parking_lot_converges() {
        // The classic parking-lot topology that exercises bottleneck
        // hierarchies: one long flow over all links plus one cross flow
        // per link, with mixed capacities and finite demands.
        for v in [Variant::Flooding, Variant::Refined] {
            run_and_compare(
                v,
                &[(0, 20.0), (1, 7.0), (2, 15.0), (3, 9.0), (4, 30.0)],
                &[
                    (0, 100.0, &[0, 1, 2, 3, 4]),
                    (1, 100.0, &[0]),
                    (2, 2.0, &[1]),
                    (3, 100.0, &[2]),
                    (4, 100.0, &[3]),
                    (5, 6.0, &[4]),
                ],
            );
        }
    }

    #[test]
    fn refined_variant_uses_fewer_messages() {
        let mesh_links: &[(u32, f64)] = &[(0, 12.0), (1, 6.0), (2, 9.0), (3, 20.0)];
        let mesh_conns: &[(u32, f64, &[u32])] = &[
            (0, 100.0, &[0, 1, 2, 3]),
            (1, 100.0, &[0, 1]),
            (2, 100.0, &[1, 2]),
            (3, 100.0, &[2, 3]),
            (4, 100.0, &[0]),
            (5, 100.0, &[3]),
        ];
        let (_, flood) = run_and_compare(Variant::Flooding, mesh_links, mesh_conns);
        let (_, refined) = run_and_compare(Variant::Refined, mesh_links, mesh_conns);
        assert!(
            refined.advertise_hops <= flood.advertise_hops,
            "refined {refined:?} should not exceed flooding {flood:?}"
        );
        assert!(refined.sessions <= flood.sessions);
    }

    #[test]
    fn capacity_increase_after_steady_state_upgrades() {
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 10.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        proto.add_conn(cid(1), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(1_000_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 10.0,
            },
        );
        engine.run();
        assert!((engine.model().rates()[&cid(0)] - 5.0).abs() < 1e-6);
        engine.schedule_at(
            engine.now(),
            Ev::ChangeExcess {
                link: lid(0),
                excess: 30.0,
            },
        );
        engine.run();
        assert!(
            (engine.model().rates()[&cid(0)] - 15.0).abs() < 1e-6,
            "rates: {:?}",
            engine.model().rates()
        );
        assert!((engine.model().rates()[&cid(1)] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_decrease_after_steady_state_downgrades() {
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 30.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        proto.add_conn(cid(1), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(1_000_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 30.0,
            },
        );
        engine.run();
        engine.schedule_at(
            engine.now(),
            Ev::ChangeExcess {
                link: lid(0),
                excess: 8.0,
            },
        );
        engine.run();
        assert!((engine.model().rates()[&cid(0)] - 4.0).abs() < 1e-6);
        assert!((engine.model().rates()[&cid(1)] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn connection_removal_releases_share() {
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 30.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        proto.add_conn(cid(1), vec![lid(0)], 100.0);
        proto.add_conn(cid(2), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(1_000_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 30.0,
            },
        );
        engine.run();
        engine.model_mut().remove_conn(cid(2));
        engine.schedule_at(
            engine.now(),
            Ev::ChangeExcess {
                link: lid(0),
                excess: 30.0,
            },
        );
        engine.run();
        let r = engine.model().rates();
        assert!((r[&cid(0)] - 15.0).abs() < 1e-6, "{r:?}");
        assert!((r[&cid(1)] - 15.0).abs() < 1e-6);
        assert!(!r.contains_key(&cid(2)));
    }

    #[test]
    fn bottleneck_sets_identify_the_binding_link() {
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 12.0);
        proto.add_link(lid(1), 4.0);
        proto.add_conn(cid(0), vec![lid(0), lid(1)], 100.0);
        proto.add_conn(cid(1), vec![lid(0)], 5.0);
        proto.add_conn(cid(2), vec![lid(1)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(1_000_000);
        for (l, e) in [(0, 12.0), (1, 4.0)] {
            engine.schedule_at(
                SimTime::ZERO,
                Ev::ChangeExcess {
                    link: lid(l),
                    excess: e,
                },
            );
        }
        engine.run();
        // Conn 0's bottleneck is link 1 (it gets 2 there; link 0 would
        // quote it 7).
        assert!(engine.model().bottleneck_set(lid(1)).contains(&cid(0)));
        assert!(!engine.model().bottleneck_set(lid(0)).contains(&cid(0)));
    }

    #[test]
    fn four_round_trips_per_session() {
        // One conn, one link: a session is 4 phases × 2 packets × 1 hop.
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 10.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(10_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 10.0,
            },
        );
        engine.run();
        let stats = engine.model().stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.advertise_hops, 8);
        assert!((engine.model().rates()[&cid(0)] - 10.0).abs() < 1e-9);
    }

    /// Like [`run_and_compare`] but with control-plane faults installed,
    /// verifying Theorem 1 survives loss and reordering.
    fn run_lossy_and_compare(
        variant: Variant,
        seed: u64,
        loss: f64,
        delay_prob: f64,
        links: &[(u32, f64)],
        conns: &[(u32, f64, &[u32])],
    ) -> ProtocolStats {
        let mut proto = DistributedMaxmin::new(variant, SimDuration::from_millis(1));
        proto.set_control_faults(seed, loss, delay_prob);
        let mut problem = MaxminProblem::default();
        for (l, cap) in links {
            proto.add_link(lid(*l), *cap);
            problem.link_excess.insert(lid(*l), *cap);
        }
        for (c, demand, ls) in conns {
            let route: Vec<LinkId> = ls.iter().map(|l| lid(*l)).collect();
            proto.add_conn(cid(*c), route.clone(), *demand);
            problem.conns.insert(
                cid(*c),
                ConnDemand {
                    demand: *demand,
                    links: route,
                },
            );
        }
        let mut engine = Engine::new(proto).with_event_budget(5_000_000);
        for (l, cap) in links {
            engine.schedule_at(
                SimTime::ZERO,
                Ev::ChangeExcess {
                    link: lid(*l),
                    excess: *cap,
                },
            );
        }
        let stop = engine.run();
        assert_eq!(
            stop,
            arm_sim::StopCondition::QueueEmpty,
            "lossy protocol quiesces (seed {seed}, loss {loss})"
        );
        assert!(engine.model().is_quiescent());
        let expect = problem.solve();
        let got = engine.model().rates().clone();
        for (c, x) in &expect {
            let g = got.get(c).copied().unwrap_or(0.0);
            assert!(
                (g - x).abs() < 1e-6,
                "seed {seed} loss {loss}: {c:?} got {g}, want {x}\nall: {got:?}"
            );
        }
        engine.model().stats()
    }

    #[test]
    fn lossy_parking_lot_converges_to_oracle() {
        let links: &[(u32, f64)] = &[(0, 20.0), (1, 7.0), (2, 15.0), (3, 9.0), (4, 30.0)];
        let conns: &[(u32, f64, &[u32])] = &[
            (0, 100.0, &[0, 1, 2, 3, 4]),
            (1, 100.0, &[0]),
            (2, 2.0, &[1]),
            (3, 100.0, &[2]),
            (4, 100.0, &[3]),
            (5, 6.0, &[4]),
        ];
        for seed in 0..8 {
            for v in [Variant::Flooding, Variant::Refined] {
                run_lossy_and_compare(v, seed, 0.3, 0.3, links, conns);
            }
        }
    }

    #[test]
    fn heavy_loss_still_converges() {
        let links: &[(u32, f64)] = &[(0, 10.0), (1, 4.0)];
        let conns: &[(u32, f64, &[u32])] =
            &[(0, 100.0, &[0, 1]), (1, 100.0, &[0]), (2, 100.0, &[1])];
        for seed in 0..4 {
            let stats = run_lossy_and_compare(Variant::Refined, seed, 0.7, 0.5, links, conns);
            assert!(
                stats.packets_lost > 0,
                "70% loss must actually drop packets"
            );
            assert!(stats.retransmits > 0, "drops must force retransmissions");
        }
    }

    #[test]
    fn zero_probability_faults_change_nothing() {
        // Installing the hook with p=0 must not perturb the event
        // sequence: the rng is only consulted for non-zero probabilities.
        let links: &[(u32, f64)] = &[(0, 12.0), (1, 6.0), (2, 9.0)];
        let conns: &[(u32, f64, &[u32])] = &[
            (0, 100.0, &[0, 1, 2]),
            (1, 100.0, &[0]),
            (2, 100.0, &[1]),
            (3, 100.0, &[2]),
        ];
        let (rates, stats) = run_and_compare(Variant::Refined, links, conns);
        let lossless = run_lossy_and_compare(Variant::Refined, 99, 0.0, 0.0, links, conns);
        assert_eq!(lossless.advertise_hops, stats.advertise_hops);
        assert_eq!(lossless.sessions, stats.sessions);
        assert_eq!(lossless.packets_lost, 0);
        assert_eq!(lossless.retransmits, 0);
        let _ = rates;
    }

    #[test]
    fn clearing_faults_mid_run_drains_cleanly() {
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.set_control_faults(5, 0.5, 0.5);
        proto.add_link(lid(0), 10.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        proto.add_conn(cid(1), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(1_000_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 10.0,
            },
        );
        engine.run();
        engine.model_mut().clear_control_faults();
        engine.schedule_at(
            engine.now(),
            Ev::ChangeExcess {
                link: lid(0),
                excess: 24.0,
            },
        );
        let stop = engine.run();
        assert_eq!(stop, arm_sim::StopCondition::QueueEmpty);
        assert!((engine.model().rates()[&cid(0)] - 12.0).abs() < 1e-6);
        assert!((engine.model().rates()[&cid(1)] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn quiescent_protocol_stays_quiescent() {
        // Re-firing an unchanged excess produces no further sessions in
        // the refined variant (nothing can change).
        let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
        proto.add_link(lid(0), 10.0);
        proto.add_conn(cid(0), vec![lid(0)], 100.0);
        let mut engine = Engine::new(proto).with_event_budget(10_000);
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: lid(0),
                excess: 10.0,
            },
        );
        engine.run();
        let sessions_before = engine.model().stats().sessions;
        engine.schedule_at(
            engine.now(),
            Ev::ChangeExcess {
                link: lid(0),
                excess: 10.0,
            },
        );
        engine.run();
        assert_eq!(engine.model().stats().sessions, sessions_before);
    }
}
