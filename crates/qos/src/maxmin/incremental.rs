// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Incremental maxmin re-solve with churn-aware caching.
//!
//! Every admission, departure, handoff, and link event used to rebuild
//! the whole maxmin problem and re-run progressive filling over all
//! links and connections. Explicit-rate schemes (the paper's §5.3.1,
//! Charny-style allocation) avoid that by keeping per-link bottleneck
//! sets `M(l)` resident and only reworking what an event touched. This
//! module is the centralized analogue: an engine that keeps the solved
//! [`Allocation`], the reverse `LinkId → [ConnId]` index, and per-link
//! bottleneck sets resident between events, marks links *dirty* on each
//! mutation, and on [`IncrementalMaxmin::resolve`] re-runs water-filling
//! restricted to the dirty region's transitive closure — connections
//! sharing a dirty link, links those connections traverse, to a fixed
//! point — reusing frozen rates everywhere else.
//!
//! ## Why the partial re-solve is exact (and bit-identical)
//!
//! The transitive closure of a dirty link is precisely the connected
//! component of the bipartite link/connection sharing graph containing
//! it. Distinct components share no links, so one component's
//! allocations never appear in another's headroom sums: progressive
//! filling factors exactly across components. [`MaxminProblem::solve`]
//! itself is implemented as per-component runs of
//! [`solve_component`](centralized::solve_component), and the engine
//! re-runs *that same routine* on the same inputs — so after any event
//! sequence the resident allocation is byte-for-byte the allocation a
//! from-scratch solve would produce. The differential property test in
//! `crates/qos/tests/incremental_prop.rs` checks this on random event
//! sequences, and the chaos test in `crates/core/tests/chaos.rs` checks
//! it end-to-end through the resource manager under link failures.
//!
//! ## Churn-aware caching
//!
//! Mutators only mark dirty on a *genuine* change: setting a link's
//! excess to the value it already has, or re-upserting a connection with
//! identical demand bits and route, is a no-op. A resolve with an empty
//! dirty set returns the resident allocation untouched (a cache hit).

use std::collections::{BTreeMap, BTreeSet};

use arm_net::ids::{ConnId, LinkId};
use arm_net::{Connection, Network};
use serde::{Deserialize, Serialize};

use super::centralized::{self, Allocation, ConnDemand, MaxminProblem};

/// Counters describing how much work the engine has saved. Purely
/// informational; exposed for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Resolves that found a non-empty dirty set.
    pub incremental_solves: u64,
    /// Resolves that returned the resident allocation untouched.
    pub cache_hits: u64,
    /// Connections re-filled across all incremental solves.
    pub conns_resolved: u64,
    /// Connections whose frozen rate was reused (registered minus
    /// re-filled, summed over incremental solves).
    pub conns_reused: u64,
}

/// Resident incremental maxmin solver (see module docs).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IncrementalMaxmin {
    /// Excess capacity per link, mirroring `MaxminProblem::link_excess`.
    link_excess: BTreeMap<LinkId, f64>,
    /// Demand side, mirroring `MaxminProblem::conns`.
    conns: BTreeMap<ConnId, ConnDemand>,
    /// Reverse index: connections traversing each link, ascending.
    index: BTreeMap<LinkId, Vec<ConnId>>,
    /// The resident solved allocation (valid when `dirty` is empty).
    alloc: Allocation,
    /// Per-link bottleneck sets `M(l)`: connections frozen by that
    /// link's saturation in the last solve touching it.
    bottleneck: BTreeMap<LinkId, BTreeSet<ConnId>>,
    /// Links whose region must be re-filled at the next resolve.
    dirty: BTreeSet<LinkId>,
    /// Work-saved counters.
    pub stats: EngineStats,
}

impl IncrementalMaxmin {
    /// An empty engine: no links, no connections, clean.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resident allocation. Only current when [`Self::is_dirty`] is
    /// false; call [`Self::resolve`] first otherwise.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// Connections frozen by `link`'s saturation in the last solve that
    /// touched it — the resident bottleneck set `M(l)`.
    pub fn bottleneck_set(&self, link: LinkId) -> Option<&BTreeSet<ConnId>> {
        self.bottleneck.get(&link)
    }

    /// Does the engine have pending invalidations?
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Number of registered connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Mark `link`'s region for re-fill without changing any input.
    /// Unknown links are accepted (the closure is then empty).
    pub fn touch_link(&mut self, link: LinkId) {
        self.dirty.insert(link);
    }

    /// Set a link's excess capacity, dirtying it only if the value
    /// actually changed (exact compare — churn-aware caching).
    pub fn set_link_excess(&mut self, link: LinkId, excess: f64) {
        match self.link_excess.get(&link) {
            Some(cur) if cur.to_bits() == excess.to_bits() => {}
            _ => {
                self.link_excess.insert(link, excess);
                self.dirty.insert(link);
            }
        }
    }

    /// Drop a link's capacity entry, dirtying every connection that
    /// traversed it (they become unconstrained there, as in
    /// [`MaxminProblem`] semantics for unknown links).
    pub fn remove_link(&mut self, link: LinkId) {
        if self.link_excess.remove(&link).is_some() {
            self.dirty.insert(link);
        }
        self.bottleneck.remove(&link);
    }

    /// Insert or update a connection. A re-upsert with bit-identical
    /// demand and an equal route is a no-op; otherwise the old and new
    /// routes' links are dirtied.
    pub fn upsert_conn(&mut self, id: ConnId, demand: f64, links: &[LinkId]) {
        if let Some(cur) = self.conns.get(&id) {
            if cur.demand.to_bits() == demand.to_bits() && cur.links == links {
                return;
            }
            self.detach(id);
        }
        for l in links {
            self.dirty.insert(*l);
            let members = self.index.entry(*l).or_default();
            if let Err(at) = members.binary_search(&id) {
                members.insert(at, id);
            }
        }
        self.conns.insert(
            id,
            ConnDemand {
                demand,
                links: links.to_vec(),
            },
        );
        self.alloc.insert(id, 0.0);
    }

    /// Remove a connection, dirtying its route's links.
    pub fn remove_conn(&mut self, id: ConnId) {
        if self.conns.contains_key(&id) {
            self.detach(id);
            self.conns.remove(&id);
            self.alloc.remove(&id);
        }
    }

    /// Unhook `id` from the index and bottleneck sets and dirty its
    /// links, leaving `conns`/`alloc` entries to the caller.
    fn detach(&mut self, id: ConnId) {
        let links = std::mem::take(
            &mut self
                .conns
                .get_mut(&id)
                .expect("invariant: registered conn")
                .links,
        );
        for l in &links {
            self.dirty.insert(*l);
            if let Some(members) = self.index.get_mut(l) {
                if let Ok(at) = members.binary_search(&id) {
                    members.remove(at);
                }
                if members.is_empty() {
                    self.index.remove(l);
                }
            }
            if let Some(m) = self.bottleneck.get_mut(l) {
                m.remove(&id);
            }
        }
    }

    /// Diff the engine's inputs against the network's current ledgers:
    /// link excesses from every link, demand `b_max − b_min` and route
    /// from every live connection accepted by `include`. Only genuine
    /// changes dirty anything, so calling this every epoch costs a scan
    /// but no re-solve work when nothing moved. Mirrors
    /// [`MaxminProblem::from_network`] filtered by `include`.
    pub fn sync_network(&mut self, net: &Network, include: &dyn Fn(&Connection) -> bool) {
        for (lid, link) in net.links() {
            self.set_link_excess(lid, link.excess_available().max(0.0));
        }
        let mut seen: BTreeSet<ConnId> = BTreeSet::new();
        for c in net.live_connections() {
            if c.route.links.is_empty() || !include(c) {
                continue;
            }
            seen.insert(c.id);
            self.upsert_conn(c.id, c.qos.adaptable_range(), &c.route.links);
        }
        let gone: Vec<ConnId> = self
            .conns
            .keys()
            .filter(|id| !seen.contains(id))
            .copied()
            .collect();
        for id in gone {
            self.remove_conn(id);
        }
    }

    /// Re-fill the dirty region and return the (now current) resident
    /// allocation. Each dirty link's transitive closure — one connected
    /// component of the sharing graph — is re-run through
    /// [`centralized::solve_component`]; everything else keeps its
    /// frozen rate.
    pub fn resolve(&mut self) -> &Allocation {
        if self.dirty.is_empty() {
            self.stats.cache_hits += 1;
            return &self.alloc;
        }
        let dirty = std::mem::take(&mut self.dirty);
        let mut visited: BTreeSet<LinkId> = BTreeSet::new();
        let mut resolved = 0usize;
        for seed in dirty {
            if !visited.insert(seed) {
                continue;
            }
            // Closure: conns on the seed → their links → fixed point.
            let mut comp: BTreeSet<ConnId> = BTreeSet::new();
            let mut frontier: Vec<LinkId> = vec![seed];
            while let Some(l) = frontier.pop() {
                // Stale bottleneck attributions die with the region.
                self.bottleneck.remove(&l);
                let members = self.index.get(&l).map_or(&[][..], Vec::as_slice);
                for c in members {
                    if comp.insert(*c) {
                        for l2 in &self.conns[c].links {
                            if visited.insert(*l2) {
                                frontier.push(*l2);
                            }
                        }
                    }
                }
            }
            if comp.is_empty() {
                continue;
            }
            let comp: Vec<ConnId> = comp.into_iter().collect();
            resolved += comp.len();
            centralized::solve_component(
                &self.link_excess,
                &self.conns,
                &self.index,
                &comp,
                &mut self.alloc,
                Some(&mut self.bottleneck),
            );
        }
        self.stats.incremental_solves += 1;
        self.stats.conns_resolved += resolved as u64;
        self.stats.conns_reused += (self.conns.len() - resolved) as u64;
        &self.alloc
    }

    /// A from-scratch [`MaxminProblem`] over the engine's current
    /// inputs — the differential oracle used by tests.
    pub fn as_problem(&self) -> MaxminProblem {
        MaxminProblem {
            link_excess: self.link_excess.clone(),
            conns: self.conns.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(i: u32) -> LinkId {
        LinkId(i)
    }
    fn cid(i: u32) -> ConnId {
        ConnId(i)
    }

    fn assert_matches_fresh(e: &mut IncrementalMaxmin) {
        let fresh = e.as_problem().solve();
        let inc = e.resolve().clone();
        assert_eq!(fresh.len(), inc.len(), "key sets differ");
        for (c, x) in &fresh {
            let y = inc[c];
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{c:?}: fresh {x} != incremental {y}"
            );
        }
        assert!(e.as_problem().verify_maxmin(&inc).is_ok());
    }

    #[test]
    fn single_link_churn_matches_fresh_solve() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 30.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0)]);
        e.upsert_conn(cid(1), 100.0, &[lid(0)]);
        assert_matches_fresh(&mut e);
        assert!((e.allocation()[&cid(0)] - 15.0).abs() < 1e-9);
        e.upsert_conn(cid(2), 100.0, &[lid(0)]);
        assert_matches_fresh(&mut e);
        assert!((e.allocation()[&cid(0)] - 10.0).abs() < 1e-9);
        e.remove_conn(cid(1));
        assert_matches_fresh(&mut e);
        assert!((e.allocation()[&cid(2)] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_component_is_reused_not_resolved() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.set_link_excess(lid(1), 20.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0)]);
        e.upsert_conn(cid(1), 100.0, &[lid(1)]);
        e.upsert_conn(cid(2), 100.0, &[lid(1)]);
        e.resolve();
        let stats0 = e.stats;
        // Churn only link 1's component.
        e.upsert_conn(cid(3), 100.0, &[lid(1)]);
        assert_matches_fresh(&mut e);
        let solved = e.stats.conns_resolved - stats0.conns_resolved;
        // The link-0 connection is frozen; only link-1's three re-fill.
        // (assert_matches_fresh resolves once more on a clean engine,
        // which is a cache hit and adds nothing.)
        assert_eq!(solved, 3, "stats: {:?}", e.stats);
        assert!(e.stats.conns_reused - stats0.conns_reused >= 1);
    }

    #[test]
    fn clean_resolve_is_a_cache_hit() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.upsert_conn(cid(0), 4.0, &[lid(0)]);
        e.resolve();
        let hits0 = e.stats.cache_hits;
        e.resolve();
        assert_eq!(e.stats.cache_hits, hits0 + 1);
        // Re-applying identical inputs does not dirty anything.
        e.set_link_excess(lid(0), 10.0);
        e.upsert_conn(cid(0), 4.0, &[lid(0)]);
        assert!(!e.is_dirty());
        e.resolve();
        assert_eq!(e.stats.cache_hits, hits0 + 2);
    }

    #[test]
    fn capacity_change_refills_the_region() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.set_link_excess(lid(1), 4.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0), lid(1)]);
        e.upsert_conn(cid(1), 100.0, &[lid(0)]);
        e.upsert_conn(cid(2), 100.0, &[lid(1)]);
        assert_matches_fresh(&mut e);
        assert!((e.allocation()[&cid(0)] - 2.0).abs() < 1e-9);
        e.set_link_excess(lid(1), 12.0);
        assert_matches_fresh(&mut e);
        assert!(
            (e.allocation()[&cid(0)] - 5.0).abs() < 1e-9,
            "{:?}",
            e.allocation()
        );
        e.set_link_excess(lid(1), 0.0);
        assert_matches_fresh(&mut e);
        assert_eq!(e.allocation()[&cid(0)], 0.0);
    }

    #[test]
    fn route_change_dirties_old_and_new_links() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.set_link_excess(lid(1), 6.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0)]);
        e.upsert_conn(cid(1), 100.0, &[lid(0)]);
        e.upsert_conn(cid(2), 100.0, &[lid(1)]);
        assert_matches_fresh(&mut e);
        // Handoff: conn 1 moves from link 0 to link 1.
        e.upsert_conn(cid(1), 100.0, &[lid(1)]);
        assert_matches_fresh(&mut e);
        assert!((e.allocation()[&cid(0)] - 10.0).abs() < 1e-9);
        assert!((e.allocation()[&cid(1)] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_sets_track_saturating_links() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.set_link_excess(lid(1), 4.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0), lid(1)]);
        e.upsert_conn(cid(1), 100.0, &[lid(0)]);
        e.upsert_conn(cid(2), 100.0, &[lid(1)]);
        e.resolve();
        // Link 1 (capacity 4, two conns at 2) froze conns 0 and 2.
        let m1 = e.bottleneck_set(lid(1)).expect("link 1 saturates");
        assert!(m1.contains(&cid(0)) && m1.contains(&cid(2)), "{m1:?}");
        // Conn 1 meets link 0's remaining headroom; it is frozen by
        // link 0's saturation in the final round.
        let m0 = e.bottleneck_set(lid(0)).expect("link 0 saturates");
        assert!(m0.contains(&cid(1)), "{m0:?}");
        // Departure of conn 2 rebuilds M(1) without stale members.
        e.remove_conn(cid(2));
        e.resolve();
        let m1 = e.bottleneck_set(lid(1)).expect("still saturating");
        assert!(!m1.contains(&cid(2)), "{m1:?}");
    }

    #[test]
    fn touch_link_refills_without_input_change() {
        let mut e = IncrementalMaxmin::new();
        e.set_link_excess(lid(0), 10.0);
        e.upsert_conn(cid(0), 100.0, &[lid(0)]);
        e.resolve();
        e.touch_link(lid(0));
        assert!(e.is_dirty());
        assert_matches_fresh(&mut e);
        // Touching an unknown link is harmless.
        e.touch_link(lid(99));
        assert_matches_fresh(&mut e);
    }
}
