// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Centralized water-filling reference solver.
//!
//! Computes the exact maxmin-fair allocation of excess bandwidth by
//! progressive filling: raise every active connection's excess rate
//! uniformly until a link saturates or a connection reaches its demand;
//! freeze those; repeat. This is the ground truth the distributed
//! protocol (§5.3.1, Theorem 1) must converge to, and the synchronous
//! solver used by the large-scale experiments where simulating control
//! packets per adaptation would dominate run time.

use std::collections::{BTreeMap, BTreeSet};

use arm_net::ids::{ConnId, LinkId};
use arm_net::Network;
use serde::{Deserialize, Serialize};

/// A maxmin allocation problem over excess capacities and excess demands.
///
/// ```
/// use arm_net::ids::{ConnId, LinkId};
/// use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
///
/// // The classic two-link chain: a long flow crosses both links, one
/// // cross flow per link; capacities 10 and 4.
/// let mut p = MaxminProblem::default();
/// p.link_excess.insert(LinkId(0), 10.0);
/// p.link_excess.insert(LinkId(1), 4.0);
/// p.conns.insert(ConnId(0), ConnDemand { demand: 100.0, links: vec![LinkId(0), LinkId(1)] });
/// p.conns.insert(ConnId(1), ConnDemand { demand: 100.0, links: vec![LinkId(0)] });
/// p.conns.insert(ConnId(2), ConnDemand { demand: 100.0, links: vec![LinkId(1)] });
///
/// let alloc = p.solve();
/// assert!((alloc[&ConnId(0)] - 2.0).abs() < 1e-9); // bottlenecked on link 1
/// assert!((alloc[&ConnId(1)] - 8.0).abs() < 1e-9); // takes link 0's slack
/// assert!(p.verify_maxmin(&alloc).is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct MaxminProblem {
    /// Excess capacity per link (`b'_av,l ≥ 0`).
    pub link_excess: BTreeMap<LinkId, f64>,
    /// Per connection: excess demand (`b_max − b_min`) and traversed links.
    pub conns: BTreeMap<ConnId, ConnDemand>,
}

/// One connection's demand side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConnDemand {
    /// `b_max − b_min`.
    pub demand: f64,
    /// Links the connection traverses.
    pub links: Vec<LinkId>,
}

/// The solved allocation: excess rate per connection.
pub type Allocation = BTreeMap<ConnId, f64>;

impl MaxminProblem {
    /// Extract the problem from the network's current ledgers: excess
    /// capacity from each link, demand `b_max − b_min` from each live
    /// connection.
    pub fn from_network(net: &Network) -> Self {
        let mut p = MaxminProblem::default();
        for c in net.live_connections() {
            if c.route.links.is_empty() {
                continue;
            }
            p.conns.insert(
                c.id,
                ConnDemand {
                    demand: c.qos.adaptable_range(),
                    links: c.route.links.clone(),
                },
            );
        }
        for i in 0..net.topology().link_count() {
            let lid = LinkId::from_index(i);
            p.link_excess
                .insert(lid, net.link(lid).excess_available().max(0.0));
        }
        p
    }

    /// Solve by progressive filling. Runs in O((links + conns)²) in the
    /// worst case, which is trivial at the scale of indoor environments.
    ///
    /// Internally the problem is decomposed into the connected components
    /// of the bipartite link/connection sharing graph and each component
    /// is filled independently by [`solve_component`]; the incremental
    /// engine ([`crate::maxmin::incremental`]) re-runs the *same* routine
    /// on the *same* component data, so a partial re-solve is bit-identical
    /// to a from-scratch one.
    pub fn solve(&self) -> Allocation {
        let mut alloc: Allocation = self.conns.keys().map(|c| (*c, 0.0)).collect();
        let index = link_index(&self.conns);
        for comp in components(&self.conns, &index) {
            solve_component(
                &self.link_excess,
                &self.conns,
                &index,
                &comp,
                &mut alloc,
                None,
            );
        }
        alloc
    }

    /// Is `link` a *connection bottleneck* for `conn` under `alloc`
    /// (§5.2): the link minimising the excess bandwidth available to the
    /// connection along its path, while the connection is unsatisfied?
    pub fn is_connection_bottleneck(&self, alloc: &Allocation, conn: ConnId, link: LinkId) -> bool {
        let Some(d) = self.conns.get(&conn) else {
            return false;
        };
        if !d.links.contains(&link) {
            return false;
        }
        let avail = |l: &LinkId| self.available_to(alloc, conn, *l);
        let min = d.links.iter().map(avail).fold(f64::INFINITY, f64::min);
        (avail(&link) - min).abs() < 1e-9
    }

    /// Excess bandwidth available to `conn` at `link`: the link's
    /// remaining headroom plus what the connection already holds there.
    pub fn available_to(&self, alloc: &Allocation, conn: ConnId, link: LinkId) -> f64 {
        let cap = self.link_excess.get(&link).copied().unwrap_or(0.0);
        let used: f64 = self
            .conns
            .iter()
            .filter(|(_, d)| d.links.contains(&link))
            .map(|(c, _)| alloc.get(c).copied().unwrap_or(0.0))
            .sum();
        let own = alloc.get(&conn).copied().unwrap_or(0.0);
        cap - used + own
    }

    /// Verify that `alloc` satisfies the maxmin optimality criterion:
    /// feasibility, demand caps, and the no-improvement property (any
    /// unsatisfied connection has a saturated link where every other
    /// connection holding more is itself above it). Returns a description
    /// of the first violation.
    pub fn verify_maxmin(&self, alloc: &Allocation) -> Result<(), String> {
        // Feasibility per link.
        for (lid, cap) in &self.link_excess {
            let used: f64 = self
                .conns
                .iter()
                .filter(|(_, d)| d.links.contains(lid))
                .map(|(c, _)| alloc.get(c).copied().unwrap_or(0.0))
                .sum();
            if used > cap + 1e-6 {
                return Err(format!("{lid:?} overloaded: {used} > {cap}"));
            }
        }
        // Demand caps and nonnegativity.
        for (c, d) in &self.conns {
            let x = alloc.get(c).copied().unwrap_or(0.0);
            if x < -1e-9 {
                return Err(format!("{c:?} negative rate {x}"));
            }
            if x > d.demand + 1e-6 {
                return Err(format!("{c:?} above demand: {x} > {}", d.demand));
            }
        }
        // Maxmin property: an unsatisfied connection must sit on a
        // bottleneck — a saturated link where no connection with a larger
        // allocation could yield to it.
        for (c, d) in &self.conns {
            let x = alloc.get(c).copied().unwrap_or(0.0);
            if x >= d.demand - 1e-6 {
                continue; // satisfied
            }
            let has_bottleneck = d.links.iter().any(|lid| {
                let cap = self.link_excess.get(lid).copied().unwrap_or(0.0);
                let used: f64 = self
                    .conns
                    .iter()
                    .filter(|(_, dd)| dd.links.contains(lid))
                    .map(|(cc, _)| alloc.get(cc).copied().unwrap_or(0.0))
                    .sum();
                let saturated = used >= cap - 1e-6;
                let is_max_holder = self
                    .conns
                    .iter()
                    .filter(|(_, dd)| dd.links.contains(lid))
                    .all(|(cc, _)| alloc.get(cc).copied().unwrap_or(0.0) <= x + 1e-6);
                saturated && is_max_holder
            });
            if !has_bottleneck {
                return Err(format!(
                    "{c:?} unsatisfied at {x} but has no bottleneck link"
                ));
            }
        }
        Ok(())
    }
}

/// Build the reverse `LinkId → [ConnId]` index for a set of connection
/// demands. Each connection appears at most once per link (routes are
/// simple, but duplicates are tolerated), and members are listed in
/// ascending `ConnId` order — the same order the per-round headroom sums
/// used to visit them, so float summation order is preserved.
pub fn link_index(conns: &BTreeMap<ConnId, ConnDemand>) -> BTreeMap<LinkId, Vec<ConnId>> {
    let mut idx: BTreeMap<LinkId, Vec<ConnId>> = BTreeMap::new();
    for (c, d) in conns {
        for l in &d.links {
            let members = idx.entry(*l).or_default();
            if members.last() != Some(c) {
                members.push(*c);
            }
        }
    }
    idx
}

/// Decompose the bipartite link/connection sharing graph into connected
/// components. Connections with an empty route are excluded (their
/// allocation is always 0); zero-demand connections stay in — they never
/// receive an increment but keep component membership stable under
/// demand changes. Components are returned in ascending order of their
/// smallest `ConnId`, members sorted.
pub fn components(
    conns: &BTreeMap<ConnId, ConnDemand>,
    index: &BTreeMap<LinkId, Vec<ConnId>>,
) -> Vec<Vec<ConnId>> {
    let ids: Vec<ConnId> = conns
        .iter()
        .filter(|(_, d)| !d.links.is_empty())
        .map(|(c, _)| *c)
        .collect();
    let pos: BTreeMap<ConnId, usize> = ids.iter().enumerate().map(|(i, c)| (*c, i)).collect();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for members in index.values() {
        let mut it = members.iter().filter_map(|c| pos.get(c).copied());
        if let Some(first) = it.next() {
            let root = find(&mut parent, first);
            for m in it {
                let r = find(&mut parent, m);
                parent[r] = root;
            }
        }
    }
    let mut comps: BTreeMap<usize, Vec<ConnId>> = BTreeMap::new();
    for (i, c) in ids.iter().enumerate() {
        let root = find(&mut parent, i);
        comps.entry(root).or_default().push(*c);
    }
    // BTreeMap keys are root *positions*; positions follow ConnId order,
    // so values() already comes out ordered by smallest member. Members
    // were pushed in ascending `ids` order, hence sorted.
    comps.into_values().collect()
}

/// Progressive filling restricted to one connected component: raise every
/// active member uniformly until a link saturates or a demand is met,
/// freeze, repeat. Entries of `alloc` for `comp` members are reset to 0
/// first; entries outside `comp` are never read or written (links of a
/// component are traversed only by its members, so headroom sums see
/// component allocations only).
///
/// When `bottleneck` is given, each connection frozen by link saturation
/// (rather than by meeting its demand) is recorded against the saturated
/// links that froze it — the resident per-link bottleneck sets `M(l)` of
/// §5.3.1 kept by the incremental engine.
pub fn solve_component(
    link_excess: &BTreeMap<LinkId, f64>,
    conns: &BTreeMap<ConnId, ConnDemand>,
    index: &BTreeMap<LinkId, Vec<ConnId>>,
    comp: &[ConnId],
    alloc: &mut Allocation,
    mut bottleneck: Option<&mut BTreeMap<LinkId, BTreeSet<ConnId>>>,
) {
    for c in comp {
        alloc.insert(*c, 0.0);
    }
    let mut active: Vec<ConnId> = comp
        .iter()
        .filter(|c| conns[c].demand > 0.0)
        .copied()
        .collect();
    let mut is_active: BTreeSet<ConnId> = active.iter().copied().collect();
    // The component's links, ascending, restricted to known capacities —
    // links absent from `link_excess` impose no limit, as before.
    let comp_links: Vec<LinkId> = comp
        .iter()
        .flat_map(|c| conns[c].links.iter().copied())
        .filter(|l| link_excess.contains_key(l))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut guard = comp.len() + comp_links.len() + 2;
    while !active.is_empty() && guard > 0 {
        guard -= 1;
        // Headroom and active-connection count per component link.
        let mut headroom: Vec<(LinkId, f64, usize)> = Vec::with_capacity(comp_links.len());
        for lid in &comp_links {
            let members = index.get(lid).map_or(&[][..], Vec::as_slice);
            let mut used = 0.0;
            let mut n_active = 0usize;
            for c in members {
                used += alloc[c];
                if is_active.contains(c) {
                    n_active += 1;
                }
            }
            if n_active > 0 {
                let cap = link_excess[lid];
                headroom.push((*lid, (cap - used).max(0.0), n_active));
            }
        }
        // Largest uniform raise permitted by links and demands.
        let link_limit = headroom
            .iter()
            .map(|(_, h, n)| h / *n as f64)
            .fold(f64::INFINITY, f64::min);
        let demand_limit = active
            .iter()
            .map(|c| conns[c].demand - alloc[c])
            .fold(f64::INFINITY, f64::min);
        let inc = link_limit.min(demand_limit).max(0.0);
        for c in &active {
            *alloc.get_mut(c).expect("invariant: active conn in alloc") += inc;
        }
        // Freeze: demand met, or on a saturated link.
        let saturated: Vec<LinkId> = headroom
            .iter()
            .filter(|(_, h, n)| h / *n as f64 <= inc + 1e-12)
            .map(|(l, _, _)| *l)
            .collect();
        let before = active.len();
        active.retain(|c| {
            let d = &conns[c];
            let demand_met = alloc[c] >= d.demand - 1e-12;
            let on_saturated = d.links.iter().any(|l| saturated.binary_search(l).is_ok());
            if !(demand_met || on_saturated) {
                return true;
            }
            is_active.remove(c);
            if let Some(bn) = bottleneck.as_deref_mut() {
                if !demand_met {
                    for l in &d.links {
                        if saturated.binary_search(l).is_ok() {
                            bn.entry(*l).or_default().insert(*c);
                        }
                    }
                }
            }
            false
        });
        if active.len() == before {
            // No progress is only possible when inc == 0 on links with
            // zero headroom, which the saturated rule catches; guard
            // against float pathologies anyway.
            break;
        }
    }
}

/// Apply a solved allocation to the network ledgers: every live
/// connection's rate becomes `b_min + excess`. Decreases are applied
/// first so increases always fit.
pub fn apply_allocation(net: &mut Network, alloc: &Allocation) {
    let mut changes: Vec<(ConnId, f64)> = Vec::new();
    for c in net.live_connections() {
        if let Some(x) = alloc.get(&c.id) {
            // A non-finite or negative excess never reaches the ledger:
            // clamp to zero so a malformed allocation degrades to "hold
            // the floor" instead of panicking inside `f64::clamp`.
            let x = if x.is_finite() { x.max(0.0) } else { 0.0 };
            let target = (c.qos.b_min + x).clamp(c.qos.b_min, c.qos.b_max);
            if (target - c.b_current).abs() > 1e-9 {
                changes.push((c.id, target));
            }
        }
    }
    // Decreases first. `total_cmp` keeps the sort well-defined even if a
    // ledger rate were ever NaN — order is all that matters here.
    changes.sort_by(|a, b| {
        let da = a.1 - net.get(a.0).map_or(0.0, |c| c.b_current);
        let db = b.1 - net.get(b.0).map_or(0.0, |c| c.b_current);
        da.total_cmp(&db)
    });
    for (id, target) in changes {
        net.set_conn_rate(id, target)
            .expect("invariant: maxmin allocation is feasible");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(i: u32) -> LinkId {
        LinkId(i)
    }
    fn cid(i: u32) -> ConnId {
        ConnId(i)
    }

    fn problem(links: &[(u32, f64)], conns: &[(u32, f64, &[u32])]) -> MaxminProblem {
        let mut p = MaxminProblem::default();
        for (l, cap) in links {
            p.link_excess.insert(lid(*l), *cap);
        }
        for (c, demand, ls) in conns {
            p.conns.insert(
                cid(*c),
                ConnDemand {
                    demand: *demand,
                    links: ls.iter().map(|l| lid(*l)).collect(),
                },
            );
        }
        p
    }

    #[test]
    fn single_link_even_split() {
        let p = problem(
            &[(0, 30.0)],
            &[(0, 100.0, &[0]), (1, 100.0, &[0]), (2, 100.0, &[0])],
        );
        let a = p.solve();
        for c in 0..3 {
            assert!((a[&cid(c)] - 10.0).abs() < 1e-9);
        }
        assert!(p.verify_maxmin(&a).is_ok());
    }

    #[test]
    fn small_demand_frees_share_for_others() {
        let p = problem(
            &[(0, 30.0)],
            &[(0, 4.0, &[0]), (1, 100.0, &[0]), (2, 100.0, &[0])],
        );
        let a = p.solve();
        assert!((a[&cid(0)] - 4.0).abs() < 1e-9);
        assert!((a[&cid(1)] - 13.0).abs() < 1e-9);
        assert!((a[&cid(2)] - 13.0).abs() < 1e-9);
        assert!(p.verify_maxmin(&a).is_ok());
    }

    #[test]
    fn classic_linear_network() {
        // The canonical 2-link example: conn 0 crosses both links,
        // conn 1 uses link 0, conn 2 uses link 1. Capacities 10 and 4.
        // Maxmin: conn 0 gets 2 (bottleneck link 1), conn 2 gets 2,
        // conn 1 gets 8.
        let p = problem(
            &[(0, 10.0), (1, 4.0)],
            &[(0, 100.0, &[0, 1]), (1, 100.0, &[0]), (2, 100.0, &[1])],
        );
        let a = p.solve();
        assert!((a[&cid(0)] - 2.0).abs() < 1e-9, "{a:?}");
        assert!((a[&cid(1)] - 8.0).abs() < 1e-9, "{a:?}");
        assert!((a[&cid(2)] - 2.0).abs() < 1e-9, "{a:?}");
        assert!(p.verify_maxmin(&a).is_ok());
        // Link 1 is a connection bottleneck for conn 0. (Link 0 is too:
        // conn 1 absorbs all slack there, leaving conn 0 exactly its
        // share — both links bind at the optimum.)
        assert!(p.is_connection_bottleneck(&a, cid(0), lid(1)));
        assert!(p.is_connection_bottleneck(&a, cid(0), lid(0)));
    }

    #[test]
    fn non_bottleneck_link_detected_with_finite_demands() {
        // Conn 1 wants only 5 on the 12-capacity link 0, so link 0 keeps
        // headroom and is NOT conn 0's bottleneck; link 1 (capacity 4) is.
        let p = problem(
            &[(0, 12.0), (1, 4.0)],
            &[(0, 100.0, &[0, 1]), (1, 5.0, &[0]), (2, 100.0, &[1])],
        );
        let a = p.solve();
        assert!((a[&cid(0)] - 2.0).abs() < 1e-9, "{a:?}");
        assert!((a[&cid(1)] - 5.0).abs() < 1e-9);
        assert!((a[&cid(2)] - 2.0).abs() < 1e-9);
        assert!(p.verify_maxmin(&a).is_ok());
        assert!(p.is_connection_bottleneck(&a, cid(0), lid(1)));
        assert!(!p.is_connection_bottleneck(&a, cid(0), lid(0)));
        // A link the connection doesn't traverse is never its bottleneck.
        assert!(!p.is_connection_bottleneck(&a, cid(1), lid(1)));
    }

    #[test]
    fn zero_demand_connections_stay_zero() {
        let p = problem(&[(0, 30.0)], &[(0, 0.0, &[0]), (1, 100.0, &[0])]);
        let a = p.solve();
        assert_eq!(a[&cid(0)], 0.0);
        assert!((a[&cid(1)] - 30.0).abs() < 1e-9);
        assert!(p.verify_maxmin(&a).is_ok());
    }

    #[test]
    fn zero_capacity_link_starves_its_connections() {
        let p = problem(
            &[(0, 0.0), (1, 10.0)],
            &[(0, 100.0, &[0, 1]), (1, 100.0, &[1])],
        );
        let a = p.solve();
        assert_eq!(a[&cid(0)], 0.0);
        assert!((a[&cid(1)] - 10.0).abs() < 1e-9);
        assert!(p.verify_maxmin(&a).is_ok());
    }

    #[test]
    fn empty_problem_solves() {
        let p = MaxminProblem::default();
        assert!(p.solve().is_empty());
        assert!(p.verify_maxmin(&BTreeMap::new()).is_ok());
    }

    #[test]
    fn verify_catches_violations() {
        let p = problem(&[(0, 10.0)], &[(0, 100.0, &[0]), (1, 100.0, &[0])]);
        // Overload.
        let mut bad: Allocation = BTreeMap::new();
        bad.insert(cid(0), 8.0);
        bad.insert(cid(1), 8.0);
        assert!(p.verify_maxmin(&bad).is_err());
        // Feasible but unfair (0 could take from 1's slack? no — link
        // saturated by a *larger* holder ⇒ not maxmin).
        let mut unfair: Allocation = BTreeMap::new();
        unfair.insert(cid(0), 2.0);
        unfair.insert(cid(1), 8.0);
        assert!(p.verify_maxmin(&unfair).is_err());
        // The true optimum passes.
        let good = p.solve();
        assert!(p.verify_maxmin(&good).is_ok());
    }

    #[test]
    fn mesh_with_three_bottlenecks() {
        // Three links in a chain, four connections with mixed spans.
        let p = problem(
            &[(0, 12.0), (1, 6.0), (2, 9.0)],
            &[
                (0, 100.0, &[0, 1, 2]),
                (1, 100.0, &[0]),
                (2, 100.0, &[1]),
                (3, 100.0, &[2]),
            ],
        );
        let a = p.solve();
        assert!(p.verify_maxmin(&a).is_ok());
        // Conn 0 is limited by link 1: share 3. Then conn 2 also 3;
        // conn 1 gets 9; conn 3 gets 6.
        assert!((a[&cid(0)] - 3.0).abs() < 1e-9, "{a:?}");
        assert!((a[&cid(2)] - 3.0).abs() < 1e-9);
        assert!((a[&cid(1)] - 9.0).abs() < 1e-9);
        assert!((a[&cid(3)] - 6.0).abs() < 1e-9);
    }
}
