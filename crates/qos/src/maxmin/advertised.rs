//! The advertised-rate computation `μ_l` (§5.3.1).
//!
//! A switch maintains, per link, the last stamped rate seen for each
//! ongoing connection (its *recorded rate*). Connections whose recorded
//! rate is at or below the advertised rate are *restricted* (set `R`) —
//! they are bottlenecked elsewhere and cannot use a fair share here.
//! Given excess capacity `b'_av,l`, total connections `N_l`, restricted
//! consumption `b'_R` and count `N_R`:
//!
//! ```text
//!        ⎧ b'_av,l                                if N_l = 0
//! μ_l =  ⎨ b'_av,l − b'_R + max_{i∈R} b'_R,i      if N_l = N_R
//!        ⎩ (b'_av,l − b'_R) / (N_l − N_R)         otherwise
//! ```
//!
//! After a first calculation, "some connections that were previously
//! restricted … can become unrestricted with respect to the new
//! advertised rate. In this case, these connections are re-marked as
//! unrestricted and the advertised rate is re-calculated once more. It can
//! be shown that the second re-calculation is sufficient."

/// Small tolerance for the ≤ comparisons over float rates.
const EPS: f64 = 1e-9;

/// Compute `μ_l` for a link with excess capacity `excess` and the given
/// recorded (excess) rates of its ongoing connections.
///
/// The restricted set is derived from the rates themselves via the
/// paper's fixed-point rule, using at most two recalculations.
pub fn advertised_rate(excess: f64, recorded: &[f64]) -> f64 {
    let n = recorded.len();
    if n == 0 {
        return excess.max(0.0);
    }
    let excess = excess.max(0.0);
    // First pass: everyone unrestricted.
    let mut mu = excess / n as f64;
    // Two recalculations, per the paper's sufficiency argument.
    for _ in 0..2 {
        mu = recalc(excess, recorded, mu);
    }
    mu.max(0.0)
}

/// One recalculation: classify restricted connections against the current
/// `mu`, then apply the three-case formula.
fn recalc(excess: f64, recorded: &[f64], mu: f64) -> f64 {
    let n = recorded.len();
    let restricted: Vec<f64> = recorded
        .iter()
        .copied()
        .filter(|r| *r <= mu + EPS)
        .collect();
    let n_r = restricted.len();
    let b_r: f64 = restricted.iter().sum();
    if n_r == 0 {
        excess / n as f64
    } else if n_r == n {
        let max_r = restricted.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        excess - b_r + max_r
    } else {
        (excess - b_r) / (n - n_r) as f64
    }
}

/// Is connection `i` restricted at a link quoting `mu`?
pub fn is_restricted(recorded_rate: f64, mu: f64) -> bool {
    recorded_rate <= mu + EPS
}

/// The rate a link quotes to one *subject* connection: the fair share
/// computed "under the assumption that this switch is a bottleneck for
/// this connection" (§5.3.1) — i.e. the subject is always counted as
/// unrestricted, whatever its recorded rate, and only the *other*
/// connections' recorded rates may classify as restricted consumption.
///
/// `others` are the recorded rates of every other connection on the link.
pub fn advertised_rate_for(excess: f64, others: &[f64]) -> f64 {
    advertised_rate_for_iter(excess, others.len(), || others.iter().copied())
}

/// Allocation-free form of [`advertised_rate_for`]: `others` yields the
/// other connections' recorded rates afresh on each call (the fixed-point
/// iteration classifies them several times) and `n_others` is how many it
/// yields. Hot packet-processing paths use this to avoid building a rate
/// vector per packet.
pub fn advertised_rate_for_iter<I, F>(excess: f64, n_others: usize, others: F) -> f64
where
    I: Iterator<Item = f64>,
    F: Fn() -> I,
{
    let excess = excess.max(0.0);
    let n = n_others + 1; // the subject is always unrestricted
    let mut mu = excess / n as f64;
    // Iterate the classification to its fixed point; with the subject
    // pinned unrestricted the denominator never vanishes, and each round
    // can only move connections between the two classes, so
    // `n_others + 1` rounds certainly suffice.
    for _ in 0..=n_others + 1 {
        let mut b_r = 0.0;
        let mut n_r = 0usize;
        for r in others().filter(|r| *r <= mu + EPS) {
            b_r += r;
            n_r += 1;
        }
        let next = (excess - b_r).max(0.0) / (n - n_r) as f64;
        if (next - mu).abs() <= EPS {
            mu = next;
            break;
        }
        mu = next;
    }
    mu.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_link_advertises_full_excess() {
        assert_eq!(advertised_rate(42.0, &[]), 42.0);
        assert_eq!(advertised_rate(-5.0, &[]), 0.0);
    }

    #[test]
    fn symmetric_connections_split_evenly() {
        // Everyone recorded at the fair share → all restricted →
        // N_l = N_R case: μ = excess − b_R + max = 30 − 30 + 10 = 10.
        let mu = advertised_rate(30.0, &[10.0, 10.0, 10.0]);
        assert!((mu - 10.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn elsewhere_bottlenecked_connection_frees_capacity() {
        // Conn 0 is stuck at 2 (bottlenecked on another link); the other
        // two share the rest: μ = (30 − 2)/2 = 14.
        let mu = advertised_rate(30.0, &[2.0, 14.0, 14.0]);
        assert!((mu - 14.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn two_pass_reclassification_settles() {
        // First pass μ0 = 30/3 = 10 classifies {2, 9} restricted →
        // μ1 = (30 − 11)/1 = 19. Both 2 and 9 stay ≤ 19, so the second
        // recalculation confirms the fixed point: the one unrestricted
        // connection may take 19.
        let mu = advertised_rate(30.0, &[2.0, 9.0, 25.0]);
        assert!((mu - 19.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn recalculation_unrestricts_when_mu_rises_past_recorded() {
        // μ0 = 40/2 = 20 classifies {12} restricted → μ1 = (40−12)/1 = 28;
        // 12 ≤ 28 keeps it restricted; stable at 28.
        let mu = advertised_rate(40.0, &[12.0, 35.0]);
        assert!((mu - 28.0).abs() < 1e-9, "mu={mu}");
        // Symmetric high rates: all restricted at μ0 = 20 →
        // N = N_R case: μ = 40 − 40 + 20 = 20.
        let mu = advertised_rate(40.0, &[20.0, 20.0]);
        assert!((mu - 20.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn fixed_point_property() {
        // μ is a fixed point: recalculating with the returned μ keeps it.
        for recorded in [
            vec![1.0, 2.0, 3.0],
            vec![5.0, 5.0, 5.0],
            vec![0.0, 0.0, 40.0],
            vec![7.0],
        ] {
            let mu = advertised_rate(20.0, &recorded);
            let again = recalc(20.0, &recorded, mu);
            assert!(
                (mu - again.max(0.0)).abs() < 1e-9,
                "not a fixed point: {mu} vs {again} for {recorded:?}"
            );
        }
    }

    #[test]
    fn negative_excess_clamps_to_zero() {
        assert_eq!(advertised_rate(-10.0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rate_for_subject_on_empty_link() {
        assert_eq!(advertised_rate_for(40.0, &[]), 40.0);
        assert_eq!(advertised_rate_for(-3.0, &[]), 0.0);
    }

    #[test]
    fn rate_for_subject_with_restricted_peer() {
        // Peer pinned at 2 elsewhere: subject may take 10 − 2 = 8.
        let mu = advertised_rate_for(10.0, &[2.0]);
        assert!((mu - 8.0).abs() < 1e-9, "mu={mu}");
        // Peer consuming the even split: both unrestricted-ish → 5.
        let mu = advertised_rate_for(10.0, &[5.0]);
        assert!((mu - 5.0).abs() < 1e-9, "mu={mu}");
        // Greedy peer recorded above the fair share: treated as
        // unrestricted, each gets the even split.
        let mu = advertised_rate_for(10.0, &[8.0]);
        assert!((mu - 5.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn rate_for_mixed_peers() {
        // Excess 30, peers {2 restricted, 25 greedy}: subject shares
        // (30 − 2) with the greedy peer → 14.
        let mu = advertised_rate_for(30.0, &[2.0, 25.0]);
        assert!((mu - 14.0).abs() < 1e-9, "mu={mu}");
    }

    #[test]
    fn restriction_predicate() {
        assert!(is_restricted(5.0, 5.0));
        assert!(is_restricted(4.0, 5.0));
        assert!(!is_restricted(6.0, 5.0));
    }
}
