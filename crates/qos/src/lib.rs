// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-qos — admission control, maxmin adaptation, conflict resolution
//!
//! The algorithmic core of §5 of the paper:
//!
//! * [`admission`] — the round-trip admission test of Table 2. The forward
//!   pass tests bandwidth, delay, jitter, buffer, and packet loss at every
//!   node for two scheduling disciplines (work-conserving **WFQ** and
//!   non-work-conserving **RCSP**); the destination compares end-to-end
//!   requirements against availability; the reverse pass relaxes the
//!   over-reserved delay budget uniformly and firms up the reservation.
//! * [`maxmin`] — the maxmin optimality criterion of §5.2: bottleneck
//!   definitions, a centralized water-filling reference solver, the
//!   advertised-rate computation `μ_l` with its two-pass restricted-set
//!   refinement, and the distributed event-driven ADVERTISE/UPDATE
//!   protocol of §5.3.1 (both the flooding base version and the
//!   `M(l)`-restricted refinement), with the Theorem 1 convergence
//!   property verified in tests.
//! * [`adaptation`] — the adaptation trigger (eqn 2), the δ threshold,
//!   the static-portable-only policy, and the `B_dyn` pool adjustment.
//! * [`conflict`] — resolution of resource conflicts (§5.2): squeezing
//!   ongoing connections within their pre-negotiated bounds to admit new
//!   connections, then redistributing excess maxmin-fairly.
//! * [`schedulers`] — packet-level simulators of the two disciplines the
//!   admission test is instantiated for (work-conserving WFQ against its
//!   GPS fluid reference, and non-work-conserving RCSP with rate-jitter
//!   regulators), used to validate Table 2's delay bounds empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod admission;
pub mod conflict;
pub mod maxmin;
pub mod schedulers;

pub use admission::{admit, AdmissionOutcome, AdmissionRequest, Discipline, Rejection};
pub use maxmin::centralized::MaxminProblem;
