//! Token-bucket traffic sources and envelope conformance.
//!
//! A `(σ, ρ)` source may emit at most `σ + ρ·t` bits in any interval of
//! length `t`. The **greedy** source is the worst case the delay bounds
//! are proved against: it dumps the full burst at t = 0 and then sends at
//! exactly `ρ`. The randomised source emits conformant but irregular
//! traffic for broader coverage.

use arm_sim::SimRng;

use super::Packet;

/// Generate the greedy `(σ, ρ)` arrival sequence for one flow: `σ` worth
/// of packets at `start`, then steady packets of `l_max` every
/// `l_max / ρ`.
pub fn greedy(
    flow: usize,
    sigma: f64,
    rho: f64,
    l_max: f64,
    start: f64,
    horizon: f64,
) -> Vec<Packet> {
    assert!(rho > 0.0 && l_max > 0.0 && sigma >= 0.0);
    let mut out = Vec::new();
    // The burst, in maximal packets (a possibly smaller tail packet).
    let mut burst = sigma;
    while burst > 1e-12 {
        let size = burst.min(l_max);
        out.push(Packet {
            flow,
            size,
            arrival: start,
        });
        burst -= size;
    }
    // Steady state at rate ρ.
    let gap = l_max / rho;
    let mut t = start + gap;
    while t <= horizon {
        out.push(Packet {
            flow,
            size: l_max,
            arrival: t,
        });
        t += gap;
    }
    out
}

/// Generate randomised conformant traffic: exponential gaps at mean load
/// `load × ρ`, each packet released only up to the current bucket level.
pub fn random_conformant(
    flow: usize,
    sigma: f64,
    rho: f64,
    l_max: f64,
    load: f64,
    horizon: f64,
    rng: &mut SimRng,
) -> Vec<Packet> {
    assert!((0.0..=1.0).contains(&load));
    let mut out = Vec::new();
    let mut bucket = sigma.min(l_max); // start partially filled
    let mut t = 0.0;
    let rate = rho * load;
    if rate <= 0.0 {
        return out;
    }
    let mean_gap = l_max / rate;
    let mut last = 0.0;
    loop {
        t += rng.exp(1.0 / mean_gap);
        if t > horizon {
            break;
        }
        bucket = (bucket + (t - last) * rho).min(sigma.max(l_max));
        last = t;
        let size = bucket.min(l_max);
        if size >= l_max * 0.1 {
            out.push(Packet {
                flow,
                size,
                arrival: t,
            });
            bucket -= size;
        }
    }
    out
}

/// Does the arrival sequence conform to the `(σ, ρ)` envelope? (Checks
/// every pair of arrival instants — O(n²), test-sized inputs only.)
pub fn conforms(packets: &[Packet], sigma: f64, rho: f64) -> bool {
    let mut cum = Vec::with_capacity(packets.len());
    let mut s = 0.0;
    for p in packets {
        s += p.size;
        cum.push((p.arrival, s));
    }
    for i in 0..cum.len() {
        for j in i..cum.len() {
            let sent = cum[j].1 - if i == 0 { 0.0 } else { cum[i - 1].1 };
            let dt = cum[j].0 - cum[i].0;
            if sent > sigma + rho * dt + 1e-9 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_conformant_and_maximal() {
        let pkts = greedy(0, 8.0, 64.0, 1.0, 0.0, 2.0);
        assert!(conforms(&pkts, 8.0, 64.0));
        // The burst is present in full at t = 0.
        let burst: f64 = pkts
            .iter()
            .filter(|p| p.arrival == 0.0)
            .map(|p| p.size)
            .sum();
        assert!((burst - 8.0).abs() < 1e-9);
        // Violating the envelope by ε fails the check.
        assert!(!conforms(&pkts, 7.5, 64.0));
    }

    #[test]
    fn greedy_respects_rate_after_burst() {
        let pkts = greedy(0, 4.0, 100.0, 1.0, 0.0, 1.0);
        let steady: Vec<_> = pkts.iter().filter(|p| p.arrival > 0.0).collect();
        // Rate 100 kbps with 1 kb packets → one every 10 ms.
        assert!(steady.len() >= 99);
        let gaps: Vec<f64> = steady
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        assert!(gaps.iter().all(|g| (g - 0.01).abs() < 1e-9));
    }

    #[test]
    fn random_source_is_conformant() {
        let mut rng = arm_sim::SimRng::new(3);
        for load in [0.3, 0.7, 1.0] {
            let pkts = random_conformant(0, 8.0, 64.0, 1.0, load, 5.0, &mut rng);
            assert!(conforms(&pkts, 8.0, 64.0), "load {load}");
            assert!(!pkts.is_empty());
        }
    }

    #[test]
    fn conformance_catches_violations() {
        let burst = vec![
            Packet {
                flow: 0,
                size: 5.0,
                arrival: 0.0,
            },
            Packet {
                flow: 0,
                size: 5.0,
                arrival: 0.001,
            },
        ];
        assert!(!conforms(&burst, 5.0, 10.0));
        assert!(conforms(&burst, 10.0, 10.0));
    }
}
