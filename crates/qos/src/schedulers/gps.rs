// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The fluid Generalized Processor Sharing reference.
//!
//! GPS serves every backlogged flow simultaneously at a rate proportional
//! to its weight: flow `i` with weight `φ_i` receives
//! `C · φ_i / Σ_{j ∈ B(t)} φ_j` whenever it is backlogged. Packetized
//! WFQ ([`super::wfq`]) transmits packets in the order they would
//! *finish* under GPS; the fluid finish times computed here are therefore
//! both the scheduling key and the delay reference for the
//! `d_WFQ ≤ d_GPS + L_max/C` bound.
//!
//! The simulation is event-driven over arrival instants and backlog
//! depletion moments; with the full arrival sequence known, the finish
//! times are exact (no discretisation).

use super::{Departure, Packet};

/// Compute GPS (fluid) finish times for a packet sequence.
///
/// `weights[f]` is flow `f`'s weight (any positive scale; only ratios
/// matter), `capacity` the link speed in kilobits per second. `packets`
/// need not be sorted; ties are served in input order within a flow.
pub fn finish_times(packets: &[Packet], weights: &[f64], capacity: f64) -> Vec<Departure> {
    assert!(capacity > 0.0);
    assert!(weights.iter().all(|w| *w > 0.0));
    let flows = weights.len();
    // Per-flow packet FIFO with cumulative bit boundaries.
    let mut order: Vec<usize> = (0..packets.len()).collect();
    order.sort_by(|a, b| {
        packets[*a]
            .arrival
            .total_cmp(&packets[*b].arrival)
            .then(a.cmp(b))
    });

    // State: for each flow, bits of backlog and the queue of (packet
    // index, bits remaining to finish that packet *within the backlog*).
    let mut backlog = vec![0.0f64; flows];
    let mut queues: Vec<std::collections::VecDeque<(usize, f64)>> = vec![Default::default(); flows];
    let mut out: Vec<Option<f64>> = vec![None; packets.len()];

    let mut now = order.first().map_or(0.0, |i| packets[*i].arrival);
    let mut next_arrival = 0usize; // index into `order`

    loop {
        // Admit all arrivals at `now`.
        while next_arrival < order.len() && packets[order[next_arrival]].arrival <= now + 1e-15 {
            let idx = order[next_arrival];
            let p = packets[idx];
            backlog[p.flow] += p.size;
            queues[p.flow].push_back((idx, p.size));
            next_arrival += 1;
        }
        let active_weight: f64 = (0..flows)
            .filter(|f| backlog[*f] > 1e-12)
            .map(|f| weights[f])
            .sum();
        if active_weight <= 0.0 {
            // Idle: jump to the next arrival or finish.
            if next_arrival >= order.len() {
                break;
            }
            now = packets[order[next_arrival]].arrival;
            continue;
        }
        // Time until the earliest backlog depletes (head packet of some
        // flow finishes) at current rates.
        let mut dt_deplete = f64::INFINITY;
        for f in 0..flows {
            if backlog[f] <= 1e-12 {
                continue;
            }
            let rate = capacity * weights[f] / active_weight;
            let head_remaining = queues[f]
                .front()
                .expect("invariant: backlogged flow has a head")
                .1;
            let dt = head_remaining / rate;
            if dt < dt_deplete {
                dt_deplete = dt;
            }
        }
        // Time until the next arrival changes the active set.
        let dt_arrival = if next_arrival < order.len() {
            packets[order[next_arrival]].arrival - now
        } else {
            f64::INFINITY
        };
        let dt = dt_deplete.min(dt_arrival).max(0.0);
        // Advance service.
        for f in 0..flows {
            if backlog[f] <= 1e-12 {
                continue;
            }
            let mut served = capacity * weights[f] / active_weight * dt;
            backlog[f] = (backlog[f] - served).max(0.0);
            while served > 0.0 {
                match queues[f].front_mut() {
                    Some((idx, rem)) => {
                        if *rem <= served + 1e-12 {
                            served -= *rem;
                            out[*idx] = Some(now + dt);
                            queues[f].pop_front();
                        } else {
                            *rem -= served;
                            served = 0.0;
                        }
                    }
                    None => break,
                }
            }
        }
        now += dt;
        if next_arrival >= order.len() && backlog.iter().all(|b| *b <= 1e-12) {
            break;
        }
    }

    packets
        .iter()
        .enumerate()
        .map(|(i, p)| Departure {
            packet: *p,
            departure: out[i].expect("invariant: every packet finishes"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize, size: f64, arrival: f64) -> Packet {
        Packet {
            flow,
            size,
            arrival,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        // 3 packets of 1 kb at a 10 kbps link: finish at 0.1, 0.2, 0.3.
        let pkts = vec![pkt(0, 1.0, 0.0), pkt(0, 1.0, 0.0), pkt(0, 1.0, 0.0)];
        let d = finish_times(&pkts, &[1.0], 10.0);
        let times: Vec<f64> = d.iter().map(|x| x.departure).collect();
        assert!((times[0] - 0.1).abs() < 1e-9);
        assert!((times[1] - 0.2).abs() < 1e-9);
        assert!((times[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_share_equally() {
        // Two flows, one packet each, same arrival: both finish at 0.2
        // (each served at 5 kbps).
        let pkts = vec![pkt(0, 1.0, 0.0), pkt(1, 1.0, 0.0)];
        let d = finish_times(&pkts, &[1.0, 1.0], 10.0);
        assert!((d[0].departure - 0.2).abs() < 1e-9);
        assert!((d[1].departure - 0.2).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_split() {
        // φ = 3:1 → flow 0's packet is served at 7.5 kbps while both are
        // backlogged: finishes at 1/7.5 ≈ 0.1333; flow 1's packet then
        // gets the full link for its remaining 1 − 0.1333·2.5 = 0.6667 kb:
        // 0.1333 + 0.6667/10 = 0.2.
        let pkts = vec![pkt(0, 1.0, 0.0), pkt(1, 1.0, 0.0)];
        let d = finish_times(&pkts, &[3.0, 1.0], 10.0);
        assert!(
            (d[0].departure - 1.0 / 7.5).abs() < 1e-9,
            "{}",
            d[0].departure
        );
        assert!((d[1].departure - 0.2).abs() < 1e-9, "{}", d[1].departure);
    }

    #[test]
    fn work_conservation() {
        // Busy period: total service equals capacity × busy time.
        let pkts = vec![pkt(0, 2.0, 0.0), pkt(1, 3.0, 0.1), pkt(0, 1.0, 0.2)];
        let d = finish_times(&pkts, &[1.0, 2.0], 10.0);
        let last = d
            .iter()
            .map(|x| x.departure)
            .fold(f64::NEG_INFINITY, f64::max);
        // 6 kb through a 10 kbps link starting at t = 0 with no idling.
        assert!((last - 0.6).abs() < 1e-9, "last={last}");
    }

    #[test]
    fn idle_gap_resets_the_busy_period() {
        let pkts = vec![pkt(0, 1.0, 0.0), pkt(0, 1.0, 5.0)];
        let d = finish_times(&pkts, &[1.0], 10.0);
        assert!((d[0].departure - 0.1).abs() < 1e-9);
        assert!((d[1].departure - 5.1).abs() < 1e-9);
    }

    #[test]
    fn guaranteed_rate_bound_holds() {
        // A (σ=4, ρ=50) greedy flow with weight giving it 50 kbps of a
        // 100 kbps link, against a greedy competitor: every packet
        // finishes within (σ + L)/b of its arrival (GPS bound).
        use crate::schedulers::traffic::greedy;
        let mut pkts = greedy(0, 4.0, 50.0, 1.0, 0.0, 1.0);
        pkts.extend(greedy(1, 4.0, 50.0, 1.0, 0.0, 1.0));
        let d = finish_times(&pkts, &[1.0, 1.0], 100.0);
        let bound = (4.0 + 1.0) / 50.0 + 1e-9;
        for dep in d.iter().filter(|x| x.packet.flow == 0) {
            assert!(
                dep.delay() <= bound,
                "delay {} exceeds GPS bound {bound}",
                dep.delay()
            );
        }
    }
}
