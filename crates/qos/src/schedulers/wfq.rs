// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Packetized WFQ (PGPS).
//!
//! WFQ transmits packets, one at a time at the full link rate, in
//! nondecreasing order of their *GPS finish time*; among packets with
//! equal finish times, arrival order breaks the tie. The classic PGPS
//! result (Parekh–Gallager) bounds its lag behind the fluid reference:
//!
//! ```text
//! d_WFQ(p) ≤ d_GPS(p) + L_max / C
//! ```
//!
//! which is exactly the shape of Table 2's per-hop delay row
//! `d_l = L_max/b_min + L_max/C`: the first term is the GPS bound for a
//! packet at the guaranteed rate, the second the packetization penalty.
//! Both inequalities are asserted by this module's tests on greedy and
//! randomised conformant traffic.

use super::{gps, Departure, Packet};

/// Simulate WFQ over a packet sequence. `weights` and `capacity` as in
/// [`gps::finish_times`]. Returns per-packet departures (last bit out).
pub fn simulate(packets: &[Packet], weights: &[f64], capacity: f64) -> Vec<Departure> {
    assert!(capacity > 0.0);
    // The scheduling key: fluid finish times.
    let gps_fin = gps::finish_times(packets, weights, capacity);
    let mut idx: Vec<usize> = (0..packets.len()).collect();
    // Service emulation: at each decision instant, among ARRIVED and
    // unserved packets pick the smallest GPS finish time. (WFQ never
    // preempts and may momentarily idle only when nothing has arrived.)
    idx.sort_by(|a, b| {
        packets[*a]
            .arrival
            .total_cmp(&packets[*b].arrival)
            .then(a.cmp(b))
    });
    let mut departures: Vec<Option<f64>> = vec![None; packets.len()];
    let mut served = vec![false; packets.len()];
    let mut now = 0.0f64;
    let mut remaining = packets.len();
    let mut next_arrival = 0usize;
    // Heap of (gps_finish, seq, packet index) for arrived packets.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Key(f64, usize);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    while remaining > 0 {
        // Admit arrivals up to `now`.
        while next_arrival < idx.len() && packets[idx[next_arrival]].arrival <= now + 1e-15 {
            let i = idx[next_arrival];
            heap.push(Reverse(Key(gps_fin[i].departure, i)));
            next_arrival += 1;
        }
        match heap.pop() {
            Some(Reverse(Key(_, i))) => {
                debug_assert!(!served[i]);
                served[i] = true;
                now += packets[i].size / capacity;
                departures[i] = Some(now);
                remaining -= 1;
            }
            None => {
                // Idle until the next arrival.
                now = packets[idx[next_arrival]].arrival;
            }
        }
    }
    packets
        .iter()
        .enumerate()
        .map(|(i, p)| Departure {
            packet: *p,
            departure: departures[i].expect("invariant: all served"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::traffic::{greedy, random_conformant};

    fn pkt(flow: usize, size: f64, arrival: f64) -> Packet {
        Packet {
            flow,
            size,
            arrival,
        }
    }

    #[test]
    fn serves_in_gps_finish_order() {
        // Flow 0 heavy weight: its packet finishes first under GPS, so
        // WFQ sends it first even though both arrived together.
        let pkts = vec![pkt(1, 1.0, 0.0), pkt(0, 1.0, 0.0)];
        let d = simulate(&pkts, &[3.0, 1.0], 10.0);
        assert!(d[1].departure < d[0].departure);
        // Non-preemptive full-rate service: 0.1 then 0.2.
        assert!((d[1].departure - 0.1).abs() < 1e-9);
        assert!((d[0].departure - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pgps_lag_bound_holds_on_greedy_traffic() {
        // Three flows with different weights, all greedy: every packet's
        // WFQ departure is within L_max/C of its GPS departure.
        let capacity = 100.0;
        let l_max = 1.0;
        let mut pkts = Vec::new();
        pkts.extend(greedy(0, 4.0, 50.0, l_max, 0.0, 1.0));
        pkts.extend(greedy(1, 2.0, 30.0, l_max, 0.0, 1.0));
        pkts.extend(greedy(2, 1.0, 20.0, l_max, 0.0, 1.0));
        let weights = [50.0, 30.0, 20.0];
        let g = crate::schedulers::gps::finish_times(&pkts, &weights, capacity);
        let w = simulate(&pkts, &weights, capacity);
        for (gd, wd) in g.iter().zip(&w) {
            assert!(
                wd.departure <= gd.departure + l_max / capacity + 1e-9,
                "PGPS bound violated: {} vs {}",
                wd.departure,
                gd.departure
            );
        }
    }

    #[test]
    fn table2_per_hop_delay_bound_holds() {
        // Table 2, WFQ delay row: a flow with guaranteed rate b and a
        // (σ, ρ ≤ b) envelope sees per-packet delay ≤ (σ + L)/b + L/C.
        let capacity = 160.0;
        let l_max = 1.0;
        let specs = [(8.0, 64.0), (4.0, 64.0), (2.0, 32.0)];
        let mut pkts = Vec::new();
        for (f, (sigma, rho)) in specs.iter().enumerate() {
            pkts.extend(greedy(f, *sigma, *rho, l_max, 0.0, 2.0));
        }
        let weights: Vec<f64> = specs.iter().map(|(_, rho)| *rho).collect();
        let d = simulate(&pkts, &weights, capacity);
        for (f, (sigma, rho)) in specs.iter().enumerate() {
            let bound = (sigma + l_max) / rho + l_max / capacity + 1e-9;
            let max = d
                .iter()
                .filter(|x| x.packet.flow == f)
                .map(super::super::Departure::delay)
                .fold(0.0, f64::max);
            assert!(
                max <= bound,
                "flow {f}: observed {max} > Table 2 bound {bound}"
            );
        }
    }

    #[test]
    fn bound_holds_on_randomised_conformant_traffic() {
        let capacity = 160.0;
        let l_max = 1.0;
        let mut rng = arm_sim::SimRng::new(17);
        let specs = [(8.0, 64.0), (4.0, 64.0)];
        let mut pkts = Vec::new();
        for (f, (sigma, rho)) in specs.iter().enumerate() {
            pkts.extend(random_conformant(
                f, *sigma, *rho, l_max, 0.9, 5.0, &mut rng,
            ));
        }
        let weights: Vec<f64> = specs.iter().map(|(_, rho)| *rho).collect();
        let d = simulate(&pkts, &weights, capacity);
        for (f, (sigma, rho)) in specs.iter().enumerate() {
            let bound = (sigma + l_max) / rho + l_max / capacity + 1e-9;
            for x in d.iter().filter(|x| x.packet.flow == f) {
                assert!(x.delay() <= bound, "flow {f} delay {}", x.delay());
            }
        }
    }

    #[test]
    fn work_conserving() {
        // WFQ never idles while packets wait: total busy time equals
        // total bits / capacity within a busy period.
        let pkts = vec![pkt(0, 2.0, 0.0), pkt(1, 3.0, 0.0), pkt(0, 1.0, 0.1)];
        let d = simulate(&pkts, &[1.0, 1.0], 10.0);
        let last = d.iter().map(|x| x.departure).fold(0.0, f64::max);
        assert!((last - 0.6).abs() < 1e-9);
    }
}
