//! Packet-level scheduler simulators.
//!
//! Table 2 instantiates the admission test for two representative
//! disciplines from Zhang's survey \[13\]: work-conserving **WFQ** and
//! non-work-conserving **RCSP**. The analytic rows of the table are
//! worst-case bounds; this module provides the packet-level machinery to
//! *check* them — generate `(σ, ρ)`-conformant traffic, push it through a
//! faithful scheduler simulation, and compare observed delays against
//! the bounds the admission control promised.
//!
//! * [`traffic`] — token-bucket sources (greedy and randomised),
//!   envelope conformance checking,
//! * [`gps`] — the fluid Generalized Processor Sharing reference,
//! * [`wfq`] — packetized WFQ (PGPS): serve in order of GPS finish time;
//!   the classic result `d_WFQ ≤ d_GPS + L_max/C` is asserted in tests,
//! * [`rcsp`] — rate-jitter regulators + static-priority scheduling;
//!   regulated output is envelope-conformant and delays respect the
//!   per-hop budget when the admission test passes.

pub mod gps;
pub mod rcsp;
pub mod traffic;
pub mod wfq;

/// One packet offered to a scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Flow the packet belongs to (index into the scheduler's flow list).
    pub flow: usize,
    /// Size in kilobits.
    pub size: f64,
    /// Arrival time at the scheduler (seconds).
    pub arrival: f64,
}

/// A packet's fate: when its last bit left.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Departure {
    /// The packet.
    pub packet: Packet,
    /// Departure (last-bit) time, seconds.
    pub departure: f64,
}

impl Departure {
    /// The packet's delay through the scheduler.
    pub fn delay(&self) -> f64 {
        self.departure - self.packet.arrival
    }
}

/// Maximum observed delay per flow.
pub fn max_delay_per_flow(departures: &[Departure], flows: usize) -> Vec<f64> {
    let mut out = vec![0.0; flows];
    for d in departures {
        let delay = d.delay();
        if delay > out[d.packet.flow] {
            out[d.packet.flow] = delay;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn departure_delay() {
        let d = Departure {
            packet: Packet {
                flow: 0,
                size: 1.0,
                arrival: 2.0,
            },
            departure: 2.5,
        };
        assert!((d.delay() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_delay_accounting() {
        let mk = |flow, arrival, departure| Departure {
            packet: Packet {
                flow,
                size: 1.0,
                arrival,
            },
            departure,
        };
        let ds = [mk(0, 0.0, 1.0), mk(0, 2.0, 2.2), mk(1, 0.0, 0.4)];
        let m = max_delay_per_flow(&ds, 2);
        assert!((m[0] - 1.0).abs() < 1e-12);
        assert!((m[1] - 0.4).abs() < 1e-12);
    }
}
