//! Rate-Controlled Static Priority (RCSP) with rate-jitter regulators.
//!
//! RCSP is the paper's representative *non-work-conserving* discipline
//! (Zhang \[13\]): each flow's packets first pass a **rate-jitter
//! regulator** that delays them until they conform to the flow's
//! `(σ, ρ)` envelope, then wait in a **static-priority** queue; the link
//! serves the highest-priority eligible packet, FIFO within a priority.
//!
//! Non-work-conservation is the point: the regulator deliberately idles
//! the link to reshape traffic, so downstream hops see envelope-clean
//! input — which is why the RCSP buffer row of Table 2 depends only on
//! the local and upstream delay *budgets*, not on the whole upstream
//! path's distortion (contrast the WFQ row's `l·L_max` growth).
//!
//! Eligibility (rate-jitter regulator with burst credit): packet `k` of
//! a flow becomes eligible at
//!
//! ```text
//! ET(k) = max(arrival(k), ET(k − j) + (Σ sizes of the last j packets)/ρ)
//! ```
//!
//! implemented with a token-bucket emptiness test: the packet is held
//! exactly until the `(σ, ρ)` bucket can cover it.

use super::{Departure, Packet};

/// A flow's regulator/priority configuration.
#[derive(Clone, Copy, Debug)]
pub struct RcspFlow {
    /// Envelope burst σ (kilobits).
    pub sigma: f64,
    /// Envelope rate ρ (kbps).
    pub rho: f64,
    /// Static priority; **lower number = higher priority**.
    pub priority: usize,
}

/// Simulate RCSP. Returns departures plus, for analysis, each packet's
/// eligibility time (regulator exit).
pub fn simulate(
    packets: &[Packet],
    flows: &[RcspFlow],
    capacity: f64,
) -> (Vec<Departure>, Vec<f64>) {
    assert!(capacity > 0.0);
    // Regulator pass: compute eligibility times per flow.
    let mut order: Vec<usize> = (0..packets.len()).collect();
    order.sort_by(|a, b| {
        packets[*a]
            .arrival
            .total_cmp(&packets[*b].arrival)
            .then(a.cmp(b))
    });
    let mut eligible = vec![0.0f64; packets.len()];
    // Token bucket per flow: level at last update, last update time,
    // previous eligibility (FIFO within flow).
    let mut bucket: Vec<(f64, f64, f64)> = flows.iter().map(|f| (f.sigma, 0.0, 0.0)).collect();
    for &i in &order {
        let p = packets[i];
        let f = &flows[p.flow];
        let (level, at, prev_et) = bucket[p.flow];
        // Refill to the arrival instant.
        let level_at_arrival = (level + (p.arrival - at) * f.rho).min(f.sigma);
        // Held until the bucket covers the packet (and FIFO after the
        // previous packet of the flow).
        let wait = if level_at_arrival >= p.size {
            0.0
        } else {
            (p.size - level_at_arrival) / f.rho
        };
        let et = (p.arrival + wait).max(prev_et);
        eligible[i] = et;
        // Debit at eligibility.
        let level_at_et = (level + (et - at) * f.rho).min(f.sigma) - p.size;
        bucket[p.flow] = (level_at_et, et, et);
    }

    // Static-priority service over eligible packets.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Key(usize, f64, usize); // (priority, eligibility, seq)
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .cmp(&other.0)
                .then(self.1.total_cmp(&other.1))
                .then(self.2.cmp(&other.2))
        }
    }
    let mut by_eligibility: Vec<usize> = (0..packets.len()).collect();
    by_eligibility.sort_by(|a, b| eligible[*a].total_cmp(&eligible[*b]).then(a.cmp(b)));
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    let mut departures = vec![0.0f64; packets.len()];
    let mut next = 0usize;
    let mut now = 0.0f64;
    let mut remaining = packets.len();
    while remaining > 0 {
        while next < by_eligibility.len() && eligible[by_eligibility[next]] <= now + 1e-15 {
            let i = by_eligibility[next];
            heap.push(Reverse(Key(
                flows[packets[i].flow].priority,
                eligible[i],
                i,
            )));
            next += 1;
        }
        match heap.pop() {
            Some(Reverse(Key(_, _, i))) => {
                now += packets[i].size / capacity;
                departures[i] = now;
                remaining -= 1;
            }
            None => {
                // Non-work-conserving idle: wait for the next eligibility.
                now = eligible[by_eligibility[next]];
            }
        }
    }
    let deps = packets
        .iter()
        .enumerate()
        .map(|(i, p)| Departure {
            packet: *p,
            departure: departures[i],
        })
        .collect();
    (deps, eligible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::traffic::{conforms, greedy};

    fn pkt(flow: usize, size: f64, arrival: f64) -> Packet {
        Packet {
            flow,
            size,
            arrival,
        }
    }

    #[test]
    fn regulator_reshapes_violating_traffic() {
        // A flow declared (σ=1, ρ=10) dumps 5 kb at once: the regulator
        // spaces the excess at ρ.
        let pkts: Vec<Packet> = (0..5).map(|_| pkt(0, 1.0, 0.0)).collect();
        let flows = [RcspFlow {
            sigma: 1.0,
            rho: 10.0,
            priority: 0,
        }];
        let (deps, eligible) = simulate(&pkts, &flows, 1000.0);
        // Eligibility times: 0, .1, .2, .3, .4.
        for (k, et) in eligible.iter().enumerate() {
            assert!((et - 0.1 * k as f64).abs() < 1e-9, "ET({k}) = {et}");
        }
        // The *output* (departures as an arrival sequence downstream)
        // conforms to the envelope (+ one packet of slack for the
        // transmission quantum).
        let out: Vec<Packet> = deps
            .iter()
            .map(|d| pkt(0, d.packet.size, d.departure))
            .collect();
        assert!(conforms(&out, 1.0 + 1.0, 10.0));
    }

    #[test]
    fn non_work_conserving_idles_on_purpose() {
        // One flow, 2 packets, regulator forces a gap even though the
        // link is free.
        let pkts = vec![pkt(0, 1.0, 0.0), pkt(0, 1.0, 0.0)];
        let flows = [RcspFlow {
            sigma: 1.0,
            rho: 10.0,
            priority: 0,
        }];
        let (deps, _) = simulate(&pkts, &flows, 1000.0);
        assert!(deps[1].departure >= 0.1, "second packet held by regulator");
    }

    #[test]
    fn static_priority_orders_eligible_packets() {
        // Both eligible at 0; priority 0 goes first regardless of input
        // order.
        let pkts = vec![pkt(1, 1.0, 0.0), pkt(0, 1.0, 0.0)];
        let flows = [
            RcspFlow {
                sigma: 4.0,
                rho: 100.0,
                priority: 0,
            },
            RcspFlow {
                sigma: 4.0,
                rho: 100.0,
                priority: 1,
            },
        ];
        let (deps, _) = simulate(&pkts, &flows, 10.0);
        assert!(deps[1].departure < deps[0].departure);
    }

    #[test]
    fn admitted_set_meets_its_delay_budgets() {
        // Two priority levels on a 160 kbps link; conformant greedy
        // sources. Queueing delay after the regulator is bounded by the
        // higher-priority load: for P0, σ0/C + L/C; for P1,
        // (σ0 + σ1 + L)/C plus P0's steady interference — use the loose
        // but safe budget (σ0 + σ1 + 2L)/ (C − ρ0) for the test.
        let l_max = 1.0;
        let f0 = RcspFlow {
            sigma: 4.0,
            rho: 64.0,
            priority: 0,
        };
        let f1 = RcspFlow {
            sigma: 8.0,
            rho: 64.0,
            priority: 1,
        };
        let mut pkts = greedy(0, f0.sigma, f0.rho, l_max, 0.0, 2.0);
        pkts.extend(greedy(1, f1.sigma, f1.rho, l_max, 0.0, 2.0));
        let capacity = 160.0;
        let (deps, eligible) = simulate(&pkts, &[f0, f1], capacity);
        for (i, d) in deps.iter().enumerate() {
            let queueing = d.departure - eligible[i];
            let budget = match d.packet.flow {
                0 => (f0.sigma + l_max + l_max) / capacity,
                _ => (f0.sigma + f1.sigma + 2.0 * l_max) / (capacity - f0.rho),
            };
            assert!(
                queueing <= budget + 1e-9,
                "flow {} queueing {queueing} > budget {budget}",
                d.packet.flow
            );
        }
    }

    #[test]
    fn conformant_input_passes_the_regulator_unscathed() {
        let flows = [RcspFlow {
            sigma: 8.0,
            rho: 64.0,
            priority: 0,
        }];
        let pkts = greedy(0, 8.0, 64.0, 1.0, 0.0, 1.0);
        let (_, eligible) = simulate(&pkts, &flows, 1000.0);
        for (p, et) in pkts.iter().zip(&eligible) {
            assert!(
                (et - p.arrival).abs() < 1e-9,
                "conformant packet held: {} vs {}",
                et,
                p.arrival
            );
        }
    }
}
