// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! Resource-conflict resolution (§5.2).
//!
//! Conflicts arise in two situations: (a) excess resources appear and
//! must be distributed among competing connections, and (b) a new
//! connection can be admitted within everyone's pre-negotiated lower
//! bounds but the *currently free* excess is insufficient. Both resolve
//! to the same operation: recompute the maxmin-fair division of each
//! link's excess and move allocations to it — never below any
//! connection's `b_min`, never above its `b_max`.
//!
//! This module is the *synchronous* resolution path used by the
//! large-scale experiments (one call per admission/handoff/departure
//! epoch); the message-level path is
//! [`crate::maxmin::distributed::DistributedMaxmin`].

use arm_net::ids::ConnId;
use arm_net::{Network, PortableId};

use crate::maxmin::centralized::{apply_allocation, MaxminProblem};
use crate::maxmin::incremental::IncrementalMaxmin;

/// Recompute the maxmin division of excess bandwidth over the whole
/// network and apply it to every live connection. Returns the number of
/// connections whose rate changed.
pub fn resolve_network(net: &mut Network) -> usize {
    let problem = MaxminProblem::from_network(net);
    let alloc = problem.solve();
    let before: Vec<(ConnId, f64)> = net
        .live_connections()
        .map(|c| (c.id, c.b_current))
        .collect();
    apply_allocation(net, &alloc);
    before
        .into_iter()
        .filter(|(id, old)| {
            net.get(*id)
                .is_some_and(|c| (c.b_current - old).abs() > 1e-9)
        })
        .count()
}

/// Like [`resolve_network`], but honouring the paper's static/mobile
/// policy: connections of *mobile* portables are pinned at `b_min`
/// (§3.4.2 — "the QoS for its connections are kept at the pre-negotiated
/// minimum level"), so only static portables' connections compete for the
/// excess.
pub fn resolve_network_with_policy(
    net: &mut Network,
    is_static: &dyn Fn(PortableId) -> bool,
) -> usize {
    // Pin mobile connections at their floors first (frees excess).
    let mobile: Vec<ConnId> = net
        .live_connections()
        .filter(|c| !is_static(c.portable))
        .map(|c| c.id)
        .collect();
    for id in &mobile {
        let (floor, cur) = {
            let c = net.get(*id).expect("invariant: live connection");
            (c.qos.b_min, c.b_current)
        };
        if cur > floor + 1e-9 {
            net.set_conn_rate(*id, floor)
                .expect("invariant: decreasing to floor always fits");
        }
    }
    // Solve maxmin over static connections only.
    let mut problem = MaxminProblem::from_network(net);
    problem
        .conns
        .retain(|id, _| net.get(*id).is_some_and(|c| is_static(c.portable)));
    let alloc = problem.solve();
    let changed = alloc
        .iter()
        .filter(|(id, x)| {
            net.get(**id)
                .is_some_and(|c| (c.qos.b_min + **x - c.b_current).abs() > 1e-9)
        })
        .count();
    apply_allocation(net, &alloc);
    changed + mobile.len()
}

/// Like [`resolve_network_with_policy`], but against a resident
/// [`IncrementalMaxmin`] engine instead of rebuilding the problem from
/// scratch. The engine is diff-synced with the network (so only genuine
/// changes dirty anything) and re-fills only the dirty region; the
/// resulting rates are bit-identical to [`resolve_network_with_policy`]
/// because both paths run the same per-component water-filling on the
/// same inputs (see `arm_qos::maxmin::incremental` module docs).
pub fn resolve_network_incremental(
    net: &mut Network,
    is_static: &dyn Fn(PortableId) -> bool,
    engine: &mut IncrementalMaxmin,
) -> usize {
    // Pin mobile connections at their floors first (frees excess).
    let mobile: Vec<ConnId> = net
        .live_connections()
        .filter(|c| !is_static(c.portable))
        .map(|c| c.id)
        .collect();
    for id in &mobile {
        let (floor, cur) = {
            let c = net.get(*id).expect("invariant: live connection");
            (c.qos.b_min, c.b_current)
        };
        if cur > floor + 1e-9 {
            net.set_conn_rate(*id, floor)
                .expect("invariant: decreasing to floor always fits");
        }
    }
    // Sync the engine to the static connections' demand side and every
    // link's excess, then re-fill whatever that dirtied.
    engine.sync_network(net, &|c| is_static(c.portable));
    let alloc = engine.resolve();
    let changed = alloc
        .iter()
        .filter(|(id, x)| {
            net.get(**id)
                .is_some_and(|c| (c.qos.b_min + **x - c.b_current).abs() > 1e-9)
        })
        .count();
    apply_allocation(net, alloc);
    changed + mobile.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_net::flowspec::QosRequest;
    use arm_net::ids::{CellId, NodeId};
    use arm_net::routing::shortest_path;
    use arm_net::topology::Topology;
    use arm_net::{Connection, PortableId};
    use arm_sim::SimTime;

    fn one_cell_net() -> (Network, CellId) {
        let mut t = Topology::new();
        let sw = t.add_switch("sw");
        let c = t.add_cell("c", 1000.0, 0.0);
        t.add_wired_duplex(sw, t.base_station(c), 100_000.0, 0.0);
        (Network::new(t), c)
    }

    fn admit_local(net: &mut Network, cell: CellId, portable: u32, qos: QosRequest) -> ConnId {
        let id = net.next_conn_id();
        let route = shortest_path(
            net.topology(),
            net.topology().air_node(cell),
            net.topology().base_station(cell),
        )
        .unwrap();
        net.install(Connection::new(
            id,
            PortableId(portable),
            cell,
            NodeId(0),
            qos,
            route.clone(),
            SimTime::ZERO,
        ));
        net.reserve_route(id, &route, qos.b_min, &vec![0.0; route.links.len()], false)
            .unwrap();
        id
    }

    #[test]
    fn excess_distributed_evenly() {
        let (mut net, cell) = one_cell_net();
        let a = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 2000.0));
        let b = admit_local(&mut net, cell, 1, QosRequest::bandwidth(100.0, 2000.0));
        resolve_network(&mut net);
        // 1000 capacity, floors 200, excess 800 → 400 each → 500 each.
        assert!((net.get(a).unwrap().b_current - 500.0).abs() < 1e-6);
        assert!((net.get(b).unwrap().b_current - 500.0).abs() < 1e-6);
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn b_max_caps_the_share() {
        let (mut net, cell) = one_cell_net();
        let a = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 250.0));
        let b = admit_local(&mut net, cell, 1, QosRequest::bandwidth(100.0, 2000.0));
        resolve_network(&mut net);
        assert!((net.get(a).unwrap().b_current - 250.0).abs() < 1e-6);
        // b takes the rest: 1000 − 250 = 750.
        assert!((net.get(b).unwrap().b_current - 750.0).abs() < 1e-6);
    }

    #[test]
    fn new_admission_squeezes_then_resolves() {
        let (mut net, cell) = one_cell_net();
        let a = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 2000.0));
        resolve_network(&mut net);
        assert!((net.get(a).unwrap().b_current - 1000.0).abs() < 1e-6);
        // Conflict case (b): floors fit but free excess is 0.
        let b = admit_local(&mut net, cell, 1, QosRequest::bandwidth(300.0, 2000.0));
        resolve_network(&mut net);
        let ra = net.get(a).unwrap().b_current;
        let rb = net.get(b).unwrap().b_current;
        // Floors 100 + 300, excess 600. Maxmin raises both by 300:
        // a = 400, b = 600.
        assert!((ra - 400.0).abs() < 1e-6, "ra={ra}");
        assert!((rb - 600.0).abs() < 1e-6, "rb={rb}");
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn mobile_portables_pinned_to_floor() {
        let (mut net, cell) = one_cell_net();
        let stat = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 2000.0));
        let mob = admit_local(&mut net, cell, 1, QosRequest::bandwidth(100.0, 2000.0));
        let is_static = |p: PortableId| p == PortableId(0);
        resolve_network_with_policy(&mut net, &is_static);
        assert!((net.get(mob).unwrap().b_current - 100.0).abs() < 1e-9);
        // The static portable takes all the excess: 1000 − 100 = 900.
        assert!((net.get(stat).unwrap().b_current - 900.0).abs() < 1e-6);
    }

    #[test]
    fn malformed_allocation_degrades_to_floor_not_panic() {
        // Regression: a NaN or negative excess entry (impossible from
        // `solve`, but reachable through hand-built allocations) used to
        // flow into `set_conn_rate` unchecked; now it clamps to the
        // guaranteed floor.
        let (mut net, cell) = one_cell_net();
        let a = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 2000.0));
        let b = admit_local(&mut net, cell, 1, QosRequest::bandwidth(100.0, 2000.0));
        let mut alloc = std::collections::BTreeMap::new();
        alloc.insert(a, f64::NAN);
        alloc.insert(b, -50.0);
        apply_allocation(&mut net, &alloc);
        assert_eq!(net.get(a).unwrap().b_current, 100.0);
        assert_eq!(net.get(b).unwrap().b_current, 100.0);
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn departure_redistributes() {
        let (mut net, cell) = one_cell_net();
        let a = admit_local(&mut net, cell, 0, QosRequest::bandwidth(100.0, 2000.0));
        let b = admit_local(&mut net, cell, 1, QosRequest::bandwidth(100.0, 2000.0));
        resolve_network(&mut net);
        net.finish(b, arm_net::ConnectionState::Terminated);
        resolve_network(&mut net);
        assert!((net.get(a).unwrap().b_current - 1000.0).abs() < 1e-6);
        assert!(net.check_invariants().is_ok());
    }
}
