// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The round-trip admission test of Table 2.
//!
//! Admission control "converts end-to-end QoS requirements into per-hop
//! requirements and tests for the availability of resources at
//! intermediate nodes" (§4.1). For a request with traffic envelope
//! `(σ_j, ρ)`, maximum packet `L_max`, bounds `[b_min, b_max]`, delay
//! bound `d_j`, jitter bound `σ̄` and loss bound `p_e`:
//!
//! **Forward pass** (at each hop `l` of the `n`-hop route):
//!
//! * bandwidth — `b_min,j ≤ C_l − b_resv,l − Σ_i b_min,i`,
//! * delay — accumulate the per-hop worst case
//!   `d_l,j := L_max/b_min,j + L_max/C_l`,
//! * jitter — `(σ_j + l·L_max)/b_min,j ≤ σ̄`,
//! * buffer — discipline-specific demand ([`wfq`], [`rcsp`]),
//! * loss — accumulate `p_e,l`.
//!
//! **Destination**:
//!
//! * `d_min,j := (σ_j + n·L_max)/b_min,j + Σ_i L_max/C_i ≤ d_j`,
//! * `(σ_j + n·L_max)/b_min,j ≤ σ̄`,
//! * `1 − Π_i (1 − p_e,i) ≤ p_e`.
//!
//! **Reverse pass** (reclaiming over-reservation):
//!
//! * bandwidth — a *static* portable's connection is granted
//!   `b_j := b_min,j + b_stamp` where `b_stamp` is the stamped rate the
//!   forward packet collected (`min(b_max − b_min, min_l μ_l)`, §5.3.1);
//!   a *mobile* portable's connection is pinned to `b_min,j` (§3.4.2),
//! * delay — the "uniform relaxation policy": each hop's budget becomes
//!   `d'_l,j := d_l,j + (d_j − d_min,j)/n + σ_j/(n·b_min,j)`, so that the
//!   per-hop budgets sum exactly to `d_j`,
//! * buffer — recomputed from the granted rate and relaxed budgets.
//!
//! A *handoff* connection runs the same test but may consume its own
//! advance-reserved claim (`b_resv,l`), and is treated as mobile.

pub mod rcsp;
pub mod wfq;

use arm_net::ids::{ConnId, LinkId};
use arm_net::link::LedgerError;
use arm_net::Network;
use serde::{Deserialize, Serialize};

use crate::maxmin::advertised::advertised_rate;

/// Scheduling discipline at intermediate nodes (§5.1 uses these two as
/// representative work-conserving / non-work-conserving disciplines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Work-conserving weighted fair queueing.
    Wfq,
    /// Non-work-conserving rate-controlled static priority with
    /// rate-jitter regulators.
    Rcsp,
}

/// Is the requesting portable static or mobile? (§3.4.2: static portables
/// are upgraded toward `b_max`; mobile portables are pinned at `b_min`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityClass {
    /// In the same cell for at least `T_th`.
    Static,
    /// Recently moved; expected to keep moving.
    Mobile,
}

/// New connection or handoff of an ongoing one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Fresh request — may not touch advance reservations.
    New,
    /// Connection handing off into this route — may consume its own
    /// advance-reserved claim on each link.
    Handoff,
}

/// Everything the admission test needs to know about one request.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionRequest {
    /// The (pre-installed) connection this request concerns.
    pub conn: ConnId,
    /// Scheduler model for the buffer/delay rows of Table 2.
    pub discipline: Discipline,
    /// Static or mobile portable.
    pub mobility: MobilityClass,
    /// New connection or handoff.
    pub kind: RequestKind,
}

/// Which Table 2 row failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestKind {
    /// Bandwidth row (forward).
    Bandwidth,
    /// Delay row (destination).
    Delay,
    /// Jitter row (forward or destination).
    Jitter,
    /// Buffer row (forward).
    Buffer,
    /// Packet-loss row (destination).
    PacketLoss,
}

/// A failed admission.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use]
pub struct Rejection {
    /// Which test failed.
    pub test: TestKind,
    /// The link at which it failed (`None` for end-to-end destination
    /// tests).
    pub link: Option<LinkId>,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.link {
            Some(l) => write!(f, "{:?} test failed at {l}", self.test),
            None => write!(f, "end-to-end {:?} test failed", self.test),
        }
    }
}

/// A successful admission.
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub struct AdmissionOutcome {
    /// Rate granted on the reverse pass (kbps):
    /// `b_min + b_stamp` for static portables, `b_min` for mobile.
    pub b_granted: f64,
    /// The stamped rate collected on the forward pass (excess kbps).
    pub b_stamp: f64,
    /// Worst-case end-to-end delay `d_min,j` (seconds).
    pub d_min: f64,
    /// Relaxed per-hop delay budgets `d'_l,j` (seconds), summing to the
    /// requested bound `d_j`.
    pub hop_delay_budgets: Vec<f64>,
    /// Buffer reserved at each hop (kilobits), after the reverse pass.
    pub hop_buffers: Vec<f64>,
    /// Achieved end-to-end loss probability.
    pub loss: f64,
}

/// Run the full Table 2 round trip for an installed connection and, on
/// success, firm up the reservation in the ledgers (floors + buffers on
/// every hop; allocation raised to the granted rate).
///
/// On rejection nothing is reserved.
pub fn admit(net: &mut Network, req: AdmissionRequest) -> Result<AdmissionOutcome, Rejection> {
    let (route, qos) = {
        let c = net
            .get(req.conn)
            .expect("precondition: connection must be installed");
        (c.route.clone(), c.qos)
    };
    qos.validate()
        .expect("precondition: caller validates the QoS request");
    let n = route.links.len();
    if n == 0 {
        // Degenerate single-node route: nothing to reserve.
        return Ok(AdmissionOutcome {
            b_granted: qos.b_min,
            b_stamp: 0.0,
            d_min: 0.0,
            hop_delay_budgets: Vec::new(),
            hop_buffers: Vec::new(),
            loss: 0.0,
        });
    }
    let sigma = qos.traffic.sigma;
    let l_max = qos.traffic.l_max;
    let b_min = qos.b_min;

    // ---------------- forward pass ----------------
    let mut hop_delays = Vec::with_capacity(n); // d_l,j
    let mut fwd_buffers = Vec::with_capacity(n);
    let mut sum_inv_c = 0.0; // Σ L_max / C_i
    let mut survive = 1.0; // Π (1 − p_e,i)
    let mut b_stamp = qos.adaptable_range();
    for (hop0, lid) in route.links.iter().enumerate() {
        let hop = hop0 + 1; // Table 2 indexes hops from 1
        let ls = net.link(*lid);
        let cap = ls.capacity();

        // Bandwidth row.
        let bw_ok = match req.kind {
            RequestKind::New => ls.admits(b_min),
            RequestKind::Handoff => ls.admits_with_claim(req.conn, b_min),
        };
        if !bw_ok {
            return Err(Rejection {
                test: TestKind::Bandwidth,
                link: Some(*lid),
            });
        }

        // Delay row: accumulate the per-hop worst case.
        let d_l = l_max / b_min + l_max / cap;
        hop_delays.push(d_l);
        sum_inv_c += l_max / cap;

        // Jitter row at hop l.
        if (sigma + hop as f64 * l_max) / b_min > qos.jitter_bound + 1e-12 {
            return Err(Rejection {
                test: TestKind::Jitter,
                link: Some(*lid),
            });
        }

        // Buffer row (worst case, using b_max on the forward pass).
        let buf = match req.discipline {
            Discipline::Wfq => wfq::buffer_demand(sigma, l_max, hop),
            Discipline::Rcsp => {
                let d_prev = if hop == 1 {
                    None
                } else {
                    Some(hop_delays[hop0 - 1])
                };
                rcsp::buffer_demand(sigma, l_max, qos.b_max, d_prev, d_l)
            }
        };
        fwd_buffers.push(buf);

        // Loss row: accumulate survival probability.
        let p = net.topology().link(*lid).error_prob;
        survive *= 1.0 - p;

        // Stamped rate: clamped by each link's advertised rate (§5.3.1).
        let mu = link_advertised_rate(net, *lid);
        b_stamp = b_stamp.min(mu.max(0.0));
    }

    // ---------------- destination tests ----------------
    let d_min = (sigma + n as f64 * l_max) / b_min + sum_inv_c;
    if d_min > qos.delay_bound + 1e-12 {
        return Err(Rejection {
            test: TestKind::Delay,
            link: None,
        });
    }
    if (sigma + n as f64 * l_max) / b_min > qos.jitter_bound + 1e-12 {
        return Err(Rejection {
            test: TestKind::Jitter,
            link: None,
        });
    }
    let loss = 1.0 - survive;
    if loss > qos.loss_bound + 1e-12 {
        return Err(Rejection {
            test: TestKind::PacketLoss,
            link: None,
        });
    }

    // ---------------- reverse pass ----------------
    // Uniform relaxation: spread the end-to-end slack (and the burst
    // drain term) evenly across hops; budgets then sum exactly to d_j.
    let slack = (qos.delay_bound - d_min) / n as f64 + sigma / (n as f64 * b_min);
    let budgets: Vec<f64> = hop_delays.iter().map(|d| d + slack).collect();

    // Granted rate: static portables take their stamped excess share;
    // mobile (and handoff) connections are pinned to the floor.
    let b_granted = match (req.mobility, req.kind) {
        (MobilityClass::Static, RequestKind::New) => b_min + b_stamp,
        _ => b_min,
    };

    // Buffers recomputed from the granted rate and relaxed budgets
    // (Table 2's reverse-pass buffer column).
    let rev_buffers: Vec<f64> = (0..n)
        .map(|hop0| {
            let hop = hop0 + 1;
            match req.discipline {
                Discipline::Wfq => wfq::buffer_demand(sigma, l_max, hop),
                Discipline::Rcsp => {
                    let d_prev = if hop == 1 {
                        None
                    } else {
                        Some(budgets[hop0 - 1])
                    };
                    rcsp::buffer_reserved(sigma, l_max, b_granted, d_prev, budgets[hop0])
                }
            }
        })
        .collect();

    // ---------------- firm reservation ----------------
    let as_handoff = req.kind == RequestKind::Handoff;
    if let Err((lid, e)) = net.reserve_route(req.conn, &route, b_min, &rev_buffers, as_handoff) {
        // The forward test passed but the ledger refused — only possible
        // for the buffer pool (bandwidth was tested identically above).
        let test = match e {
            LedgerError::BufferExhausted => TestKind::Buffer,
            _ => TestKind::Bandwidth,
        };
        return Err(Rejection {
            test,
            link: Some(lid),
        });
    }
    if b_granted > b_min {
        // Raise toward the granted rate where the links allow it today;
        // the adaptation machinery keeps it maxmin-fair afterwards.
        let mut grant = b_granted;
        for lid in &route.links {
            let ls = net.link(*lid);
            let own = ls.alloc(req.conn).map_or(0.0, |a| a.b_alloc);
            let room = (ls.capacity() - ls.b_resv() - ls.sum_b_alloc() + own).max(b_min);
            grant = grant.min(room);
        }
        net.set_conn_rate(req.conn, grant.max(b_min))
            .expect("invariant: grant was clamped to fit");
    }

    Ok(AdmissionOutcome {
        b_granted: net.get(req.conn).map_or(b_granted, |c| c.b_current),
        b_stamp,
        d_min,
        hop_delay_budgets: budgets,
        hop_buffers: rev_buffers,
        loss,
    })
}

/// The advertised rate `μ_l` a link would quote a newcomer, computed from
/// the current excess allocations of its ongoing connections (§5.3.1's
/// admission shortcut: the forward packet collects
/// `min(b_max − b_min, min_l μ_l)`).
pub fn link_advertised_rate(net: &Network, lid: LinkId) -> f64 {
    let ls = net.link(lid);
    let recorded: Vec<f64> = net
        .conns_on_link(lid)
        .map(|c| (c.b_current - c.qos.b_min).max(0.0))
        .collect();
    advertised_rate(ls.excess_available(), &recorded)
}

#[cfg(test)]
mod tests;
