//! Buffer demand under rate-controlled static priority (Table 2, RCSP
//! rows, with `b*(·)` rate-jitter regulators per Zhang's survey \[13\]).
//!
//! RCSP is non-work-conserving: a regulator at each hop reshapes the flow,
//! so the buffer demand depends on how long packets may dwell — the local
//! delay budget plus (after the first hop) the upstream hop's budget:
//!
//! * forward pass, hop 1: `σ + L_max + b_max · d_1`,
//! * forward pass, hop l≠1: `σ + L_max + b_max · (d_{l−1} + d_l)`,
//! * reverse pass, hop 1: `σ + L_max + b · d'_1`,
//! * reverse pass, hop l≠1: `σ + b · (d'_{l−1} + d'_l)`.
//!
//! The forward pass uses `b_max` (worst case before the grant is known);
//! the reverse pass uses the granted rate `b` and the relaxed budgets
//! `d'`, reclaiming the over-reservation.

/// Worst-case buffer demand on the forward pass. `d_prev` is the previous
/// hop's delay budget (`None` at the first hop), `d_cur` the local one.
pub fn buffer_demand(sigma: f64, l_max: f64, b_max: f64, d_prev: Option<f64>, d_cur: f64) -> f64 {
    match d_prev {
        None => sigma + l_max + b_max * d_cur,
        Some(dp) => sigma + l_max + b_max * (dp + d_cur),
    }
}

/// Buffer actually reserved on the reverse pass, from the granted rate
/// and relaxed budgets.
pub fn buffer_reserved(sigma: f64, l_max: f64, b: f64, d_prev: Option<f64>, d_cur: f64) -> f64 {
    match d_prev {
        None => sigma + l_max + b * d_cur,
        Some(dp) => sigma + b * (dp + d_cur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hop_uses_only_local_budget() {
        assert_eq!(buffer_demand(4.0, 1.0, 100.0, None, 0.02), 4.0 + 1.0 + 2.0);
        assert_eq!(buffer_reserved(4.0, 1.0, 50.0, None, 0.02), 4.0 + 1.0 + 1.0);
    }

    #[test]
    fn later_hops_add_upstream_budget() {
        let fwd = buffer_demand(4.0, 1.0, 100.0, Some(0.01), 0.02);
        assert_eq!(fwd, 4.0 + 1.0 + 100.0 * 0.03);
        let rev = buffer_reserved(4.0, 1.0, 50.0, Some(0.01), 0.02);
        assert_eq!(rev, 4.0 + 50.0 * 0.03);
    }

    #[test]
    fn reverse_pass_reclaims_when_rate_below_max() {
        // Granted rate b < b_max ⇒ reverse reservation ≤ forward demand.
        let fwd = buffer_demand(4.0, 1.0, 100.0, Some(0.01), 0.02);
        let rev = buffer_reserved(4.0, 1.0, 60.0, Some(0.01), 0.02);
        assert!(rev < fwd);
    }
}
