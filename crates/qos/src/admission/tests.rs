//! Unit tests for the Table 2 round trip.

use arm_net::flowspec::{QosRequest, TrafficSpec};
use arm_net::ids::{CellId, ConnId, NodeId, PortableId};
use arm_net::link::ResvClaim;
use arm_net::routing::shortest_path;
use arm_net::topology::Topology;
use arm_net::{Connection, Network};
use arm_sim::SimTime;

use super::*;

/// Two cells joined by one switch; wireless 1600 kbps with 1% error,
/// backbone 10 Mbps error-free.
fn testbed() -> (Network, CellId, CellId) {
    let mut t = Topology::new();
    let sw = t.add_switch("sw");
    let c0 = t.add_cell("c0", 1600.0, 0.01);
    let c1 = t.add_cell("c1", 1600.0, 0.01);
    t.add_wired_duplex(sw, t.base_station(c0), 10_000.0, 0.0);
    t.add_wired_duplex(sw, t.base_station(c1), 10_000.0, 0.0);
    (Network::new(t), c0, c1)
}

fn install(net: &mut Network, cell: CellId, dest: CellId, qos: QosRequest) -> ConnId {
    let id = net.next_conn_id();
    let route = shortest_path(
        net.topology(),
        net.topology().air_node(cell),
        net.topology().air_node(dest),
    )
    .unwrap();
    net.install(Connection::new(
        id,
        PortableId(0),
        cell,
        NodeId(0),
        qos,
        route,
        SimTime::ZERO,
    ));
    id
}

fn req(conn: ConnId) -> AdmissionRequest {
    AdmissionRequest {
        conn,
        discipline: Discipline::Wfq,
        mobility: MobilityClass::Mobile,
        kind: RequestKind::New,
    }
}

#[test]
fn accepts_a_feasible_connection_and_reserves_floors() {
    let (mut net, c0, c1) = testbed();
    let qos = QosRequest::bandwidth(64.0, 256.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let out = admit(&mut net, req(id)).expect("feasible");
    assert_eq!(out.b_granted, 64.0, "mobile pinned at floor");
    let wl = net.topology().wireless_link(c0);
    assert_eq!(net.link(wl).sum_b_min(), 64.0);
    assert!(net.check_invariants().is_ok());
    // 4 hops; loss = 1 − 0.99² over the two wireless hops.
    assert!((out.loss - (1.0 - 0.99f64.powi(2))).abs() < 1e-12);
    assert_eq!(out.hop_delay_budgets.len(), 4);
}

#[test]
fn static_portable_granted_excess_share() {
    let (mut net, c0, c1) = testbed();
    let qos = QosRequest::bandwidth(64.0, 600.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let out = admit(
        &mut net,
        AdmissionRequest {
            mobility: MobilityClass::Static,
            ..req(id)
        },
    )
    .expect("feasible");
    // Empty network: advertised rate = full excess, so the stamped rate
    // is the demand (b_max − b_min) and the grant reaches b_max.
    assert!(
        (out.b_stamp - 536.0).abs() < 1e-6,
        "b_stamp={}",
        out.b_stamp
    );
    assert!((out.b_granted - 600.0).abs() < 1e-6);
    assert!((net.get(id).unwrap().b_current - 600.0).abs() < 1e-6);
    assert!(net.check_invariants().is_ok());
}

#[test]
fn bandwidth_rejection_names_the_bottleneck_link() {
    let (mut net, c0, c1) = testbed();
    // Fill cell 1's medium.
    let filler = install(
        &mut net,
        c1,
        c0,
        QosRequest::fixed(1550.0).with_delay(10.0).with_jitter(50.0),
    );
    let _ = admit(&mut net, req(filler)).expect("filler fits");
    let id = install(
        &mut net,
        c0,
        c1,
        QosRequest::fixed(100.0).with_delay(10.0).with_jitter(50.0),
    );
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::Bandwidth);
    // The forward pass hits cell 0's medium first — still feasible — and
    // fails at one of the two saturated links (wireless c1 or the shared
    // backbone direction filler also crosses).
    assert!(rej.link.is_some());
    // Nothing was reserved for the rejected connection.
    let wl0 = net.topology().wireless_link(c0);
    assert!(net.link(wl0).alloc(id).is_none());
}

#[test]
fn jitter_rejection_forward_pass() {
    let (mut net, c0, c1) = testbed();
    // (σ + l·L_max)/b_min with σ=8, L_max=1, b_min=64: hop 4 gives
    // 12/64 = 0.1875 s. A 0.15 s jitter bound fails at hop 3 or 4.
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(2.0)
        .with_jitter(0.15)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::Jitter);
    assert!(rej.link.is_some(), "fails during the forward pass");
}

#[test]
fn delay_rejection_end_to_end() {
    let (mut net, c0, c1) = testbed();
    // d_min = (σ + n·L_max)/b_min + Σ L_max/C_i
    //       = (8+4)/64 + 2/1600 + 2/10000 ≈ 0.1890 s.
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(0.15)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::Delay);
    assert_eq!(rej.link, None, "destination test");
}

#[test]
fn loss_rejection_end_to_end() {
    let (mut net, c0, c1) = testbed();
    // Two 1% wireless hops → ~1.99% loss; a 1% bound fails.
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.01)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::PacketLoss);
    assert_eq!(rej.link, None);
}

#[test]
fn relaxed_budgets_sum_to_the_delay_bound() {
    let (mut net, c0, c1) = testbed();
    let qos = QosRequest::bandwidth(64.0, 256.0)
        .with_delay(1.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let out = admit(&mut net, req(id)).unwrap();
    let total: f64 = out.hop_delay_budgets.iter().sum();
    assert!(
        (total - qos.delay_bound).abs() < 1e-9,
        "uniform relaxation must exhaust the bound: {total}"
    );
    // Every relaxed budget exceeds its worst-case component.
    for (b, wl) in out
        .hop_delay_budgets
        .iter()
        .zip(&net.get(id).unwrap().route.links)
    {
        let c = net.link(*wl).capacity();
        assert!(*b >= 1.0 / 64.0 + 1.0 / c);
    }
}

#[test]
fn handoff_consumes_its_own_claim() {
    let (mut net, c0, c1) = testbed();
    // Cell 1 nearly full (a local flow pinning only its own medium), but
    // an advance claim was made for this conn.
    let filler = {
        let id = net.next_conn_id();
        let route = arm_net::Route {
            nodes: vec![net.topology().air_node(c1), net.topology().base_station(c1)],
            links: vec![net.topology().wireless_link(c1)],
        };
        net.install(Connection::new(
            id,
            PortableId(9),
            c1,
            NodeId(0),
            QosRequest::fixed(1400.0).with_delay(10.0).with_jitter(50.0),
            route,
            SimTime::ZERO,
        ));
        id
    };
    let _ = admit(&mut net, req(filler)).unwrap();
    let id = install(
        &mut net,
        c0,
        c1,
        QosRequest::fixed(150.0).with_delay(10.0).with_jitter(50.0),
    );
    let wl1 = net.topology().wireless_link(c1);
    net.link_mut(wl1).set_claim(ResvClaim::Conn(id), 100.0);
    // As a *new* connection it doesn't fit (1400 + 100 claim + 150 > 1600)...
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::Bandwidth);
    // ...but as a handoff it may consume its claim: 1400 + 150 ≤ 1600.
    let out = admit(
        &mut net,
        AdmissionRequest {
            kind: RequestKind::Handoff,
            ..req(id)
        },
    )
    .expect("handoff fits via its claim");
    assert_eq!(out.b_granted, 150.0);
    assert_eq!(
        net.link(wl1).claim(ResvClaim::Conn(id)),
        0.0,
        "claim consumed"
    );
    assert!(net.check_invariants().is_ok());
}

#[test]
fn rcsp_reserves_rate_dependent_buffers() {
    let (mut net, c0, c1) = testbed();
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let out = admit(
        &mut net,
        AdmissionRequest {
            discipline: Discipline::Rcsp,
            ..req(id)
        },
    )
    .unwrap();
    // First hop: σ + L_max + b·d'_1; later hops σ + b(d'_{l−1} + d'_l).
    let b = out.b_granted;
    let d = &out.hop_delay_budgets;
    assert!((out.hop_buffers[0] - (8.0 + 1.0 + b * d[0])).abs() < 1e-9);
    for l in 1..4 {
        assert!((out.hop_buffers[l] - (8.0 + b * (d[l - 1] + d[l]))).abs() < 1e-9);
    }
}

#[test]
fn wfq_buffers_grow_with_hop_index() {
    let (mut net, c0, c1) = testbed();
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    let id = install(&mut net, c0, c1, qos);
    let out = admit(&mut net, req(id)).unwrap();
    assert_eq!(out.hop_buffers, vec![9.0, 10.0, 11.0, 12.0]);
}

#[test]
fn buffer_pool_rejection() {
    let (mut net, c0, c1) = testbed();
    let wl0 = net.topology().wireless_link(c0);
    *net.link_mut(wl0) = arm_net::LinkState::new(1600.0).with_buffer_capacity(5.0);
    let qos = QosRequest::bandwidth(64.0, 64.0)
        .with_delay(2.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0)); // needs 9 kb at hop 1
    let id = install(&mut net, c0, c1, qos);
    let rej = admit(&mut net, req(id)).unwrap_err();
    assert_eq!(rej.test, TestKind::Buffer);
    assert_eq!(rej.link, Some(wl0));
    net.get_mut(id).unwrap().state = arm_net::ConnectionState::Blocked;
    assert!(net.check_invariants().is_ok());
}

#[test]
fn trivial_route_admits_vacuously() {
    let (mut net, c0, _) = testbed();
    let id = install(&mut net, c0, c0, QosRequest::fixed(64.0));
    let out = admit(&mut net, req(id)).unwrap();
    assert_eq!(out.b_granted, 64.0);
    assert!(out.hop_delay_budgets.is_empty());
}

#[test]
fn second_static_admission_shares_fairly() {
    let (mut net, c0, c1) = testbed();
    let mk = || {
        QosRequest::bandwidth(100.0, 2000.0)
            .with_delay(2.0)
            .with_jitter(2.0)
            .with_loss(0.05)
            .with_traffic(TrafficSpec::new(8.0, 100.0))
    };
    let a = install(&mut net, c0, c1, mk());
    let sreq = |conn| AdmissionRequest {
        mobility: MobilityClass::Static,
        ..req(conn)
    };
    let out_a = admit(&mut net, sreq(a)).unwrap();
    // a takes the whole 1600 kbps medium minus floors... capped by b_max=2000,
    // so it gets the wireless capacity 1600.
    assert!((out_a.b_granted - 1600.0).abs() < 1e-6);
    let b = install(&mut net, c0, c1, mk());
    let out_b = admit(&mut net, sreq(b)).unwrap();
    // The newcomer's stamped rate sees μ of the wireless link with a's
    // excess recorded: advertised = (1400 − ...) — it gets a positive
    // share and the conflict resolver evens things out afterwards.
    assert!(out_b.b_granted >= 100.0);
    crate::conflict::resolve_network(&mut net);
    let ra = net.get(a).unwrap().b_current;
    let rb = net.get(b).unwrap().b_current;
    assert!((ra - 800.0).abs() < 1e-6, "ra={ra}");
    assert!((rb - 800.0).abs() < 1e-6, "rb={rb}");
}
