//! Buffer demand under weighted fair queueing (Table 2, WFQ rows).
//!
//! WFQ is work-conserving: a burst admitted at the edge can arrive at hop
//! `l` having accumulated one maximum packet of distortion per upstream
//! hop, so the buffer demand grows linearly with the hop index:
//! `σ_j + l·L_max`. The demand does not depend on the allocated rate, so
//! the forward and reverse passes reserve the same amount.

/// Buffer needed at hop `l` (1-indexed): `σ + l·L_max` (kilobits).
pub fn buffer_demand(sigma: f64, l_max: f64, hop: usize) -> f64 {
    debug_assert!(hop >= 1);
    sigma + hop as f64 * l_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_linearly_with_hop_index() {
        let b1 = buffer_demand(10.0, 1.0, 1);
        let b2 = buffer_demand(10.0, 1.0, 2);
        let b5 = buffer_demand(10.0, 1.0, 5);
        assert_eq!(b1, 11.0);
        assert_eq!(b2 - b1, 1.0);
        assert_eq!(b5, 15.0);
    }

    #[test]
    fn zero_burst_still_needs_packet_buffers() {
        assert_eq!(buffer_demand(0.0, 2.0, 3), 6.0);
    }
}
