//! Adaptation triggers and policy (§5.3).
//!
//! Network-initiated adaptation runs **only for connections from static
//! portables** ("for a frequently handing-off mobile portable, the
//! control and processing overhead might completely compromise the
//! performance improvements"). Adaptation is initiated for link `l` when
//! (eqn 2):
//!
//! ```text
//! b'_av,l(t) < b'_av,l(t⁻)                                  (shrinkage)
//!    OR
//! b'_av,l(t) ≥ Σ_i b'_(av,l),i(t⁻) + δ  AND  M(l) ≠ ∅       (growth)
//! ```
//!
//! where δ throttles adaptation frequency. If `b'_av,l < 0`, "some
//! connections are notified to do re-negotiation".
//!
//! The module also implements the `B_dyn` pool policy of §5.3: each cell
//! sets aside a dynamically adjustable fraction of resources (5%–20%) for
//! unforeseen events, and the pool "has to be adapted to accommodate at
//! least a connection (with the maximum allocated bandwidth) from a
//! static portable that is residing in its neighboring cells".

use arm_net::ids::{CellId, ConnId, LinkId, PortableId};
use arm_net::link::ResvClaim;
use arm_net::Network;
use arm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What an observed excess-bandwidth change at a link calls for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptDecision {
    /// No action: the change is below the δ threshold (or there is no
    /// connection that could benefit).
    None,
    /// Shrinkage: allocations above the new fair share must come down.
    Shrink,
    /// Growth of at least δ with a non-empty bottleneck set: upgrade.
    Grow,
    /// Excess went negative: floors no longer fit — some connections must
    /// re-negotiate their bounds.
    Renegotiate,
}

/// The eqn-2 trigger. `prev_excess` is `b'_av,l(t⁻)`, `new_excess` is
/// `b'_av,l(t)`, `prev_shares_sum` is `Σ_i b'_(av,l),i(t⁻)` (the excess
/// currently handed to connections at this link), `bottleneck_nonempty`
/// is `M(l) ≠ ∅`.
pub fn decide(
    prev_excess: f64,
    new_excess: f64,
    prev_shares_sum: f64,
    bottleneck_nonempty: bool,
    delta: f64,
) -> AdaptDecision {
    if new_excess < 0.0 {
        return AdaptDecision::Renegotiate;
    }
    if new_excess < prev_excess {
        return AdaptDecision::Shrink;
    }
    if new_excess >= prev_shares_sum + delta && bottleneck_nonempty {
        return AdaptDecision::Grow;
    }
    AdaptDecision::None
}

/// Static/mobile classification (§3.4.2): a portable is *static* once it
/// has stayed in the same cell for `T_th`.
#[derive(Clone, Copy, Debug)]
pub struct StaticMobileTest {
    /// The dwell threshold `T_th`.
    pub t_th: SimDuration,
}

impl StaticMobileTest {
    /// A test with the given threshold.
    pub fn new(t_th: SimDuration) -> Self {
        StaticMobileTest { t_th }
    }

    /// Classify from the time the portable entered its current cell.
    pub fn is_static(&self, entered_cell_at: SimTime, now: SimTime) -> bool {
        now.saturating_since(entered_cell_at) >= self.t_th
    }
}

/// Policy for the `B_dyn` pool of a cell's wireless link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DynPoolPolicy {
    /// Lower bound as a fraction of cell capacity (paper: 5%).
    pub min_fraction: f64,
    /// Upper bound as a fraction of cell capacity (paper: 20%).
    pub max_fraction: f64,
}

impl Default for DynPoolPolicy {
    fn default() -> Self {
        DynPoolPolicy {
            min_fraction: 0.05,
            max_fraction: 0.20,
        }
    }
}

impl DynPoolPolicy {
    /// The pool a cell should hold given the largest allocated bandwidth
    /// among connections of *static* portables in its neighbouring cells
    /// (§5.3: the pool must accommodate at least one such connection).
    pub fn target_pool(&self, cell_capacity: f64, max_neighbor_static_alloc: f64) -> f64 {
        let lo = self.min_fraction * cell_capacity;
        let hi = self.max_fraction * cell_capacity;
        max_neighbor_static_alloc.clamp(lo, hi)
    }
}

/// Recompute and install the `B_dyn` claim on `cell`'s wireless link,
/// sized to the largest current allocation among connections of the given
/// static portables residing in `neighbor_cells`. Returns the granted
/// pool size.
pub fn adjust_dyn_pool(
    net: &mut Network,
    cell: CellId,
    neighbor_cells: &[CellId],
    static_portables: &dyn Fn(PortableId) -> bool,
    policy: DynPoolPolicy,
) -> f64 {
    let mut max_alloc: f64 = 0.0;
    for nc in neighbor_cells {
        for c in net.connections_in_cell(*nc) {
            if static_portables(c.portable) {
                max_alloc = max_alloc.max(c.b_current);
            }
        }
    }
    let wl = net.topology().wireless_link(cell);
    let capacity = net.link(wl).capacity();
    let target = policy.target_pool(capacity, max_alloc);
    net.link_mut(wl).set_claim(ResvClaim::DynPool, target)
}

/// Connections at `link` that would be told to re-negotiate if the excess
/// is negative: those whose floors no longer fit, picked youngest-first
/// (the paper drops "the connection with a later arrival time" on
/// conflicts, §6.3's model).
pub fn renegotiation_victims(net: &Network, link: LinkId, deficit: f64) -> Vec<ConnId> {
    let mut conns: Vec<(SimTime, ConnId, f64)> = net
        .conns_on_link(link)
        .map(|c| (c.started, c.id, c.qos.b_min))
        .collect();
    // Youngest (latest arrival) first.
    conns.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
    let mut out = Vec::new();
    let mut recovered = 0.0;
    for (_, id, b_min) in conns {
        if recovered >= deficit {
            break;
        }
        recovered += b_min;
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn2_decisions() {
        // Shrinkage always triggers.
        assert_eq!(decide(10.0, 8.0, 6.0, false, 1.0), AdaptDecision::Shrink);
        // Growth needs δ *and* a non-empty bottleneck set.
        assert_eq!(decide(10.0, 12.0, 10.0, true, 1.0), AdaptDecision::Grow);
        assert_eq!(decide(10.0, 12.0, 10.0, false, 1.0), AdaptDecision::None);
        assert_eq!(decide(10.0, 10.5, 10.0, true, 1.0), AdaptDecision::None);
        // Negative excess demands renegotiation.
        assert_eq!(
            decide(10.0, -2.0, 6.0, true, 1.0),
            AdaptDecision::Renegotiate
        );
        // Equal excess, no growth beyond shares: nothing to do.
        assert_eq!(decide(10.0, 10.0, 10.0, true, 1.0), AdaptDecision::None);
    }

    #[test]
    fn delta_throttles_upgrades() {
        // A 0.5 gain with δ=1.0 is ignored; with δ=0.4 it triggers.
        assert_eq!(decide(5.0, 5.5, 5.0, true, 1.0), AdaptDecision::None);
        assert_eq!(decide(5.0, 5.5, 5.0, true, 0.4), AdaptDecision::Grow);
    }

    #[test]
    fn static_mobile_threshold() {
        let t = StaticMobileTest::new(SimDuration::from_mins(5));
        let entered = SimTime::from_mins(10);
        assert!(!t.is_static(entered, SimTime::from_mins(12)));
        assert!(t.is_static(entered, SimTime::from_mins(15)));
        assert!(t.is_static(entered, SimTime::from_mins(30)));
        // Clock slightly before entry (shouldn't happen, but safe).
        assert!(!t.is_static(entered, SimTime::from_mins(9)));
    }

    #[test]
    fn dyn_pool_clamped_to_policy_band() {
        let p = DynPoolPolicy::default();
        // No static neighbours: floor at 5%.
        assert_eq!(p.target_pool(1600.0, 0.0), 80.0);
        // A 200 kbps static connection nearby: pool covers it.
        assert_eq!(p.target_pool(1600.0, 200.0), 200.0);
        // But never above 20%.
        assert_eq!(p.target_pool(1600.0, 500.0), 320.0);
    }
}
