//! Chaos soak: the §7.1 office case under randomized fault schedules.
//!
//! Twenty independently seeded [`FaultSchedule`]s replay against the
//! full workweek scenario. `run_with_faults` asserts the degradation
//! invariants (ledger consistency, per-connection floors, lossy maxmin
//! convergence) after **every** event, so the assertions here only need
//! to confirm the schedules actually exercised the fault paths — any
//! invariant violation or panic inside the run fails the test on its
//! own.
//!
//! The soak is split into chunks of five schedules so the test harness
//! can run them on parallel threads.

use arm_core::chaos::run_with_faults;
use arm_core::scenario::{self, EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::Strategy;
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng};

fn office_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "chaos-soak".into(),
        environment: EnvSpec::Figure4,
        mobility: MobilitySpec::OfficeCase,
        workload: WorkloadSpec::Paper71,
        strategy: Strategy::Paper,
        cell_throughput_kbps: 1600.0,
        backbone_kbps: 100_000.0,
        wireless_error: 0.0,
        t_th_secs: 300,
        seed,
    }
}

fn soak_params() -> FaultScheduleParams {
    FaultScheduleParams {
        span: SimDuration::from_mins(40 * 60), // the §7.1 workweek
        links: 20,
        zones: 1,
        portables: 30,
        ..FaultScheduleParams::default()
    }
}

/// Run schedules seeded `seeds` against the office case. Invariants are
/// asserted inside `run_with_faults` after every event.
fn soak(seeds: std::ops::Range<u64>) {
    let sc = office_scenario(11);
    let params = soak_params();
    for seed in seeds {
        let sched = FaultSchedule::generate(&params, &SimRng::new(seed));
        assert!(!sched.is_empty(), "schedule {seed} generated no faults");
        let out = run_with_faults(&sc, &sched)
            .unwrap_or_else(|e| panic!("schedule {seed}: scenario rejected: {e}"));
        assert_eq!(
            out.faults_applied,
            sched.len(),
            "schedule {seed}: every fault must be applied"
        );
        assert!(
            out.invariant_checks > 0,
            "schedule {seed}: invariants must be swept"
        );
        assert!(
            out.report.requests > 0,
            "schedule {seed}: the workload must still run"
        );
    }
}

#[test]
fn soak_schedules_00_to_04() {
    soak(0..5);
}

#[test]
fn soak_schedules_05_to_09() {
    soak(5..10);
}

#[test]
fn soak_schedules_10_to_14() {
    soak(10..15);
}

#[test]
fn soak_schedules_15_to_19() {
    soak(15..20);
}

/// The acceptance bar for the fault layer's zero-cost claim: a chaos run
/// with the empty schedule produces a report bit-identical to the plain
/// §7 runner.
#[test]
fn empty_schedule_reproduces_the_plain_run_bit_for_bit() {
    let sc = office_scenario(42);
    let plain = scenario::run(&sc).expect("valid scenario");
    let chaos = run_with_faults(&sc, &FaultSchedule::empty()).expect("valid scenario");
    assert_eq!(format!("{plain:?}"), format!("{:?}", chaos.report));
    assert_eq!(chaos.faults_applied, 0);
    assert_eq!(chaos.invariant_checks, 0);
    assert_eq!(chaos.lossy_maxmin_checks, 0);
}
