//! Chaos soak: the §7.1 office case under randomized fault schedules.
//!
//! Twenty independently seeded [`FaultSchedule`]s replay against the
//! full workweek scenario. `run_with_faults` asserts the degradation
//! invariants (ledger consistency, per-connection floors, lossy maxmin
//! convergence) after **every** event, so the assertions here only need
//! to confirm the schedules actually exercised the fault paths — any
//! invariant violation or panic inside the run fails the test on its
//! own.
//!
//! The soak is split into chunks of five schedules so the test harness
//! can run them on parallel threads.

use arm_core::chaos::run_with_faults;
use arm_core::scenario::{self, EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::Figure4;
use arm_net::flowspec::QosRequest;
use arm_net::ids::{CellId, ConnId, PortableId};
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng, SimTime};

fn office_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "chaos-soak".into(),
        environment: EnvSpec::Figure4,
        mobility: MobilitySpec::OfficeCase,
        workload: WorkloadSpec::Paper71,
        strategy: Strategy::Paper,
        cell_throughput_kbps: 1600.0,
        backbone_kbps: 100_000.0,
        wireless_error: 0.0,
        t_th_secs: 300,
        seed,
    }
}

fn soak_params() -> FaultScheduleParams {
    FaultScheduleParams {
        span: SimDuration::from_mins(40 * 60), // the §7.1 workweek
        links: 20,
        zones: 1,
        portables: 30,
        ..FaultScheduleParams::default()
    }
}

/// Run schedules seeded `seeds` against the office case. Invariants are
/// asserted inside `run_with_faults` after every event.
fn soak(seeds: std::ops::Range<u64>) {
    let sc = office_scenario(11);
    let params = soak_params();
    for seed in seeds {
        let sched = FaultSchedule::generate(&params, &SimRng::new(seed));
        assert!(!sched.is_empty(), "schedule {seed} generated no faults");
        let out = run_with_faults(&sc, &sched)
            .unwrap_or_else(|e| panic!("schedule {seed}: scenario rejected: {e}"));
        assert_eq!(
            out.faults_applied,
            sched.len(),
            "schedule {seed}: every fault must be applied"
        );
        assert!(
            out.invariant_checks > 0,
            "schedule {seed}: invariants must be swept"
        );
        assert!(
            out.report.requests > 0,
            "schedule {seed}: the workload must still run"
        );
    }
}

#[test]
fn soak_schedules_00_to_04() {
    soak(0..5);
}

#[test]
fn soak_schedules_05_to_09() {
    soak(5..10);
}

#[test]
fn soak_schedules_10_to_14() {
    soak(10..15);
}

#[test]
fn soak_schedules_15_to_19() {
    soak(15..20);
}

/// The acceptance bar for the fault layer's zero-cost claim: a chaos run
/// with the empty schedule produces a report bit-identical to the plain
/// §7 runner.
/// One manager-level churn event. Both resolver configurations replay
/// the identical sequence, so any divergence is the solver's fault.
#[derive(Clone, Copy, Debug)]
enum Churn {
    Appear(u32, CellId),
    Connect(u32, f64, f64),
    Move(u32, CellId),
    Terminate(u32),
    Fade(CellId, f64),
    FailWireless(CellId),
    RestoreWireless(CellId),
}

/// Replay `events` against a fresh Figure-4 manager with the excess
/// resolver on, snapshotting every live connection's exact rate bits
/// after each event.
fn replay(events: &[Churn], incremental: bool) -> (Vec<Vec<(ConnId, u64)>>, u64) {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        resolve_excess: true,
        dyn_pool: None,
        t_th: SimDuration::from_secs(0),
        incremental,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    let mut conns: std::collections::BTreeMap<u32, ConnId> = Default::default();
    let mut snapshots = Vec::with_capacity(events.len());
    for (k, ev) in events.iter().enumerate() {
        let t = SimTime::from_secs(k as u64 + 1);
        match *ev {
            Churn::Appear(p, cell) => mgr.portable_appears(PortableId(p), cell, t),
            Churn::Connect(p, b_min, b_max) => {
                let qos = QosRequest::bandwidth(b_min, b_max)
                    .with_delay(10.0)
                    .with_jitter(10.0)
                    .with_loss(1.0);
                if let Ok(id) = mgr.request_connection(PortableId(p), qos, t) {
                    conns.insert(p, id);
                }
            }
            Churn::Move(p, cell) => {
                // The manager treats a move to the current cell as a
                // caller bug; the random schedule can produce one.
                if mgr.portable_cell(PortableId(p)) != Some(cell) {
                    mgr.portable_moved(PortableId(p), cell, t);
                }
            }
            Churn::Terminate(p) => {
                if let Some(id) = conns.remove(&p) {
                    mgr.terminate(id, t);
                }
            }
            Churn::Fade(cell, f) => {
                mgr.channel_change(cell, f, t).expect("valid fraction");
            }
            Churn::FailWireless(cell) => {
                let wl = mgr.net.topology().wireless_link(cell);
                mgr.link_failed(wl, t);
            }
            Churn::RestoreWireless(cell) => {
                let wl = mgr.net.topology().wireless_link(cell);
                mgr.link_restored(wl, t);
            }
        }
        let mut snap: Vec<(ConnId, u64)> = mgr
            .net
            .live_connections()
            .map(|c| (c.id, c.b_current.to_bits()))
            .collect();
        snap.sort();
        snapshots.push(snap);
        assert!(mgr.net.check_invariants().is_ok(), "event {k}: {ev:?}");
    }
    (snapshots, mgr.maxmin.stats.incremental_solves)
}

/// Random but seed-replayable churn over the Figure 4 floor, heavy on
/// link failures and restorations.
fn churn_schedule(seed: u64, len: usize) -> Vec<Churn> {
    let f4 = Figure4::build();
    let cells = [f4.a, f4.b, f4.c, f4.d, f4.e, f4.f, f4.g];
    let mut rng = SimRng::new(seed);
    let mut events = Vec::with_capacity(len);
    // Seed a population so every schedule exercises live connections.
    for p in 0..6u32 {
        let cell = cells[rng.index(cells.len())];
        events.push(Churn::Appear(p, cell));
        events.push(Churn::Connect(p, 100.0, 1600.0));
    }
    while events.len() < len {
        let p = rng.index(6) as u32;
        let cell = cells[rng.index(cells.len())];
        events.push(match rng.index(8) {
            0 => Churn::Connect(p, rng.uniform(50.0, 200.0), rng.uniform(400.0, 1600.0)),
            1 => Churn::Move(p, cell),
            2 => Churn::Terminate(p),
            3 => Churn::Fade(cell, rng.uniform(0.3, 1.0)),
            4 | 5 => Churn::FailWireless(cell),
            _ => Churn::RestoreWireless(cell),
        });
    }
    events
}

/// The tentpole's manager-level acceptance: with `resolve_excess` on,
/// the incremental engine and the from-scratch solver must agree on
/// every live connection's rate **bit for bit** after every event of a
/// fault-heavy churn schedule — including `link_failed`/`link_restored`.
#[test]
fn incremental_resolver_is_bit_identical_to_full_recompute_under_chaos() {
    for seed in 0..4u64 {
        let events = churn_schedule(seed, 60);
        let (full, solves_full) = replay(&events, false);
        let (incr, solves_incr) = replay(&events, true);
        assert_eq!(solves_full, 0, "full path must not touch the engine");
        assert!(solves_incr > 0, "incremental path must use the engine");
        assert_eq!(full.len(), incr.len());
        for (k, (a, b)) in full.iter().zip(&incr).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed}: rates diverged after event {k}: {:?}",
                events[k]
            );
        }
    }
}

#[test]
fn empty_schedule_reproduces_the_plain_run_bit_for_bit() {
    let sc = office_scenario(42);
    let plain = scenario::run(&sc).expect("valid scenario");
    let chaos = run_with_faults(&sc, &FaultSchedule::empty()).expect("valid scenario");
    assert_eq!(format!("{plain:?}"), format!("{:?}", chaos.report));
    assert_eq!(chaos.faults_applied, 0);
    assert_eq!(chaos.invariant_checks, 0);
    assert_eq!(chaos.lossy_maxmin_checks, 0);
}

/// Rate bits of every live connection, sorted — the bit-exact state
/// fingerprint the snapshot tests compare.
fn rate_bits(mgr: &ResourceManager) -> Vec<(ConnId, u64)> {
    let mut v: Vec<(ConnId, u64)> = mgr
        .net
        .live_connections()
        .map(|c| (c.id, c.b_current.to_bits()))
        .collect();
    v.sort();
    v
}

/// A snapshot taken *during* a link outage must carry the outage seal
/// (the `ResvClaim::Outage` claim that blocks new admissions on the
/// failed link), and the restored manager must behave identically from
/// then on: same blocked request during the outage, same re-admission
/// after restoration, same rate bits throughout.
#[test]
fn snapshot_during_link_outage_restores_the_seal_and_readmission() {
    use arm_core::ManagerSnapshot;
    use arm_net::link::ResvClaim;
    use arm_obs::Obs;

    let sc = office_scenario(21);
    let (mut mgr, _trace) = scenario::build_manager(&sc).expect("valid scenario");
    let mut t = SimTime::from_secs(1);
    let mut tick = || {
        t += SimDuration::from_secs(1);
        t
    };
    let qos = || {
        QosRequest::bandwidth(100.0, 400.0)
            .with_delay(30.0)
            .with_jitter(30.0)
            .with_loss(1.0)
    };
    for p in 0..3u32 {
        mgr.portable_appears(PortableId(p), CellId(p), tick());
        mgr.request_connection(PortableId(p), qos(), tick())
            .expect("uncontended admission");
    }
    // Fail cell 0's wireless link mid-run: the remaining headroom is
    // sealed with an Outage claim.
    let wl = mgr.net.topology().wireless_link(CellId(0));
    mgr.link_failed(wl, tick());
    let sealed = mgr.net.link(wl).claim(ResvClaim::Outage);
    assert!(sealed > 0.0, "outage must seal the link's headroom");

    // Snapshot through bytes while the outage is active.
    let json = mgr.snapshot().to_json().expect("snapshot serializes");
    let snap = ManagerSnapshot::from_json(&json).expect("snapshot parses");
    let mut restored = ResourceManager::restore(snap, Obs::off()).expect("snapshot restores");

    assert_eq!(
        restored.net.link(wl).claim(ResvClaim::Outage).to_bits(),
        sealed.to_bits(),
        "outage seal must survive the round trip bit-for-bit"
    );
    assert!(restored.is_link_down(wl), "down-link set must survive");
    assert_eq!(rate_bits(&mgr), rate_bits(&restored));

    // From here on, original and restored must stay in lockstep.
    // During the outage, a request in the sealed cell is refused by
    // both...
    for m in [&mut mgr, &mut restored] {
        m.portable_appears(PortableId(9), CellId(0), t + SimDuration::from_secs(1));
        let refused = m
            .request_connection(PortableId(9), qos(), t + SimDuration::from_secs(2))
            .is_err();
        assert!(refused, "sealed link must refuse new admissions");
    }
    // ...and after restoration, the same request is admitted by both
    // at identical rates.
    for m in [&mut mgr, &mut restored] {
        m.link_restored(wl, t + SimDuration::from_secs(3));
        m.request_connection(PortableId(9), qos(), t + SimDuration::from_secs(4))
            .expect("restored link must re-admit");
        assert!(m.net.check_invariants().is_ok());
    }
    assert_eq!(
        rate_bits(&mgr),
        rate_bits(&restored),
        "post-restore behaviour diverged"
    );
    assert_eq!(
        format!("{:?}", mgr.metrics.summary()),
        format!("{:?}", restored.metrics.summary()),
        "metrics diverged"
    );
}
