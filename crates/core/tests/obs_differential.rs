//! The observability layer's zero-interference contract.
//!
//! Observation must be strictly passive: running the same scenario with
//! `Obs::off()` (the default everywhere) and with a recording observer
//! installed must produce **bit-identical** scenario reports. The
//! recording run additionally has to actually observe something — a
//! silent observer would trivially pass the differential check.

use arm_core::chaos::{run_with_faults, run_with_faults_obs};
use arm_core::scenario::{self, EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::Figure4;
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_obs::{EventKind, Obs};
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng, SimTime};

fn office_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "obs-differential".into(),
        environment: EnvSpec::Figure4,
        mobility: MobilitySpec::OfficeCase,
        workload: WorkloadSpec::Paper71,
        strategy: Strategy::Paper,
        cell_throughput_kbps: 1600.0,
        backbone_kbps: 100_000.0,
        wireless_error: 0.0,
        t_th_secs: 300,
        seed,
    }
}

#[test]
fn recording_observer_leaves_the_run_bit_identical() {
    let sc = office_scenario(23);
    let off = scenario::run(&sc).expect("valid scenario");
    let (out, obs) = run_with_faults_obs(&sc, &FaultSchedule::empty(), Obs::recording(4096))
        .expect("valid scenario");
    assert_eq!(format!("{off:?}"), format!("{:?}", out.report));
    // The observer saw the run: admissions, slot rolls, claim activity,
    // and phase timers all fired. (Maxmin rounds need the eqn-2
    // adaptation path, which scenarios leave off — covered below.)
    assert!(out.report.requests > 0);
    assert!(obs.total_events() > 0, "recording run observed nothing");
    assert!(obs.count(EventKind::AdmitDecision) >= out.report.requests);
    assert!(obs.count(EventKind::ReservationSlotRolled) > 0);
    assert!(obs.count(EventKind::HandoffOutcome) > 0);
    assert!(!obs.snapshot_events().is_empty());
    assert!(obs.phase_summaries().iter().any(|p| p.spans > 0));
}

#[test]
fn recording_observer_leaves_a_faulted_run_bit_identical() {
    let sc = office_scenario(31);
    let params = FaultScheduleParams {
        span: SimDuration::from_mins(40 * 60),
        links: 20,
        zones: 1,
        portables: 30,
        ..FaultScheduleParams::default()
    };
    let sched = FaultSchedule::generate(&params, &SimRng::new(5));
    let off = run_with_faults(&sc, &sched).expect("valid scenario");
    let (on, obs) = run_with_faults_obs(&sc, &sched, Obs::recording(4096)).expect("valid scenario");
    assert_eq!(format!("{:?}", off.report), format!("{:?}", on.report));
    assert_eq!(off.faults_applied, on.faults_applied);
    assert_eq!(off.invariant_checks, on.invariant_checks);
    assert_eq!(off.link_failures, on.link_failures);
    // Fault entry points were traced.
    assert!(obs.count(EventKind::FaultInjected) > 0);
}

/// Scenarios leave the eqn-2 adaptation path off; drive it directly so
/// the [`EventKind::MaxminRound`] emission point is exercised too.
#[test]
fn maxmin_rounds_are_traced_on_the_adaptation_path() {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        resolve_excess: true,
        dyn_pool: None,
        t_th: SimDuration::from_secs(0),
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    mgr.set_obs(Obs::recording(256));
    let adaptive = QosRequest::bandwidth(200.0, 1600.0)
        .with_delay(10.0)
        .with_jitter(10.0)
        .with_loss(1.0);
    for i in 0..2u32 {
        let p = PortableId(i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        mgr.request_connection(p, adaptive, SimTime::from_secs(1 + u64::from(i)))
            .expect("admits");
    }
    // Fade and recovery both trigger the eqn-2 maxmin re-solve.
    mgr.channel_change(f4.c, 0.4, SimTime::from_secs(10))
        .expect("valid fraction");
    mgr.channel_change(f4.c, 1.0, SimTime::from_secs(60))
        .expect("valid fraction");
    let obs = mgr.take_obs();
    assert!(obs.count(EventKind::MaxminRound) > 0);
    assert!(obs.count(EventKind::AdmitDecision) >= 2);
}
