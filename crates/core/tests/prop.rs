//! Property-based tests on the integrated manager: no sequence of
//! control-plane operations breaks the ledger invariants or the metric
//! conservation laws.

use arm_core::strategy::Strategy as ResvStrategy;
use arm_core::{ManagerConfig, ResourceManager};
use arm_mobility::environment::Figure4;
use arm_net::flowspec::QosRequest;
use arm_net::ids::{CellId, ConnId, PortableId};
use arm_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A randomised control-plane operation.
#[derive(Clone, Debug)]
enum Op {
    Appear { p: u8, cell: u8 },
    Connect { p: u8, kbps_idx: u8 },
    Move { p: u8, cell: u8 },
    Terminate { p: u8 },
    Renegotiate { p: u8, kbps_idx: u8 },
    Fade { cell: u8, frac_idx: u8 },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..7).prop_map(|(p, cell)| Op::Appear { p, cell }),
        (0u8..6, 0u8..4).prop_map(|(p, kbps_idx)| Op::Connect { p, kbps_idx }),
        (0u8..6, 0u8..7).prop_map(|(p, cell)| Op::Move { p, cell }),
        (0u8..6).prop_map(|p| Op::Terminate { p }),
        (0u8..6, 0u8..4).prop_map(|(p, kbps_idx)| Op::Renegotiate { p, kbps_idx }),
        (0u8..7, 0u8..3).prop_map(|(cell, frac_idx)| Op::Fade { cell, frac_idx }),
        Just(Op::Tick),
    ]
}

fn rate(idx: u8) -> f64 {
    [16.0, 64.0, 150.0, 400.0][idx as usize % 4]
}

fn fade(idx: u8) -> f64 {
    [0.5, 0.8, 1.0][idx as usize % 3]
}

fn qos(kbps: f64) -> QosRequest {
    QosRequest::fixed(kbps)
        .with_delay(30.0)
        .with_jitter(30.0)
        .with_loss(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzz the whole control plane: invariants and conservation hold
    /// after every operation, under every strategy.
    #[test]
    fn manager_survives_random_control_sequences(
        ops in prop::collection::vec(op_strategy(), 1..120),
        strategy_idx in 0usize..4,
    ) {
        let strategy = [
            ResvStrategy::None,
            ResvStrategy::Paper,
            ResvStrategy::BruteForce,
            ResvStrategy::Aggregate,
        ][strategy_idx];
        let f4 = Figure4::build();
        let cells = [f4.a, f4.b, f4.c, f4.d, f4.e, f4.f, f4.g];
        let net = f4.env.build_network(1600.0, 0.0, 50_000.0);
        let cfg = ManagerConfig {
            strategy,
            resolve_excess: strategy_idx % 2 == 0,
            t_th: SimDuration::from_mins(2),
            ..Default::default()
        };
        let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
        let mut now = SimTime::ZERO;
        let mut present: BTreeMap<u8, CellId> = BTreeMap::new();
        let mut conns: BTreeMap<u8, ConnId> = BTreeMap::new();
        for op in ops {
            now += SimDuration::from_secs(7);
            match op {
                Op::Appear { p, cell } => {
                    if let std::collections::btree_map::Entry::Vacant(e) = present.entry(p) {
                        let c = cells[cell as usize % cells.len()];
                        mgr.portable_appears(PortableId(u32::from(p)), c, now);
                        e.insert(c);
                    }
                }
                Op::Connect { p, kbps_idx } => {
                    if present.contains_key(&p) && !conns.contains_key(&p) {
                        if let Ok(id) = mgr.request_connection(
                            PortableId(u32::from(p)),
                            qos(rate(kbps_idx)),
                            now,
                        ) {
                            conns.insert(p, id);
                        }
                    }
                }
                Op::Move { p, cell } => {
                    if let Some(cur) = present.get(&p).copied() {
                        let target = cells[cell as usize % cells.len()];
                        if target != cur && f4.env.are_neighbors(cur, target) {
                            let dropped =
                                mgr.portable_moved(PortableId(u32::from(p)), target, now);
                            for id in dropped {
                                conns.retain(|_, c| *c != id);
                            }
                            present.insert(p, target);
                        }
                    }
                }
                Op::Terminate { p } => {
                    if let Some(id) = conns.remove(&p) {
                        mgr.terminate(id, now);
                    }
                }
                Op::Renegotiate { p, kbps_idx } => {
                    if let Some(id) = conns.get(&p) {
                        let _ = mgr.renegotiate(*id, qos(rate(kbps_idx)), now);
                    }
                }
                Op::Fade { cell, frac_idx } => {
                    let c = cells[cell as usize % cells.len()];
                    let victims = mgr
                        .channel_change(c, fade(frac_idx), now)
                        .expect("fade fractions are valid");
                    for id in victims {
                        conns.retain(|_, c| *c != id);
                    }
                }
                Op::Tick => mgr.slot_tick(now),
            }
            prop_assert!(
                mgr.net.check_invariants().is_ok(),
                "{:?} broke invariants: {:?}",
                strategy,
                mgr.net.check_invariants()
            );
        }
        // Conservation: attempts = successes + drops.
        prop_assert_eq!(
            mgr.metrics.handoff_attempts.get(),
            mgr.metrics.handoff_successes.get() + mgr.metrics.dropped.get()
        );
        // Every tracked live connection is really live and allocated.
        for id in conns.values() {
            let c = mgr.net.get(*id).expect("tracked connection exists");
            prop_assert!(c.state.is_live());
        }
    }
}
