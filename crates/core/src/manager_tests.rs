//! Unit tests for the integrated manager.

use arm_mobility::environment::{Figure4, IndoorEnvironment};
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_net::link::ResvClaim;
use arm_profiles::{CellClass, LoungeKind};
use arm_reservation::meeting::{BookingCalendar, Meeting};
use arm_sim::{SimDuration, SimTime};

use super::*;

fn qos(kbps: f64) -> QosRequest {
    QosRequest::fixed(kbps)
        .with_delay(30.0)
        .with_jitter(30.0)
        .with_loss(1.0)
}

fn figure4_manager(strategy: Strategy) -> (ResourceManager, Figure4) {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy,
        ..Default::default()
    };
    (ResourceManager::new(f4.env.clone(), net, cfg), f4)
}

#[test]
fn connection_lifecycle() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .expect("admits");
    assert_eq!(mgr.metrics.requests.get(), 1);
    let wl = mgr.net.topology().wireless_link(f4.c);
    assert_eq!(mgr.net.link(wl).sum_b_min(), 64.0);
    mgr.terminate(id, SimTime::from_secs(100));
    assert_eq!(mgr.metrics.completed.get(), 1);
    assert_eq!(mgr.net.link(wl).sum_b_min(), 0.0);
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn blocking_when_cell_full() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let mut admitted = 0;
    for i in 0..30 {
        let p = PortableId(100 + i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        if mgr
            .request_connection(p, qos(64.0), SimTime::from_secs(1))
            .is_ok()
        {
            admitted += 1;
        }
    }
    // 1600 / 64 = 25 connections fit.
    assert_eq!(admitted, 25);
    assert_eq!(mgr.metrics.blocked.get(), 5);
    assert!((mgr.metrics.p_b() - 5.0 / 30.0).abs() < 1e-12);
}

#[test]
fn handoff_moves_resources_between_cells() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    mgr.request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    let dropped = mgr.portable_moved(p, f4.d, SimTime::from_secs(10));
    assert!(dropped.is_empty());
    let wl_c = mgr.net.topology().wireless_link(f4.c);
    let wl_d = mgr.net.topology().wireless_link(f4.d);
    assert_eq!(mgr.net.link(wl_c).sum_b_min(), 0.0);
    assert_eq!(mgr.net.link(wl_d).sum_b_min(), 64.0);
    assert_eq!(mgr.metrics.handoff_attempts.get(), 1);
    assert_eq!(mgr.metrics.handoff_successes.get(), 1);
    assert_eq!(mgr.portable_cell(p), Some(f4.d));
}

#[test]
fn handoff_drops_when_target_is_full() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    // Fill D with static occupants.
    for i in 0..25 {
        let p = PortableId(200 + i);
        mgr.portable_appears(p, f4.d, SimTime::ZERO);
        mgr.request_connection(p, qos(64.0), SimTime::ZERO).unwrap();
    }
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr.request_connection(p, qos(64.0), SimTime::ZERO).unwrap();
    let dropped = mgr.portable_moved(p, f4.d, SimTime::from_secs(10));
    assert_eq!(dropped, vec![id]);
    assert_eq!(mgr.metrics.dropped.get(), 1);
    assert!((mgr.metrics.p_d() - 1.0).abs() < 1e-12);
    assert_eq!(
        mgr.net.get(id).unwrap().state,
        arm_net::ConnectionState::Dropped
    );
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn brute_force_reserves_in_all_neighbors() {
    let (mut mgr, f4) = figure4_manager(Strategy::BruteForce);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.d, SimTime::ZERO);
    mgr.request_connection(p, qos(64.0), SimTime::ZERO).unwrap();
    // D's neighbours: C, E, A.
    for n in [f4.c, f4.e, f4.a] {
        let wl = mgr.net.topology().wireless_link(n);
        assert!(
            mgr.net.link(wl).b_resv() >= 64.0 - 1e-9,
            "no reservation in {n:?}"
        );
    }
    // Not in non-neighbours.
    let wl_g = mgr.net.topology().wireless_link(f4.g);
    assert_eq!(mgr.net.link(wl_g).b_resv(), 0.0);
}

#[test]
fn paper_strategy_reserves_in_predicted_cell_only() {
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    // Teach the profile: this user goes C → D → A.
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    for k in 0..4 {
        let t0 = SimTime::from_secs(600 * k + 10);
        mgr.portable_moved(p, f4.d, t0);
        mgr.portable_moved(p, f4.a, t0 + SimDuration::from_secs(30));
        mgr.portable_moved(p, f4.d, t0 + SimDuration::from_secs(300));
        mgr.portable_moved(p, f4.c, t0 + SimDuration::from_secs(330));
    }
    // Now the user is in C with a connection, having come from D.
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(3000))
        .unwrap();
    // Move to D (mobile, just moved): prediction (C→D context) says A.
    mgr.portable_moved(p, f4.d, SimTime::from_secs(3001));
    let wl_a = mgr.net.topology().wireless_link(f4.a);
    assert!(
        mgr.net.link(wl_a).claim(ResvClaim::Conn(id)) >= 64.0 - 1e-9,
        "claim in predicted office A"
    );
    // And nowhere else.
    for other in [f4.b, f4.e, f4.f, f4.g, f4.c] {
        let wl = mgr.net.topology().wireless_link(other);
        assert_eq!(
            mgr.net.link(wl).claim(ResvClaim::Conn(id)),
            0.0,
            "{other:?}"
        );
    }
    // The predicted handoff then consumes its claim.
    let dropped = mgr.portable_moved(p, f4.a, SimTime::from_secs(3030));
    assert!(dropped.is_empty());
    assert_eq!(mgr.net.link(wl_a).sum_b_min(), 64.0);
}

#[test]
fn static_portables_make_no_per_connection_claims() {
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.a, SimTime::ZERO);
    // Wait beyond T_th before connecting: the portable is static.
    let now = SimTime::from_mins(10);
    let id = mgr.request_connection(p, qos(64.0), now).unwrap();
    assert!(mgr.is_static(p, now));
    for (cell, _) in f4.env.cells() {
        let wl = mgr.net.topology().wireless_link(cell);
        assert_eq!(mgr.net.link(wl).claim(ResvClaim::Conn(id)), 0.0);
    }
    // But neighbours of A hold a B_dyn pool sized at least at the
    // static's allocation (clamped to the 5–20% band).
    let wl_d = mgr.net.topology().wireless_link(f4.d);
    assert!(mgr.net.link(wl_d).claim(ResvClaim::DynPool) >= 80.0 - 1e-9);
}

#[test]
fn meeting_calendar_drives_room_claims() {
    let mut env = IndoorEnvironment::new();
    let x = env.add_cell("X", CellClass::Corridor);
    let m = env.add_cell("M", CellClass::Lounge(LoungeKind::MeetingRoom));
    env.connect(x, m);
    let net = env.build_network(1600.0, 0.0, 100_000.0);
    let mut mgr = ResourceManager::new(env, net, ManagerConfig::default());
    let mut cal = BookingCalendar::new();
    cal.book(Meeting {
        t_start: SimTime::from_mins(60),
        t_end: SimTime::from_mins(110),
        expected: 20,
    });
    mgr.set_calendar(m, cal);
    // Before the window: no claim.
    mgr.slot_tick(SimTime::from_mins(40));
    let wl_m = mgr.net.topology().wireless_link(m);
    assert_eq!(mgr.net.link(wl_m).claim(ResvClaim::Cell(m)), 0.0);
    // In the window: 20 × 28 kbps.
    mgr.slot_tick(SimTime::from_mins(52));
    assert!((mgr.net.link(wl_m).claim(ResvClaim::Cell(m)) - 560.0).abs() < 1e-9);
    // An attendee arrives: the claim shrinks and the handoff uses it.
    let p = PortableId(77);
    mgr.portable_appears(p, x, SimTime::from_mins(53));
    mgr.request_connection(p, qos(64.0), SimTime::from_mins(53))
        .unwrap();
    let dropped = mgr.portable_moved(p, m, SimTime::from_mins(54));
    assert!(dropped.is_empty());
    assert!((mgr.net.link(wl_m).claim(ResvClaim::Cell(m)) - 19.0 * 28.0).abs() < 1e-9);
}

#[test]
fn static_fraction_strategy_pins_claims() {
    let (mut mgr, f4) = figure4_manager(Strategy::StaticFraction(0.25));
    mgr.slot_tick(SimTime::from_secs(1));
    for (cell, _) in f4.env.cells() {
        let wl = mgr.net.topology().wireless_link(cell);
        assert!((mgr.net.link(wl).claim(ResvClaim::Cell(cell)) - 400.0).abs() < 1e-9);
    }
}

#[test]
fn aggregate_strategy_spreads_by_history() {
    let (mut mgr, f4) = figure4_manager(Strategy::Aggregate);
    // Build history: traffic out of D goes 80% to E, 20% to A.
    for i in 0..10 {
        let p = PortableId(300 + i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        mgr.portable_moved(p, f4.d, SimTime::from_secs(10 + i as u64));
        let dest = if i < 8 { f4.e } else { f4.a };
        mgr.portable_moved(p, dest, SimTime::from_secs(100 + i as u64));
    }
    // A new mobile with a 100 kbps connection sits in D.
    let p = PortableId(400);
    mgr.portable_appears(p, f4.c, SimTime::from_secs(200));
    mgr.request_connection(p, qos(100.0), SimTime::from_secs(201))
        .unwrap();
    mgr.portable_moved(p, f4.d, SimTime::from_secs(202));
    let wl_e = mgr.net.topology().wireless_link(f4.e);
    let wl_a = mgr.net.topology().wireless_link(f4.a);
    let claim_e = mgr.net.link(wl_e).claim(ResvClaim::Cell(f4.d));
    let claim_a = mgr.net.link(wl_a).claim(ResvClaim::Cell(f4.d));
    assert!(
        claim_e > claim_a,
        "E ({claim_e}) should outweigh A ({claim_a})"
    );
    assert!(claim_e + claim_a > 0.0);
}

#[test]
fn dyn_pool_rescues_sudden_static_movement() {
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    // A static portable in A with a fat connection.
    let p = PortableId(50);
    mgr.portable_appears(p, f4.a, SimTime::ZERO);
    let now = SimTime::from_mins(10);
    let id = mgr.request_connection(p, qos(300.0), now).unwrap();
    // Fill D almost completely with other users so only the pool is left.
    let mut t = now;
    for i in 0..10 {
        let q = PortableId(600 + i);
        mgr.portable_appears(q, f4.d, SimTime::ZERO);
        t += SimDuration::from_secs(1);
        mgr.request_connection(q, qos(128.0), t).unwrap();
    }
    let wl_d = mgr.net.topology().wireless_link(f4.d);
    // 10×128 = 1280 used of 1600; pool covers the 300 kbps static.
    let pool = mgr.net.link(wl_d).claim(ResvClaim::DynPool);
    assert!(pool >= 300.0 - 1e-9, "pool={pool}");
    // The static suddenly moves: no per-conn claim exists, but the pool
    // absorbs the handoff.
    let dropped = mgr.portable_moved(p, f4.d, t + SimDuration::from_secs(1));
    assert!(dropped.is_empty(), "B_dyn should rescue the handoff");
    assert_eq!(mgr.metrics.claims_consumed.get(), 1);
    assert!(mgr.net.get(id).unwrap().state.is_live());
}

#[test]
fn slot_tick_feeds_lounge_predictors() {
    let mut env = IndoorEnvironment::new();
    let x = env.add_cell("X", CellClass::Corridor);
    let d = env.add_cell("D", CellClass::Lounge(LoungeKind::Default));
    env.connect(x, d);
    let net = env.build_network(1600.0, 0.0, 100_000.0);
    let mut mgr = ResourceManager::new(env, net, ManagerConfig::default());
    // Three portables leave the default lounge this slot.
    for i in 0..3 {
        let p = PortableId(700 + i);
        mgr.portable_appears(p, d, SimTime::ZERO);
        mgr.portable_moved(p, x, SimTime::from_secs(10 + i as u64));
    }
    mgr.slot_tick(SimTime::from_mins(1));
    // One-step memory: predict 3 leavers next slot → claim 3×28 kbps in
    // the neighbour X under the lounge's key.
    let wl_x = mgr.net.topology().wireless_link(x);
    assert!((mgr.net.link(wl_x).claim(ResvClaim::Cell(d)) - 84.0).abs() < 1e-9);
}

#[test]
fn multicast_branches_follow_the_mobile() {
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    // Mobile in C: branches toward C's neighbours (just D).
    assert_eq!(mgr.multicast.branches_of(id), vec![f4.d]);
    mgr.portable_moved(p, f4.d, SimTime::from_secs(10));
    let mut branches = mgr.multicast.branches_of(id);
    branches.sort();
    assert_eq!(branches, vec![f4.a, f4.c, f4.e]);
    // Terminating tears everything down.
    mgr.terminate(id, SimTime::from_secs(20));
    assert!(mgr.multicast.branches_of(id).is_empty());
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn static_portables_lose_their_multicast_branches() {
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    assert!(!mgr.multicast.branches_of(id).is_empty());
    // After T_th the portable is static; the slot tick retires branches.
    mgr.slot_tick(SimTime::from_mins(10));
    assert!(mgr.multicast.branches_of(id).is_empty());
}

#[test]
fn renegotiation_upgrades_and_restores_on_failure() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    // Upgrade to 512 kbps: fits, new floor reserved.
    mgr.renegotiate(id, qos(512.0), SimTime::from_secs(2))
        .unwrap();
    let wl = mgr.net.topology().wireless_link(f4.c);
    assert_eq!(mgr.net.link(wl).sum_b_min(), 512.0);
    assert_eq!(mgr.net.get(id).unwrap().qos.b_min, 512.0);
    // A second user fills most of the rest.
    let q = PortableId(51);
    mgr.portable_appears(q, f4.c, SimTime::ZERO);
    mgr.request_connection(q, qos(1000.0), SimTime::from_secs(3))
        .unwrap();
    // Upgrading beyond capacity fails but the connection survives under
    // its previous bounds.
    let err = mgr.renegotiate(id, qos(1500.0), SimTime::from_secs(4));
    assert!(err.is_err());
    let c = mgr.net.get(id).unwrap();
    assert!(c.state.is_live());
    assert_eq!(c.qos.b_min, 512.0);
    assert_eq!(mgr.net.link(wl).sum_b_min(), 1512.0);
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn renegotiation_downgrade_frees_capacity() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(1000.0), SimTime::from_secs(1))
        .unwrap();
    mgr.renegotiate(id, qos(100.0), SimTime::from_secs(2))
        .unwrap();
    let wl = mgr.net.topology().wireless_link(f4.c);
    assert_eq!(mgr.net.link(wl).sum_b_min(), 100.0);
    // The freed capacity admits a new large connection.
    let q = PortableId(51);
    mgr.portable_appears(q, f4.c, SimTime::ZERO);
    assert!(mgr
        .request_connection(q, qos(1400.0), SimTime::from_secs(3))
        .is_ok());
}

#[test]
fn channel_fade_squeezes_then_recovers() {
    let (mgr, f4) = figure4_manager(Strategy::None);
    // Two adaptive connections sharing C's 1600 kbps medium.
    let adaptive = QosRequest::bandwidth(200.0, 1600.0)
        .with_delay(10.0)
        .with_jitter(10.0)
        .with_loss(1.0);
    let mut cfg_mgr = {
        let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
        let cfg = ManagerConfig {
            strategy: Strategy::None,
            resolve_excess: true,
            dyn_pool: None,
            t_th: SimDuration::from_secs(0),
            ..Default::default()
        };
        ResourceManager::new(f4.env.clone(), net, cfg)
    };
    drop(mgr);
    let mgr = &mut cfg_mgr;
    for i in 0..2 {
        let p = PortableId(60 + i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        mgr.request_connection(p, adaptive, SimTime::from_secs(1 + u64::from(i)))
            .unwrap();
    }
    let ids: Vec<_> = mgr.net.live_connections().map(|c| c.id).collect();
    // Fully adapted up: 800 each.
    for id in &ids {
        assert!((mgr.net.get(*id).unwrap().b_current - 800.0).abs() < 1e-6);
    }
    // The medium fades to 40%: 640 kbps effective. Floors (400) still
    // fit, so nobody is dropped, but allocations shrink to 320 each.
    let victims = mgr
        .channel_change(f4.c, 0.4, SimTime::from_secs(10))
        .expect("valid fraction");
    assert!(victims.is_empty());
    for id in &ids {
        assert!(
            (mgr.net.get(*id).unwrap().b_current - 320.0).abs() < 1e-6,
            "rate {}",
            mgr.net.get(*id).unwrap().b_current
        );
    }
    // Recovery restores the full shares.
    mgr.channel_change(f4.c, 1.0, SimTime::from_secs(60))
        .expect("valid fraction");
    for id in &ids {
        assert!((mgr.net.get(*id).unwrap().b_current - 800.0).abs() < 1e-6);
    }
    assert!(mgr.net.check_invariants().is_ok());
    assert_eq!(mgr.channel_renegotiations, 0);
}

#[test]
fn deep_fade_drops_youngest_first() {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        resolve_excess: true,
        dyn_pool: None,
        t_th: SimDuration::from_secs(0),
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    let mut ids = Vec::new();
    for i in 0..3 {
        let p = PortableId(70 + i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        ids.push(
            mgr.request_connection(p, qos(500.0), SimTime::from_secs(1 + u64::from(i)))
                .unwrap(),
        );
    }
    // Fade to 40%: 640 effective < 1500 of floors — two must go, and it
    // is the two youngest (latest arrivals).
    let victims = mgr
        .channel_change(f4.c, 0.4, SimTime::from_secs(10))
        .expect("valid fraction");
    assert_eq!(victims, vec![ids[2], ids[1]]);
    assert_eq!(mgr.channel_renegotiations, 2);
    assert!(mgr.net.get(ids[0]).unwrap().state.is_live());
    assert!(mgr.net.check_invariants().is_ok());
    // New admissions respect the faded capacity.
    let p = PortableId(80);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    assert!(mgr
        .request_connection(p, qos(500.0), SimTime::from_secs(11))
        .is_err());
    assert!(mgr
        .request_connection(p, qos(100.0), SimTime::from_secs(12))
        .is_ok());
}

#[test]
fn delta_throttles_adaptation_rounds() {
    // Same fade schedule; a large δ runs fewer adaptation rounds.
    let run = |delta: f64| -> u64 {
        let f4 = Figure4::build();
        let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
        let cfg = ManagerConfig {
            strategy: Strategy::None,
            resolve_excess: true,
            dyn_pool: None,
            t_th: SimDuration::from_secs(0),
            delta,
            ..Default::default()
        };
        let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
        let p = PortableId(1);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        let adaptive = QosRequest::bandwidth(100.0, 1600.0)
            .with_delay(10.0)
            .with_jitter(10.0)
            .with_loss(1.0);
        mgr.request_connection(p, adaptive, SimTime::from_secs(1))
            .unwrap();
        // A sequence of tiny capacity wobbles (fades of 2%).
        for k in 0..20u64 {
            let f = if k % 2 == 0 { 0.98 } else { 1.0 };
            mgr.channel_change(f4.c, f, SimTime::from_secs(10 + k))
                .expect("valid fraction");
        }
        mgr.adaptation_rounds
    };
    let eager = run(0.0);
    let throttled = run(100.0);
    assert!(
        throttled < eager,
        "δ=100 ({throttled}) should run fewer rounds than δ=0 ({eager})"
    );
}

#[test]
fn cross_zone_handoff_transfers_the_profile() {
    use arm_net::ids::ZoneId;
    // Figure 4 split into two zones: {A, C, D} west, {B, E, F, G} east.
    let mut f4 = Figure4::build();
    for cell in [f4.b, f4.e, f4.f, f4.g] {
        f4.env.set_zone(cell, ZoneId(1));
    }
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let mut mgr = ResourceManager::new(f4.env.clone(), net, ManagerConfig::default());
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    mgr.request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    // Build a habit entirely in the west zone: C → D → C…
    for k in 0..3u64 {
        mgr.portable_moved(p, f4.d, SimTime::from_secs(10 + 20 * k));
        mgr.portable_moved(p, f4.c, SimTime::from_secs(20 + 20 * k));
    }
    // Cross the boundary: D → E.
    mgr.portable_moved(p, f4.d, SimTime::from_secs(100));
    let dropped = mgr.portable_moved(p, f4.e, SimTime::from_secs(110));
    assert!(dropped.is_empty());
    assert_eq!(mgr.profiles.transfers, 1, "profile handed over once");
    // The east zone now holds the portable's profile with its history.
    let east = mgr.profiles.server(ZoneId(1)).expect("zone 1 exists");
    assert!(east.portable(p).is_some());
    assert!(mgr
        .profiles
        .server(ZoneId(0))
        .unwrap()
        .portable(p)
        .is_none());
    // Moving back transfers again.
    mgr.portable_moved(p, f4.d, SimTime::from_secs(120));
    assert_eq!(mgr.profiles.transfers, 2);
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn bad_channel_fraction_is_a_typed_error() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    for bad in [0.0, -0.3, 1.5, f64::NAN] {
        let err = mgr
            .channel_change(f4.c, bad, SimTime::from_secs(1))
            .expect_err("fraction outside (0, 1] must be rejected");
        assert!(matches!(err, ControlError::BadChannelFraction { .. }));
    }
    // Rejected inputs leave no trace.
    let wl = mgr.net.topology().wireless_link(f4.c);
    assert_eq!(mgr.net.link(wl).claim(ResvClaim::Channel), 0.0);
}

#[test]
fn link_failure_squeezes_riders_and_seals_admission() {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        resolve_excess: true,
        dyn_pool: None,
        t_th: SimDuration::from_secs(0),
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    let adaptive = QosRequest::bandwidth(200.0, 1600.0)
        .with_delay(10.0)
        .with_jitter(10.0)
        .with_loss(1.0);
    for i in 0..2 {
        let p = PortableId(60 + i);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        mgr.request_connection(p, adaptive, SimTime::from_secs(1 + u64::from(i)))
            .unwrap();
    }
    let ids: Vec<_> = mgr.net.live_connections().map(|c| c.id).collect();
    let wl = mgr.net.topology().wireless_link(f4.c);
    // Star topology: no detour exists, so the riders squeeze to b_min.
    let dropped = mgr.link_failed(wl, SimTime::from_secs(10));
    assert!(dropped.is_empty(), "default policy never drops");
    assert!(mgr.is_link_down(wl));
    for id in &ids {
        let c = mgr.net.get(*id).unwrap();
        assert!(c.state.is_live());
        assert!((c.b_current - 200.0).abs() < 1e-6, "rate {}", c.b_current);
    }
    // The outage seal blocks new admissions on the dead link.
    let p = PortableId(90);
    mgr.portable_appears(p, f4.c, SimTime::from_secs(10));
    assert!(mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(11))
        .is_err());
    // A second failure of the same link is an idempotent no-op.
    assert!(mgr.link_failed(wl, SimTime::from_secs(12)).is_empty());
    assert_eq!(mgr.link_failures, 1);
    assert!(mgr.net.check_invariants().is_ok());
    // Restoration lifts the seal: rates re-grow and admission works.
    mgr.link_restored(wl, SimTime::from_secs(20));
    assert!(!mgr.is_link_down(wl));
    for id in &ids {
        assert!(mgr.net.get(*id).unwrap().b_current > 200.0 + 1e-6);
    }
    assert!(mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(21))
        .is_ok());
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn link_failure_drop_policy_drops_riders() {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        drop_on_link_failure: true,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    let wl = mgr.net.topology().wireless_link(f4.c);
    let dropped = mgr.link_failed(wl, SimTime::from_secs(10));
    assert_eq!(dropped, vec![id]);
    assert_eq!(
        mgr.net.get(id).unwrap().state,
        arm_net::ConnectionState::Dropped
    );
    assert_eq!(mgr.metrics.dropped.get(), 1);
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn wired_link_failure_blocks_the_cell_until_restored() {
    let (mut mgr, f4) = figure4_manager(Strategy::None);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(1))
        .unwrap();
    // The backbone hop of C's route fails; the star offers no detour,
    // so the fixed-rate connection just rides at its floor.
    let wired = mgr.net.get(id).unwrap().route.links[1];
    let dropped = mgr.link_failed(wired, SimTime::from_secs(10));
    assert!(dropped.is_empty());
    assert!(mgr.net.get(id).unwrap().state.is_live());
    let q = PortableId(51);
    mgr.portable_appears(q, f4.c, SimTime::from_secs(10));
    assert!(mgr
        .request_connection(q, qos(64.0), SimTime::from_secs(11))
        .is_err());
    mgr.link_restored(wired, SimTime::from_secs(20));
    assert!(mgr
        .request_connection(q, qos(64.0), SimTime::from_secs(21))
        .is_ok());
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn handoff_signalling_failure_forfeits_the_claims() {
    // Same setup as dyn_pool_rescues_sudden_static_movement, except the
    // handoff's signalling is lost: no claim (not even B_dyn) can be
    // consumed, plain admission fails at the full cell, and the
    // connection drops.
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    mgr.portable_appears(p, f4.a, SimTime::ZERO);
    let now = SimTime::from_mins(10);
    let id = mgr.request_connection(p, qos(300.0), now).unwrap();
    let mut t = now;
    for i in 0..10 {
        let q = PortableId(600 + i);
        mgr.portable_appears(q, f4.d, SimTime::ZERO);
        t += SimDuration::from_secs(1);
        mgr.request_connection(q, qos(128.0), t).unwrap();
    }
    mgr.fail_next_handoff(p);
    let dropped = mgr.portable_moved(p, f4.d, t + SimDuration::from_secs(1));
    assert_eq!(dropped, vec![id]);
    assert_eq!(mgr.handoff_signalling_failures, 1);
    assert_eq!(mgr.metrics.claims_consumed.get(), 0);
    // Only the one signalled failure is consumed: a later handoff of a
    // fresh connection proceeds normally.
    let id2 = mgr
        .request_connection(p, qos(64.0), t + SimDuration::from_secs(2))
        .unwrap();
    let dropped = mgr.portable_moved(p, f4.e, t + SimDuration::from_secs(3));
    assert!(dropped.is_empty());
    assert!(mgr.net.get(id2).unwrap().state.is_live());
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn profile_outage_falls_back_to_even_spread_and_recovers() {
    use arm_net::ids::ZoneId;
    let (mut mgr, f4) = figure4_manager(Strategy::Paper);
    let p = PortableId(50);
    // Teach the profile the C → D → A habit.
    mgr.portable_appears(p, f4.c, SimTime::ZERO);
    for k in 0..4 {
        let t0 = SimTime::from_secs(600 * k + 10);
        mgr.portable_moved(p, f4.d, t0);
        mgr.portable_moved(p, f4.a, t0 + SimDuration::from_secs(30));
        mgr.portable_moved(p, f4.d, t0 + SimDuration::from_secs(300));
        mgr.portable_moved(p, f4.c, t0 + SimDuration::from_secs(330));
    }
    let id = mgr
        .request_connection(p, qos(64.0), SimTime::from_secs(3000))
        .unwrap();
    mgr.portable_moved(p, f4.d, SimTime::from_secs(3001));
    let wl_a = mgr.net.topology().wireless_link(f4.a);
    assert!(mgr.net.link(wl_a).claim(ResvClaim::Conn(id)) >= 64.0 - 1e-9);
    // The zone's profile server goes down: prediction is unavailable,
    // so the per-connection claim degrades into an even Cell(D) spread
    // over D's neighbours C, E, A (the stale-profile fallback).
    mgr.profile_server_down(ZoneId(0), SimTime::from_secs(3002));
    assert_eq!(mgr.net.link(wl_a).claim(ResvClaim::Conn(id)), 0.0);
    for n in [f4.c, f4.e, f4.a] {
        let wl = mgr.net.topology().wireless_link(n);
        let claim = mgr.net.link(wl).claim(ResvClaim::Cell(f4.d));
        assert!((claim - 64.0 / 3.0).abs() < 1e-9, "{n:?}: {claim}");
    }
    assert!(mgr.stale_profile_fallbacks > 0);
    // Recovery restores prediction-based claims from the (stale but
    // intact) profile.
    mgr.profile_server_up(ZoneId(0), SimTime::from_secs(3003));
    assert!(mgr.net.link(wl_a).claim(ResvClaim::Conn(id)) >= 64.0 - 1e-9);
    assert!(mgr.net.check_invariants().is_ok());
}
