//! Typed control-plane errors.
//!
//! Invalid *scenario inputs* — values a driver or trace file can feed the
//! manager — surface as [`ControlError`]s instead of panics, so a chaos
//! harness (or a malformed trace) degrades into a recoverable rejection
//! rather than killing the run. Internal invariant violations remain
//! `expect`s: those are bugs, not inputs.

use std::fmt;

use arm_net::ids::CellId;

/// A control-plane entry point was handed an invalid input.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlError {
    /// `channel_change` was given an effective fraction outside `(0, 1]`
    /// (NaN included).
    BadChannelFraction {
        /// The cell whose channel supposedly changed.
        cell: CellId,
        /// The offending fraction.
        fraction: f64,
    },
    /// A scenario paired an environment with a mobility model or
    /// workload built for a different environment.
    IncompatibleScenario {
        /// The environment's name.
        environment: String,
        /// What was incompatibly combined with it.
        combined_with: String,
    },
    /// A scenario carried a numeric parameter outside its valid range
    /// (e.g. a zero mean dwell, which would feed an exponential sampler
    /// a zero mean, or a non-positive cell capacity).
    BadParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::BadChannelFraction { cell, fraction } => write!(
                f,
                "channel_change({cell:?}): effective fraction {fraction} outside (0, 1]"
            ),
            ControlError::IncompatibleScenario {
                environment,
                combined_with,
            } => write!(
                f,
                "incompatible scenario: environment {environment} cannot run {combined_with}"
            ),
            ControlError::BadParameter { what, value } => {
                write!(f, "bad scenario parameter: {what} = {value}")
            }
        }
    }
}

impl std::error::Error for ControlError {}
