//! End-to-end experiment drivers, one per evaluation artefact.
//!
//! * [`meeting`] — Figure 5: the meeting-room scenario at 35/55
//!   attendees, comparing brute-force / aggregate / meeting-room
//!   reservation on connection drops,
//! * [`fig6`] — Figure 6: the two-cell probabilistic-reservation model,
//!   producing `P_d` vs `P_b` curves over the window `T`,
//! * [`office`] — §7.1: the office-case workweek, prediction accuracy
//!   and reservation-waste accounting.

pub mod fig6;
pub mod meeting;
pub mod office;
